"""Traced execution plans for the serving hot path.

The no-grad forward of a serving model is pure numpy with *static*
shapes: the same ~1.5k small array ops run for every request, and the
per-op Python dispatch (Tensor wrapping, ufunc dispatch, view
bookkeeping, allocator churn) dominates wall time at serving scale.
This module removes that overhead by recording the forward **once** and
compiling it into a replayable :class:`ExecutionPlan`:

* :func:`trace` runs a callable over :class:`TraceArray` inputs — an
  ``ndarray`` subclass that intercepts every ufunc call,
  ``__array_function__`` dispatch and shape method, computes on the base
  arrays (so the traced run returns bitwise-normal results) and records
  a flat, topologically ordered op list on a per-trace :class:`_Tape`.
* :meth:`_Tape.compile` lowers the tape into the plan: dead code behind
  the requested output is eliminated, weight-only subexpressions are
  already folded (they ran eagerly during tracing and enter the plan as
  baked constants), views are materialised **once** against arena
  buffers, and every remaining compute step becomes a prebound numpy
  call writing into a liveness-managed buffer arena.
* :meth:`ExecutionPlan.replay` copies fresh inputs into the arena and
  runs the prebound steps — zero graph construction, zero Tensor
  allocation, and near-zero Python overhead per op.

Safety model: anything the tracer cannot prove it captured — an
unsupported ufunc method, a write into an aliased buffer, an array of
unknown provenance flowing back into traced math — *poisons* the tape
and compilation fails with :class:`PlanUnsupported`; callers fall back
to the eager path. Compilation additionally dry-runs the plan against
the trace inputs and requires bitwise equality with the traced result.
Data-dependent *control flow* (e.g. branching on a mask) is invisible
to any tracer; callers guard it by keying plans on a model-provided
signature (see ``NeuralForecaster.plan_inputs``) and by validating a
warm replay against the eager forward before trusting a plan.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .tensor import no_grad

__all__ = [
    "ExecutionPlan",
    "PlanStats",
    "PlanUnsupported",
    "TraceArray",
    "trace",
    "taint",
]


class PlanUnsupported(RuntimeError):
    """The traced program cannot be compiled into an execution plan."""


class _Ref:
    """A reference to a tape slot inside a recorded argument tree."""

    __slots__ = ("slot",)

    def __init__(self, slot: int):
        self.slot = slot

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"%{self.slot}"


class _Slot:
    """One SSA value produced during the trace."""

    __slots__ = ("index", "shape", "dtype", "kind", "name", "root", "has_view")

    def __init__(self, index: int, shape, dtype, kind: str, name: str = "",
                 root: int | None = None):
        self.index = index
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.kind = kind  # "input" | "op" | "view" | "inplace"
        self.name = name
        self.root = index if root is None else root
        self.has_view = False


class _Step:
    """One recorded operation: ``out = fn(*args, **kwargs)``."""

    __slots__ = ("fnspec", "args", "kwargs", "out", "view_src", "inplace", "label")

    def __init__(self, fnspec, args, kwargs, out: int, *,
                 view_src: int | None = None, inplace: bool = False,
                 label: str = ""):
        self.fnspec = fnspec      # ("ufunc", uf, method) | ("func", f) | ("method", name)
        self.args = args          # tree of _Ref / literals
        self.kwargs = kwargs
        self.out = out
        self.view_src = view_src  # slot the output is a view of (else None)
        self.inplace = inplace    # output aliases the buffer of args' slot
        self.label = label


@dataclass
class PlanStats:
    """Compile-time facts about a plan, surfaced by ``repro plan``."""

    ops_recorded: int = 0
    steps: int = 0
    view_steps: int = 0
    inplace_steps: int = 0
    dce_removed: int = 0
    folded_constants: int = 0
    constant_bytes: int = 0
    scalar_escapes: int = 0
    buffers: int = 0
    arena_bytes: int = 0
    naive_bytes: int = 0
    compile_seconds: float = 0.0
    input_shapes: dict = field(default_factory=dict)
    output_shape: tuple = ()
    output_dtype: str = ""

    def as_dict(self) -> dict:
        return {
            "ops_recorded": self.ops_recorded,
            "steps": self.steps,
            "view_steps": self.view_steps,
            "inplace_steps": self.inplace_steps,
            "dce_removed": self.dce_removed,
            "folded_constants": self.folded_constants,
            "constant_bytes": self.constant_bytes,
            "scalar_escapes": self.scalar_escapes,
            "buffers": self.buffers,
            "arena_bytes": self.arena_bytes,
            "naive_bytes": self.naive_bytes,
            "compile_seconds": self.compile_seconds,
            "input_shapes": {k: list(v) for k, v in self.input_shapes.items()},
            "output_shape": list(self.output_shape),
            "output_dtype": self.output_dtype,
        }


# ----------------------------------------------------------------------
# Tape
# ----------------------------------------------------------------------
class _Tape:
    """Recording of one forward pass at numpy granularity."""

    def __init__(self):
        self.slots: list[_Slot] = []
        self.steps: list[_Step] = []
        self.inputs: dict[str, int] = {}
        self.poisoned: str | None = None
        self.scalar_escapes = 0

    # -- recording -----------------------------------------------------
    def poison(self, reason: str) -> None:
        if self.poisoned is None:
            self.poisoned = reason

    def new_slot(self, arr: np.ndarray, kind: str, name: str = "",
                 root: int | None = None) -> _Slot:
        slot = _Slot(len(self.slots), arr.shape, arr.dtype, kind, name, root)
        self.slots.append(slot)
        return slot

    def add_input(self, name: str, value: np.ndarray) -> "TraceArray":
        arr = np.array(value, copy=True)  # trace must not mutate caller data
        slot = self.new_slot(arr, "input", name=name)
        self.inputs[name] = slot.index
        return _wrap(arr, self, slot.index)

    def record(self, fnspec, args, kwargs, result: np.ndarray, *,
               view_src: int | None = None, inplace_slot: int | None = None,
               label: str = "") -> int:
        """Append a step; returns the output slot index."""
        if inplace_slot is not None:
            target = self.slots[inplace_slot]
            # In-place writes are only safe when the target owns its whole
            # buffer (not a view) and nothing else aliases that buffer.
            if (target.kind == "view" or target.has_view
                    or self.slots[target.root].has_view):
                self.poison("in-place write into an aliased buffer")
            slot = self.new_slot(result, "inplace", root=target.root)
            step = _Step(fnspec, args, kwargs, slot.index, inplace=True,
                         label=label)
        elif view_src is not None:
            src = self.slots[view_src]
            slot = self.new_slot(result, "view", root=src.root)
            self.slots[src.root].has_view = True
            step = _Step(fnspec, args, kwargs, slot.index, view_src=view_src,
                         label=label)
        else:
            slot = self.new_slot(result, "op")
            step = _Step(fnspec, args, kwargs, slot.index, label=label)
        self.steps.append(step)
        return slot.index

    # -- compilation ---------------------------------------------------
    def compile(self, output_slot: int,
                trace_inputs: dict[str, np.ndarray],
                trace_output: np.ndarray) -> "ExecutionPlan":
        started = time.perf_counter()
        if self.poisoned:
            raise PlanUnsupported(f"trace poisoned: {self.poisoned}")
        stats = PlanStats(ops_recorded=len(self.steps),
                          scalar_escapes=self.scalar_escapes)

        # Dead code elimination: walk back from the output.
        needed: set[int] = {output_slot}
        keep: list[_Step] = []
        producer = {step.out: step for step in self.steps}
        # Resolve transitive needs in reverse program order.
        for step in reversed(self.steps):
            if step.out not in needed:
                continue
            keep.append(step)
            for ref in _iter_refs((step.args, step.kwargs)):
                needed.add(ref.slot)
        keep.reverse()
        stats.dce_removed = len(self.steps) - len(keep)

        # A view/inplace output keeps its source's *whole root group*
        # alive: extend `needed` with roots so liveness is computed per
        # arena buffer, not per SSA name.
        root_of = {s.index: s.root for s in self.slots}

        # Liveness per root: last step index (in `keep` order) at which
        # any slot of the group is consumed.
        last_use: dict[int, int] = {}
        for i, step in enumerate(keep):
            for ref in _iter_refs((step.args, step.kwargs)):
                last_use[root_of[ref.slot]] = i
            if step.inplace or step.view_src is not None:
                last_use[root_of[step.out]] = max(
                    last_use.get(root_of[step.out], i), i)
        out_root = root_of[output_slot]
        last_use[out_root] = len(keep) + 1  # never recycled
        for name, idx in self.inputs.items():
            last_use.setdefault(root_of[idx], -1)

        # Arena assignment: exact (shape, dtype) buffer pooling.
        buffers: dict[int, np.ndarray] = {}       # root -> buffer
        pool: dict[tuple, list[np.ndarray]] = {}  # (shape, dtype) -> free
        allocated: list[np.ndarray] = []

        def alloc(shape, dtype, root: int) -> np.ndarray:
            key = (tuple(shape), np.dtype(dtype))
            free = pool.get(key)
            buf = free.pop() if free else np.empty(shape, dtype=dtype)
            if not any(buf is b for b in allocated):
                allocated.append(buf)
            buffers[root] = buf
            return buf

        def release(step_index: int) -> None:
            for root, last in list(last_use.items()):
                if last == step_index and root in buffers:
                    buf = buffers[root]
                    if self.slots[root].kind != "view":
                        pool.setdefault(
                            (buf.shape, np.dtype(buf.dtype)), []).append(buf)
                    del last_use[root]

        input_buffers: dict[str, np.ndarray] = {}
        for name, idx in self.inputs.items():
            slot = self.slots[idx]
            buf = alloc(slot.shape, slot.dtype, idx)
            input_buffers[name] = buf

        # Resolve each slot to its concrete arena array (buffer or view).
        arrays: dict[int, np.ndarray] = dict(buffers)
        constants: dict[int, int] = {}

        def resolve(tree):
            if isinstance(tree, _Ref):
                return arrays[tree.slot]
            if isinstance(tree, tuple):
                return tuple(resolve(t) for t in tree)
            if isinstance(tree, list):
                return [resolve(t) for t in tree]
            if isinstance(tree, dict):
                return {k: resolve(v) for k, v in tree.items()}
            if isinstance(tree, np.ndarray):
                if id(tree) not in constants:
                    constants[id(tree)] = tree.nbytes
            return tree

        exec_steps: list[tuple[Callable, tuple, dict]] = []
        for i, step in enumerate(keep):
            slot = self.slots[step.out]
            args = resolve(step.args)
            kwargs = resolve(step.kwargs)
            fn = _resolve_callable(step.fnspec, args)
            if step.view_src is not None:
                # Materialise the view once, against arena buffers. If the
                # same call no longer yields a view (e.g. reshape of a
                # non-contiguous buffer), demote to a per-replay copy.
                src = arrays[step.view_src]
                result = fn(*args, **kwargs)
                if result.base is not None and np.may_share_memory(result, src):
                    arrays[step.out] = result
                    stats.view_steps += 1
                    release(i)
                    continue
                # Demoted buffers are never pooled: the original liveness
                # pass charged this slot's uses to the old root group, so
                # holding the buffer for the whole replay is the safe
                # (merely conservative) choice.
                out = np.empty(slot.shape, dtype=slot.dtype)
                allocated.append(out)
                arrays[step.out] = out
                exec_steps.append((_make_copy_step(out, fn, args, kwargs), (), {}))
                stats.naive_bytes += out.nbytes
                release(i)
                continue
            if step.inplace:
                target = buffers[root_of[step.out]]
                arrays[step.out] = target
                kwargs = dict(kwargs)
                kwargs["out"] = target
                exec_steps.append((fn, args, kwargs))
                stats.inplace_steps += 1
                release(i)
                continue
            out = alloc(slot.shape, slot.dtype, step.out)
            arrays[step.out] = out
            stats.naive_bytes += out.nbytes
            if _supports_out(step.fnspec):
                kwargs = dict(kwargs)
                kwargs["out"] = out
                exec_steps.append((fn, args, kwargs))
            else:
                exec_steps.append((_make_copy_step(out, fn, args, kwargs), (), {}))
            release(i)

        output_array = arrays.get(output_slot)
        if output_array is None:
            raise PlanUnsupported("output slot was never materialised")

        stats.steps = len(exec_steps)
        stats.folded_constants = len(constants)
        stats.constant_bytes = sum(constants.values())
        stats.buffers = len(allocated)
        stats.arena_bytes = sum(b.nbytes for b in allocated)
        stats.input_shapes = {
            name: self.slots[idx].shape for name, idx in self.inputs.items()
        }
        stats.output_shape = tuple(output_array.shape)
        stats.output_dtype = str(output_array.dtype)

        plan = ExecutionPlan(input_buffers, exec_steps, output_array, stats)
        # Compile-time proof: replaying the trace inputs must reproduce
        # the traced output bit for bit, otherwise the lowering is wrong.
        check = plan.replay(trace_inputs, copy=False)
        if not _bitwise_equal(check, trace_output):
            raise PlanUnsupported("compiled plan diverged from traced forward")
        stats.compile_seconds = time.perf_counter() - started
        return plan


def _iter_refs(tree):
    if isinstance(tree, _Ref):
        yield tree
    elif isinstance(tree, (tuple, list)):
        for item in tree:
            yield from _iter_refs(item)
    elif isinstance(tree, dict):
        for item in tree.values():
            yield from _iter_refs(item)


def _resolve_callable(fnspec, args) -> Callable:
    kind = fnspec[0]
    if kind == "ufunc":
        return getattr(fnspec[1], fnspec[2])
    if kind == "func":
        return fnspec[1]
    if kind == "method":
        # args[0] is the bound array; close over its method.
        return _MethodCall(fnspec[1])
    raise PlanUnsupported(f"unknown step kind {kind!r}")


class _MethodCall:
    """Replayable ``arr.<name>(*args)`` step (arr arrives as args[0])."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __call__(self, arr, *args, **kwargs):
        return getattr(arr, self.name)(*args, **kwargs)


def _supports_out(fnspec) -> bool:
    kind = fnspec[0]
    if kind == "ufunc":
        return fnspec[2] in ("__call__", "reduce")
    if kind == "func":
        return fnspec[1] in (np.concatenate, np.stack)
    return False


def _make_copy_step(out: np.ndarray, fn: Callable, args: tuple, kwargs: dict):
    def run(_out=out, _fn=fn, _args=args, _kwargs=kwargs):
        np.copyto(_out, _fn(*_args, **_kwargs), casting="no")

    return run


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    return bool(np.array_equal(a, b, equal_nan=True))


# ----------------------------------------------------------------------
# Execution plan
# ----------------------------------------------------------------------
class ExecutionPlan:
    """A compiled forward pass: prebound numpy steps over a buffer arena.

    ``replay`` is not reentrant — the arena is shared state — so a lock
    serialises replays. Callers that already serialise forwards (the
    serving engine holds its own forward lock) pay one uncontended
    acquire.
    """

    def __init__(self, input_buffers: dict[str, np.ndarray],
                 steps: list[tuple[Callable, tuple, dict]],
                 output: np.ndarray, stats: PlanStats):
        self._inputs = input_buffers
        self._steps = steps
        self._output = output
        self.stats = stats
        self._lock = threading.Lock()

    @property
    def input_names(self) -> tuple[str, ...]:
        return tuple(self._inputs)

    def replay(self, inputs: dict[str, np.ndarray], *, copy: bool = True) -> np.ndarray:
        """Execute the plan on fresh inputs.

        With ``copy=False`` the returned array aliases the arena and is
        only valid until the next replay; the serving engine consumes it
        immediately under its forward lock and opts in to skip the copy.
        """
        with self._lock:
            for name, buf in self._inputs.items():
                value = inputs[name]
                if value.shape != buf.shape:
                    raise ValueError(
                        f"plan input {name!r} expects shape {buf.shape}, "
                        f"got {value.shape}"
                    )
                np.copyto(buf, value, casting="no")
            for fn, args, kwargs in self._steps:
                fn(*args, **kwargs)
            return self._output.copy() if copy else self._output


# ----------------------------------------------------------------------
# TraceArray
# ----------------------------------------------------------------------
def _wrap(arr: np.ndarray, tape: _Tape, slot: int) -> "TraceArray":
    view = arr.view(TraceArray)
    view._tape = tape
    view._slot = slot
    return view


def _find_tape(*trees) -> _Tape | None:
    for tree in trees:
        for item in _iter_trace_arrays(tree):
            if item._tape is not None:
                return item._tape
    return None


def _iter_trace_arrays(tree):
    if isinstance(tree, TraceArray):
        yield tree
    elif isinstance(tree, (tuple, list)):
        for item in tree:
            yield from _iter_trace_arrays(item)
    elif isinstance(tree, dict):
        for item in tree.values():
            yield from _iter_trace_arrays(item)


def taint(value, reason: str) -> None:
    """Poison the trace owning ``value`` (if any).

    Called from code paths the tracer cannot capture (e.g. scipy sparse
    products) so the plan fails closed instead of baking stale data.
    """
    for item in _iter_trace_arrays(value):
        if item._tape is not None:
            item._tape.poison(reason)
            return


class TraceArray(np.ndarray):
    """An ndarray that records every operation consuming it on a tape.

    Results of intercepted operations carry the tape forward; arrays
    that acquire the subclass through an uninstrumented path (C-level
    casts, templates) have ``_slot is None`` and poison the tape when
    consumed — the plan then fails closed and callers run eagerly.
    """

    def __array_finalize__(self, obj):
        self._tape = getattr(obj, "_tape", None)
        self._slot = None  # unknown provenance unless set by the tracer

    # -- spec building -------------------------------------------------
    def _spec(self, tape: _Tape, tree):
        """Base-array tree + recorded spec; poisons on unknown arrays."""
        if isinstance(tree, TraceArray):
            base = tree.view(np.ndarray)
            if tree._tape is not tape or tree._slot is None:
                tape.poison("array of unknown provenance consumed by trace")
                return base, base
            return base, _Ref(tree._slot)
        if isinstance(tree, (tuple, list)):
            pairs = [self._spec(tape, item) for item in tree]
            cls = type(tree)
            return cls(p[0] for p in pairs), cls(p[1] for p in pairs)
        if isinstance(tree, dict):
            pairs = {k: self._spec(tape, v) for k, v in tree.items()}
            return ({k: v[0] for k, v in pairs.items()},
                    {k: v[1] for k, v in pairs.items()})
        return tree, tree

    # -- ufunc interception --------------------------------------------
    def __array_ufunc__(self, ufunc, method, *inputs, out=None, **kwargs):
        if out is not None:
            out = tuple(out)
            if all(o is None for o in out):
                out = None
        tape = self._tape if self._tape is not None else _find_tape(inputs, out)
        base_inputs, spec_inputs = self._spec(tape, tuple(inputs)) \
            if tape is not None else (tuple(
                x.view(np.ndarray) if isinstance(x, TraceArray) else x
                for x in inputs), None)
        out_arrays = None
        if out is not None:
            out_arrays = tuple(
                o.view(np.ndarray) if isinstance(o, TraceArray) else o
                for o in out
            )
        call_kwargs = dict(kwargs)
        if out_arrays is not None:
            call_kwargs["out"] = out_arrays
        result = getattr(ufunc, method)(*base_inputs, **call_kwargs)
        if tape is None or tape.poisoned:
            return result
        if method not in ("__call__", "reduce"):
            tape.poison(f"unsupported ufunc method {ufunc.__name__}.{method}")
            return result
        if ufunc.nout != 1 or isinstance(result, tuple):
            tape.poison(f"multi-output ufunc {ufunc.__name__}")
            return result
        _, spec_kwargs = self._spec(tape, kwargs)
        if out is not None:
            if len(out) != 1 or not isinstance(out[0], TraceArray) \
                    or out[0]._slot is None or out[0]._tape is not tape:
                tape.poison("ufunc out= targets an untraced buffer")
                return result
            target = out[0]
            slot = tape.record(
                ("ufunc", ufunc, method), spec_inputs, spec_kwargs,
                np.asarray(result), inplace_slot=target._slot,
                label=ufunc.__name__,
            )
            target._slot = slot  # SSA rebind of the mutated name
            return target
        if not isinstance(result, np.ndarray):
            result = np.asarray(result)  # 0-d reduce: keep it traceable
        slot = tape.record(
            ("ufunc", ufunc, method), spec_inputs, spec_kwargs, result,
            label=ufunc.__name__,
        )
        return _wrap(np.asarray(result), tape, slot)

    # -- array-function interception -----------------------------------
    def __array_function__(self, func, types, args, kwargs):
        tape = self._tape if self._tape is not None else _find_tape(args, kwargs)
        if tape is None or tape.poisoned:
            base_args, _ = self._spec(_Tape(), args)
            base_kwargs, _ = self._spec(_Tape(), kwargs)
            return func(*base_args, **base_kwargs)
        base_args, spec_args = self._spec(tape, args)
        base_kwargs, spec_kwargs = self._spec(tape, kwargs)
        result = func(*base_args, **base_kwargs)
        if tape.poisoned:
            return result
        if not isinstance(result, np.ndarray):
            tape.poison(f"{func.__name__} returned a non-array result")
            return result
        traced_inputs = [t for t in _iter_trace_arrays((args, kwargs))
                         if t._slot is not None]
        view_src = None
        if len(traced_inputs) == 1 and result.base is not None and \
                np.may_share_memory(result, traced_inputs[0].view(np.ndarray)):
            view_src = traced_inputs[0]._slot
        slot = tape.record(("func", func), spec_args, spec_kwargs, result,
                           view_src=view_src, label=func.__name__)
        return _wrap(np.asarray(result), tape, slot)

    # -- method interception -------------------------------------------
    def _record_method(self, name: str, args, kwargs):
        tape = self._tape
        base = self.view(np.ndarray)
        if tape is None or tape.poisoned:
            return getattr(base, name)(*args, **kwargs)
        if self._slot is None:
            tape.poison(f"method {name} on array of unknown provenance")
            return getattr(base, name)(*args, **kwargs)
        base_args, spec_args = self._spec(tape, tuple(args))
        base_kwargs, spec_kwargs = self._spec(tape, kwargs)
        result = getattr(base, name)(*base_args, **base_kwargs)
        if not isinstance(result, np.ndarray):
            tape.poison(f"method {name} returned a non-array result")
            return result
        view_src = None
        if result.base is not None and np.may_share_memory(result, base):
            view_src = self._slot
        slot = tape.record(
            ("method", name), (_Ref(self._slot),) + spec_args, spec_kwargs,
            result, view_src=view_src, label=name,
        )
        return _wrap(np.asarray(result), tape, slot)

    def reshape(self, *shape, **kwargs):
        return self._record_method("reshape", shape, kwargs)

    def transpose(self, *axes):
        return self._record_method("transpose", axes, {})

    @property
    def T(self):
        return self.transpose()

    def swapaxes(self, axis1, axis2):
        return self._record_method("swapaxes", (axis1, axis2), {})

    def astype(self, dtype, **kwargs):
        return self._record_method("astype", (dtype,), kwargs)

    def copy(self, order="C"):
        return self._record_method("copy", (order,), {})

    def ravel(self, order="C"):
        return self._record_method("ravel", (order,), {})

    def __getitem__(self, index):
        if self._tape is None or self._tape.poisoned or self._slot is None:
            return self.view(np.ndarray)[index]
        for item in _iter_trace_arrays(
                index if isinstance(index, tuple) else (index,)):
            self._tape.poison("data-dependent (traced) index")
            return self.view(np.ndarray)[index]
        return self._record_method("__getitem__", (index,), {})

    # -- scalar escapes ------------------------------------------------
    def _escape(self):
        if self._tape is not None:
            self._tape.scalar_escapes += 1

    def __bool__(self):
        self._escape()
        return bool(self.view(np.ndarray))

    def __float__(self):
        self._escape()
        return float(self.view(np.ndarray))

    def __int__(self):
        self._escape()
        return int(self.view(np.ndarray))

    def __index__(self):
        self._escape()
        return self.view(np.ndarray).__index__()


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def trace(fn: Callable[..., Any], inputs: dict[str, np.ndarray]) -> tuple[ExecutionPlan, np.ndarray]:
    """Record ``fn(**inputs)`` once and compile it into a plan.

    Returns ``(plan, output)`` where ``output`` is the (eagerly computed,
    bitwise-normal) result of the traced run — callers can serve it
    directly, so compiling costs one ordinary forward plus lowering.

    Raises :class:`PlanUnsupported` when the forward does anything the
    tracer cannot faithfully replay.
    """
    tape = _Tape()
    traced = {name: tape.add_input(name, np.asarray(value))
              for name, value in inputs.items()}
    with no_grad():
        result = fn(**traced)
    if not isinstance(result, np.ndarray) and hasattr(result, "data"):
        result = result.data  # accept Tensor-like results
    if not isinstance(result, TraceArray) or result._slot is None:
        raise PlanUnsupported(
            tape.poisoned or "output is not a traced array"
        )
    if tape.poisoned:
        raise PlanUnsupported(f"trace poisoned: {tape.poisoned}")
    output = np.array(result.view(np.ndarray), copy=True)
    plan = tape.compile(result._slot, inputs, output)
    return plan, output
