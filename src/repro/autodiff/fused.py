"""Fused kernels for the training hot path.

:func:`cheb_propagate` collapses the ChebConv propagation loop

.. code-block:: python

    concat([T_k @ x for T_k in cheb], axis=-1)        # K matmuls + concat

into **one** matmul against a precomputed stacked basis: the ``K``
polynomial matrices are stacked vertically into a ``(K·N, N)`` forward
basis (its transpose, ``(N, K·N)``, drives the backward), so a batch of
windows pays a single BLAS call per layer instead of ``K`` small ones
plus a concat — and the autodiff graph records one node instead of
``K + 1``. The reordering from ``(..., K·N, C)`` to the concat layout
``(..., N, K·C)`` is a reshape/moveaxis, bitwise identical to the loop
version, so existing ``(K·C, out)`` weight layouts (checkpoints,
bundles) are untouched.
"""

from __future__ import annotations

import numpy as np

from .dtype import default_dtype
from .plan import taint
from .tensor import Tensor, as_tensor, is_grad_enabled


def _contiguous(a: np.ndarray) -> np.ndarray:
    """C-contiguous ``a``, preserving ndarray subclasses.

    ``np.ascontiguousarray`` strips subclasses at the C level, which
    makes the copy invisible to execution-plan tracing; an explicit
    ``copy()`` of the non-contiguous view is bitwise-identical and
    dispatches through the subclass.
    """
    return a if a.flags["C_CONTIGUOUS"] else a.copy()

__all__ = ["ChebBasis", "cheb_propagate"]


class ChebBasis:
    """Precomputed stacked Chebyshev basis shared by fused propagations.

    Parameters
    ----------
    cheb_stack:
        ``(K, N, N)`` array of ``T_k(L̃)`` polynomials (constant during
        training — the graph is fixed). Stored in the policy dtype.
    sparse:
        Store the stacked basis as a CSR matrix (pays off on large,
        sparse road networks; requires scipy).
    sparsity_eps:
        Entries with ``|value| <= eps`` are dropped from the sparse basis.
    """

    __slots__ = ("order", "num_nodes", "sparse", "forward_basis", "backward_basis")

    def __init__(self, cheb_stack, sparse: bool = False, sparsity_eps: float = 1e-12):
        stack = np.asarray(cheb_stack, dtype=default_dtype())
        if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
            raise ValueError(
                f"cheb_stack must have shape (K, N, N), got {stack.shape}"
            )
        k, n, _ = stack.shape
        self.order = int(k)
        self.num_nodes = int(n)
        self.sparse = bool(sparse)
        stacked = np.ascontiguousarray(stack.reshape(k * n, n))
        if sparse:
            from scipy import sparse as sp

            pruned = np.where(np.abs(stacked) > sparsity_eps, stacked, 0.0)
            self.forward_basis = sp.csr_matrix(pruned)
            self.backward_basis = self.forward_basis.T.tocsr()
        else:
            self.forward_basis = stacked  # (K·N, N)
            self.backward_basis = np.ascontiguousarray(stacked.T)  # (N, K·N)

    def __repr__(self) -> str:
        kind = "sparse" if self.sparse else "dense"
        return f"ChebBasis(K={self.order}, N={self.num_nodes}, {kind})"


def _basis_matmul(basis, data: np.ndarray) -> np.ndarray:
    """``basis @ data`` over the node axis (-2), dense or CSR basis."""
    if isinstance(basis, np.ndarray):
        return np.matmul(basis, data)
    # scipy's product runs outside numpy dispatch: a trace cannot see it,
    # so fail the plan closed instead of baking stale activations.
    taint(data, "sparse cheb basis matmul is untraceable")
    if data.ndim == 2:
        return np.asarray(basis @ data)
    # CSR only multiplies 2-D operands: fold leading batch axes into the
    # trailing one, multiply once, and unfold.
    moved = np.moveaxis(data, -2, 0)  # (N, ..., C)
    flat = moved.reshape(moved.shape[0], -1)
    out = np.asarray(basis @ flat)  # (R, batch*C)
    out = out.reshape((out.shape[0],) + moved.shape[1:])
    return np.moveaxis(out, 0, -2)


def cheb_propagate(x: Tensor, basis: ChebBasis) -> Tensor:
    """``(..., N, C) -> (..., N, K·C)``: all K polynomial hops in one op.

    Output feature ``k·C + c`` equals ``(T_k @ x)[..., n, c]`` — the
    exact layout of the concat-of-matmuls it replaces.
    """
    x = as_tensor(x)
    k, n = basis.order, basis.num_nodes
    if x.data.ndim < 2 or x.data.shape[-2] != n:
        raise ValueError(
            f"expected {n} nodes on axis -2, got shape {x.shape}"
        )
    c = x.data.shape[-1]
    z = _basis_matmul(basis.forward_basis, x.data)  # (..., K·N, C)
    lead = z.shape[:-2]
    out = _contiguous(
        np.moveaxis(z.reshape(lead + (k, n, c)), -3, -2)
    ).reshape(lead + (n, k * c))
    if not is_grad_enabled():
        return Tensor(out)

    def backward(g, bb=basis.backward_basis, k=k, n=n, c=c):
        lead = g.shape[:-2]
        gz = np.ascontiguousarray(
            np.moveaxis(g.reshape(lead + (n, k, c)), -2, -3)
        ).reshape(lead + (k * n, c))
        return (_basis_matmul(bb, gz),)

    return Tensor._make(out, (x,), backward, "cheb_propagate")
