"""Composite differentiable functions built on the primitive Tensor ops."""

from __future__ import annotations

import numpy as np

from .dtype import default_dtype
from .tensor import Tensor, as_tensor, maximum, where

__all__ = [
    "softmax",
    "log_softmax",
    "leaky_relu",
    "elu",
    "softplus",
    "dropout_mask",
    "one_hot",
    "mse",
    "mae",
    "huber",
    "masked_mae",
    "masked_mse",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectifier: ``x`` where positive, ``slope * x`` elsewhere."""
    return where(x.data > 0, x, x * negative_slope)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit."""
    return where(x.data > 0, x, (x.exp() - 1.0) * alpha)


def softplus(x: Tensor) -> Tensor:
    """Smooth approximation of relu: ``log(1 + exp(x))`` (stabilized)."""
    return maximum(x, 0.0) + ((-x.abs()).exp() + 1.0).log()


def dropout_mask(shape: tuple[int, ...], p: float, rng: np.random.Generator) -> np.ndarray:
    """Inverted-dropout mask: zeros with prob ``p``, survivors scaled by 1/(1-p)."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = rng.random(shape) >= p
    return keep.astype(default_dtype()) / np.asarray(1.0 - p, dtype=default_dtype())


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding of an integer index array."""
    out = np.zeros(indices.shape + (num_classes,), dtype=default_dtype())
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def mse(pred: Tensor, target) -> Tensor:
    """Mean squared error."""
    diff = pred - as_tensor(target)
    return (diff * diff).mean()


def mae(pred: Tensor, target) -> Tensor:
    """Mean absolute error."""
    return (pred - as_tensor(target)).abs().mean()


def huber(pred: Tensor, target, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails."""
    diff = (pred - as_tensor(target)).abs()
    quadratic = diff * diff * 0.5
    linear = diff * delta - 0.5 * delta * delta
    return where(diff.data <= delta, quadratic, linear).mean()


def masked_mae(pred: Tensor, target, mask) -> Tensor:
    """MAE over entries where ``mask`` is 1; safe when the mask is empty."""
    mask_t = as_tensor(mask)
    diff = (pred - as_tensor(target)).abs() * mask_t
    denom = float(np.maximum(mask_t.data.sum(), 1.0))
    return diff.sum() / denom


def masked_mse(pred: Tensor, target, mask) -> Tensor:
    """MSE over entries where ``mask`` is 1; safe when the mask is empty."""
    mask_t = as_tensor(mask)
    diff = pred - as_tensor(target)
    sq = diff * diff * mask_t
    denom = float(np.maximum(mask_t.data.sum(), 1.0))
    return sq.sum() / denom
