"""Reverse-mode autodiff substrate (numpy-backed)."""

from .functional import (
    dropout_mask,
    elu,
    huber,
    leaky_relu,
    log_softmax,
    mae,
    masked_mae,
    masked_mse,
    mse,
    one_hot,
    softmax,
    softplus,
)
from .gradcheck import gradcheck, numerical_gradient
from .sparse import sparse_matmul
from .tensor import (
    Tensor,
    as_tensor,
    concat,
    enable_grad,
    is_grad_enabled,
    maximum,
    minimum,
    no_grad,
    stack,
    where,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "softmax",
    "log_softmax",
    "leaky_relu",
    "elu",
    "softplus",
    "dropout_mask",
    "one_hot",
    "mse",
    "mae",
    "huber",
    "masked_mae",
    "masked_mse",
    "gradcheck",
    "sparse_matmul",
    "numerical_gradient",
]
