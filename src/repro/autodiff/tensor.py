"""Reverse-mode automatic differentiation on top of numpy.

This module is the lowest-level substrate of the reproduction: the paper's
model is trained with backpropagation through a recurrent imputation path
(imputed values are *trainable nodes* of the computation graph), so we need a
real autodiff engine, not a collection of hand-derived gradients.

The design follows the classic tape-free dynamic graph approach:

* :class:`Tensor` wraps a ``numpy.ndarray`` and, when produced by a
  differentiable operation, records its parent tensors together with a
  closure that maps the output gradient to per-parent gradients.
* :meth:`Tensor.backward` topologically sorts the reachable graph and
  accumulates gradients into ``.grad`` of every leaf with
  ``requires_grad=True``.

All operations support full numpy broadcasting; gradients are automatically
"unbroadcast" (summed over broadcast axes) on the way back.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from .dtype import default_dtype

__all__ = [
    "Tensor",
    "SliceGrad",
    "no_grad",
    "inference_mode",
    "enable_grad",
    "is_grad_enabled",
    "as_tensor",
    "concat",
    "split",
    "stack",
    "where",
    "maximum",
    "minimum",
]


class _GradMode(threading.local):
    """Per-thread grad-mode flag.

    The flag must be thread-local: the serving stack runs no-grad
    forwards on engine/router worker threads while training code may be
    mid-backward on another thread. With a process-global flag, two
    overlapping ``no_grad`` contexts on different threads restore their
    saved values out of order and can leave grad recording disabled for
    every thread — permanently.
    """

    enabled = True  # class attribute = per-thread default


_grad_mode = _GradMode()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (this thread).

    Inside the context every op takes a fast dispatch path: no backward
    closure is allocated, no auxiliary arrays (masks, permutations, slice
    tables) are materialised for the backward pass, and the result tensor
    carries no parents. Forward values are bitwise-identical to grad-mode
    outputs — only the tape is skipped. Used during evaluation/prediction
    and by the serving stack so memory stays flat and per-op overhead is
    minimal. The mode is per-thread, so a serving forward on a worker
    thread never disables grad for a concurrent training thread.
    """
    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


#: Alias for :func:`no_grad` — the serving stack calls it ``inference_mode``
#: to mirror the torch naming; both take the same fast dispatch path.
inference_mode = no_grad


@contextlib.contextmanager
def enable_grad():
    """Context manager that (re-)enables graph construction (this thread)."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = True
    try:
        yield
    finally:
        _grad_mode.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return _grad_mode.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were added or broadcast to match ``shape``.

    When an operand of shape ``shape`` was broadcast up to the shape of
    ``grad`` during the forward pass, the chain rule requires summing the
    incoming gradient over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were prepended by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes where the original dimension was 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, ndarray, scalar, nested list) to a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class SliceGrad:
    """A gradient confined to a basic-indexed region of its parent.

    Backward closures of slicing ops (``__getitem__`` with basic indices,
    :func:`split`) return this instead of a dense zero-padded array. The
    backward engine scatters it into the parent's accumulation buffer in
    place — so the four gate slices of an LSTM step share *one* dense
    gradient buffer instead of allocating (and then summing) four
    full-size arrays through ``np.add.at``.
    """

    __slots__ = ("index", "grad")

    def __init__(self, index, grad: np.ndarray):
        self.index = index
        self.grad = grad

    def to_dense(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        buffer = np.zeros(shape, dtype=dtype)
        buffer[self.index] = self.grad
        return buffer


def _is_basic_index(index) -> bool:
    """True when ``index`` triggers numpy basic (view) indexing only."""
    items = index if isinstance(index, tuple) else (index,)
    return all(
        item is None
        or item is Ellipsis
        or isinstance(item, (int, np.integer, slice))
        for item in items
    )


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts. Non-float input (ints, bools,
        python lists of ints) is cast to the policy dtype
        (:func:`repro.autodiff.default_dtype`, float32 unless overridden);
        arrays that already have a float dtype keep it.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` for this
        tensor when :meth:`backward` is called on a downstream result.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op")

    # Make numpy defer binary operators (ndarray + Tensor, ndarray @ Tensor)
    # to this class's reflected methods instead of elementwise-iterating.
    __array_priority__ = 1000

    def __init__(self, data, requires_grad: bool = False):
        # asanyarray, not asarray: ndarray subclasses must survive the
        # wrap so execution-plan tracing (repro.autodiff.plan) can follow
        # values through Tensor ops.
        arr = np.asanyarray(data)
        if arr.dtype.kind not in "fc":
            arr = arr.astype(default_dtype())
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._backward: Callable[[np.ndarray], Sequence[np.ndarray | None]] | None = None
        self._op: str = ""

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(data) -> "Tensor":
        """Fast constructor for no-grad op results.

        Every no-grad dispatch used to route through ``__init__`` —
        coercion, dtype-policy check, flag bookkeeping — per op. Callers
        guarantee ``data`` is the result of a numpy op on policy-typed
        operands, so all of that is skipped: the hot serving path
        allocates exactly one Tensor shell per op and nothing else.
        """
        out = Tensor.__new__(Tensor)
        out.data = data if isinstance(data, np.ndarray) else np.asanyarray(data)
        out.grad = None
        out.requires_grad = False
        out._parents = ()
        out._backward = None
        out._op = ""
        return out

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], Sequence[np.ndarray | None]],
        op: str,
    ) -> "Tensor":
        """Create the result of a differentiable op, wiring the graph."""
        requires = _grad_mode.enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
            out._op = op
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor. Defaults to
            ones (only sensible for scalar outputs, which is the common case
            for losses).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order via iterative DFS (recursion would overflow on
        # long recurrent chains such as the bidirectional imputation loop).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        # Accumulation buffers per pending node. ``owned`` marks buffers
        # this pass allocated itself — those are accumulated into
        # *in place*; anything handed back by a backward closure may
        # alias the closure's saved arrays (or a sibling's gradient), so
        # it is copied on the first accumulation instead of mutated.
        grads: dict[int, np.ndarray] = {id(self): grad}
        owned: set[int] = set()
        for node in reversed(topo):
            key = id(node)
            node_grad = grads.pop(key, None)
            if node_grad is None:
                continue
            node_owned = key in owned
            owned.discard(key)
            if node._backward is None:
                # Leaf: accumulate, taking ownership of our own buffers.
                if node.grad is None:
                    node.grad = node_grad if node_owned else node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pkey = id(parent)
                existing = grads.get(pkey)
                if type(pgrad) is SliceGrad:
                    if existing is None:
                        grads[pkey] = pgrad.to_dense(
                            parent.data.shape, parent.data.dtype
                        )
                        owned.add(pkey)
                        continue
                    if pkey not in owned:
                        existing = existing.copy()
                        grads[pkey] = existing
                        owned.add(pkey)
                    existing[pgrad.index] += pgrad.grad
                elif existing is None:
                    grads[pkey] = pgrad
                elif pkey in owned:
                    existing += pgrad
                else:
                    grads[pkey] = existing + pgrad
                    owned.add(pkey)
            # Release this node's saved parents and closure immediately:
            # intermediate activations captured for the backward become
            # collectable as soon as their gradients have been routed,
            # instead of living until the whole pass finishes.
            if node is not self:
                node._parents = ()
                node._backward = None
        # Nodes whose gradient never arrived (dead branches) still hold
        # their tape entries — free those too.
        for node in topo:
            if node is not self:
                node._parents = ()
                node._backward = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        if not _grad_mode.enabled:
            return Tensor._wrap(self.data + other.data)
        data = self.data + other.data

        def backward(g, a=self, b=other):
            return (_unbroadcast(g, a.shape), _unbroadcast(g, b.shape))

        return Tensor._make(data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        if not _grad_mode.enabled:
            return Tensor._wrap(self.data - other.data)
        data = self.data - other.data

        def backward(g, a=self, b=other):
            return (_unbroadcast(g, a.shape), _unbroadcast(-g, b.shape))

        return Tensor._make(data, (self, other), backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        if not _grad_mode.enabled:
            return Tensor._wrap(self.data * other.data)
        data = self.data * other.data

        def backward(g, a=self, b=other):
            return (
                _unbroadcast(g * b.data, a.shape),
                _unbroadcast(g * a.data, b.shape),
            )

        return Tensor._make(data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        if not _grad_mode.enabled:
            return Tensor._wrap(self.data / other.data)
        data = self.data / other.data

        def backward(g, a=self, b=other):
            return (
                _unbroadcast(g / b.data, a.shape),
                _unbroadcast(-g * a.data / (b.data * b.data), b.shape),
            )

        return Tensor._make(data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(-self.data)

        def backward(g):
            return (-g,)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        if not _grad_mode.enabled:
            return Tensor._wrap(self.data ** exponent)
        data = self.data ** exponent

        def backward(g, a=self, n=exponent):
            return (g * n * a.data ** (n - 1),)

        return Tensor._make(data, (self,), backward, "pow")

    # Comparison operators return plain boolean arrays (non-differentiable).
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(np.exp(self.data))
        data = np.exp(self.data)

        def backward(g, out=data):
            return (g * out,)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(np.log(self.data))

        def backward(g, a=self):
            return (g / a.data,)

        return Tensor._make(np.log(self.data), (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(np.sqrt(self.data))
        data = np.sqrt(self.data)

        def backward(g, out=data):
            return (g / (2.0 * out),)

        return Tensor._make(data, (self,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(np.tanh(self.data))
        data = np.tanh(self.data)

        def backward(g, out=data):
            return (g * (1.0 - out * out),)

        return Tensor._make(data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic: exp(-|x|) is in (0, 1], so one
        # exp call covers both branches without clipping.
        t = np.exp(-np.abs(self.data))
        t += 1.0
        pos = np.divide(1.0, t, out=t)  # 1 / (1 + exp(-|x|)), buffer reused
        data = np.where(self.data >= 0, pos, 1.0 - pos)
        if not _grad_mode.enabled:
            return Tensor._wrap(data)

        def backward(g, out=data):
            return (g * out * (1.0 - out),)

        return Tensor._make(data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(np.where(self.data > 0, self.data, 0.0))
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(g, m=mask):
            return (g * m,)

        return Tensor._make(data, (self,), backward, "relu")

    def __abs__(self) -> "Tensor":
        return self.abs()

    def abs(self) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(np.abs(self.data))
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def backward(g, s=sign):
            return (g * s,)

        return Tensor._make(data, (self,), backward, "abs")

    def clip(self, low: float | None, high: float | None) -> "Tensor":
        data = np.clip(self.data, low, high)
        if not _grad_mode.enabled:
            return Tensor._wrap(data)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)

        def backward(g, m=mask):
            return (g * m,)

        return Tensor._make(data, (self,), backward, "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(self.data.sum(axis=axis, keepdims=keepdims))
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g, a=self, ax=axis, kd=keepdims):
            if ax is None:
                return (np.broadcast_to(g, a.shape).copy(),)
            g_expanded = g if kd else np.expand_dims(g, ax)
            return (np.broadcast_to(g_expanded, a.shape).copy(),)

        return Tensor._make(data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(self.data.mean(axis=axis, keepdims=keepdims))
        data = self.data.mean(axis=axis, keepdims=keepdims)
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))

        def backward(g, a=self, ax=axis, kd=keepdims, n=count):
            if ax is None:
                return (np.broadcast_to(g / n, a.shape).copy(),)
            g_expanded = g if kd else np.expand_dims(g, ax)
            return (np.broadcast_to(g_expanded / n, a.shape).copy(),)

        return Tensor._make(data, (self,), backward, "mean")

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(self.data.max(axis=axis, keepdims=keepdims))
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g, a=self, ax=axis, kd=keepdims, out=data):
            if ax is None:
                mask = (a.data == out).astype(a.data.dtype)
                mask /= mask.sum()
                return (mask * g,)
            out_expanded = out if kd else np.expand_dims(out, ax)
            g_expanded = g if kd else np.expand_dims(g, ax)
            mask = (a.data == out_expanded).astype(a.data.dtype)
            mask /= mask.sum(axis=ax, keepdims=True)
            return (mask * g_expanded,)

        return Tensor._make(data, (self,), backward, "max")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return (-((-self).max(axis=axis, keepdims=keepdims)))

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other) -> "Tensor":
        other = as_tensor(other)
        if not _grad_mode.enabled:
            return Tensor._wrap(np.matmul(self.data, other.data))
        data = np.matmul(self.data, other.data)

        def backward(g, a=self, b=other):
            a_data, b_data = a.data, b.data
            # Promote vectors so the generic batched rules apply, then strip.
            a_vec = a_data.ndim == 1
            b_vec = b_data.ndim == 1
            a2 = a_data[None, :] if a_vec else a_data
            b2 = b_data[:, None] if b_vec else b_data
            g2 = g
            if a_vec and not b_vec:
                g2 = np.expand_dims(g, -2)
            elif b_vec and not a_vec:
                g2 = np.expand_dims(g, -1)
            elif a_vec and b_vec:
                g2 = g.reshape((1, 1))
            grad_a = np.matmul(g2, np.swapaxes(b2, -1, -2))
            grad_b = np.matmul(np.swapaxes(a2, -1, -2), g2)
            if a_vec:
                grad_a = grad_a.reshape(a_data.shape) if grad_a.ndim <= 2 else _unbroadcast(grad_a, (1,) + a_data.shape).reshape(a_data.shape)
            else:
                grad_a = _unbroadcast(grad_a, a_data.shape)
            if b_vec:
                grad_b = grad_b.reshape(b_data.shape) if grad_b.ndim <= 2 else _unbroadcast(grad_b, b_data.shape + (1,)).reshape(b_data.shape)
            else:
                grad_b = _unbroadcast(grad_b, b_data.shape)
            return (grad_a, grad_b)

        return Tensor._make(data, (self, other), backward, "matmul")

    __matmul__ = matmul

    def __rmatmul__(self, other) -> "Tensor":
        return as_tensor(other).matmul(self)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        if not _grad_mode.enabled:
            return Tensor._wrap(self.data.reshape(shape))
        data = self.data.reshape(shape)

        def backward(g, orig=self.data.shape):
            return (g.reshape(orig),)

        return Tensor._make(data, (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        if not _grad_mode.enabled:
            return Tensor._wrap(self.data.transpose(axes))
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(g, inv=inverse):
            return (g.transpose(inv),)

        return Tensor._make(data, (self,), backward, "transpose")

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def squeeze(self, axis: int) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(np.squeeze(self.data, axis=axis))
        data = np.squeeze(self.data, axis=axis)

        def backward(g, ax=axis):
            return (np.expand_dims(g, ax),)

        return Tensor._make(data, (self,), backward, "squeeze")

    def unsqueeze(self, axis: int) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(np.expand_dims(self.data, axis))
        data = np.expand_dims(self.data, axis)

        def backward(g, ax=axis):
            return (np.squeeze(g, axis=ax),)

        return Tensor._make(data, (self,), backward, "unsqueeze")

    def broadcast_to(self, shape: tuple[int, ...]) -> "Tensor":
        data = np.broadcast_to(self.data, shape)
        if not _grad_mode.enabled:
            return Tensor._wrap(data.copy())

        def backward(g, orig=self.data.shape):
            return (_unbroadcast(g, orig),)

        return Tensor._make(data.copy(), (self,), backward, "broadcast_to")

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad; ``pad_width`` follows ``numpy.pad`` conventions."""
        data = np.pad(self.data, pad_width)
        if not _grad_mode.enabled:
            return Tensor._wrap(data)
        slices = tuple(
            slice(before, before + dim)
            for (before, _after), dim in zip(pad_width, self.data.shape)
        )

        def backward(g, sl=slices):
            return (g[sl],)

        return Tensor._make(data, (self,), backward, "pad")

    def __getitem__(self, index) -> "Tensor":
        if not _grad_mode.enabled:
            return Tensor._wrap(self.data[index])
        data = self.data[index]

        if _is_basic_index(index):
            # Basic indices hit each source element at most once, so the
            # gradient is a plain scatter — return a SliceGrad and let
            # the backward engine write into a shared parent buffer
            # instead of allocating a dense zero array per slice.
            def backward(g, idx=index):
                return (SliceGrad(idx, g),)
        else:
            # Fancy indices may repeat elements; np.add.at handles the
            # required accumulation.
            def backward(g, a=self, idx=index):
                grad = np.zeros_like(a.data)
                np.add.at(grad, idx, g)
                return (grad,)

        return Tensor._make(data, (self,), backward, "getitem")


# ----------------------------------------------------------------------
# Multi-tensor free functions
# ----------------------------------------------------------------------
def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    if not _grad_mode.enabled:
        return Tensor._wrap(np.concatenate([t.data for t in tensors], axis=axis))
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g, offs=offsets, ax=axis, n=len(tensors)):
        grads = []
        for i in range(n):
            sl = [slice(None)] * g.ndim
            sl[ax] = slice(int(offs[i]), int(offs[i + 1]))
            grads.append(g[tuple(sl)])
        return grads

    return Tensor._make(data, tuple(tensors), backward, "concat")


def split(x: Tensor, sections: int | Sequence[int], axis: int = -1) -> tuple[Tensor, ...]:
    """Split ``x`` into chunks along ``axis`` — the inverse of :func:`concat`.

    ``sections`` is either a chunk count (the axis must divide evenly,
    like ``numpy.split``) or an explicit sequence of chunk sizes summing
    to the axis length. The forward pass returns zero-copy views; each
    chunk's backward is a :class:`SliceGrad`, so all chunks accumulate
    into one shared parent buffer — this replaces the sliced-``getitem``
    gate reads in :class:`~repro.nn.LSTMCell` (4 dense ``np.add.at``
    scatters per step) with in-place writes into a single buffer.
    """
    x = as_tensor(x)
    ndim = x.data.ndim
    if not -ndim <= axis < ndim:
        raise ValueError(f"axis {axis} out of range for shape {x.shape}")
    axis = axis % ndim
    length = x.data.shape[axis]
    if isinstance(sections, (int, np.integer)):
        if sections < 1 or length % sections != 0:
            raise ValueError(
                f"cannot split axis of length {length} into {sections} equal chunks"
            )
        sizes = [length // sections] * int(sections)
    else:
        sizes = [int(s) for s in sections]
        if any(s < 1 for s in sizes) or sum(sizes) != length:
            raise ValueError(
                f"section sizes {sizes} must be positive and sum to {length}"
            )
    head = (slice(None),) * axis
    outs = []
    offset = 0
    for size in sizes:
        index = head + (slice(offset, offset + size),)
        offset += size
        if not _grad_mode.enabled:
            outs.append(Tensor._wrap(x.data[index]))
            continue

        def backward(g, idx=index):
            return (SliceGrad(idx, g),)

        outs.append(Tensor._make(x.data[index], (x,), backward, "split"))
    return tuple(outs)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    if not _grad_mode.enabled:
        return Tensor._wrap(np.stack([t.data for t in tensors], axis=axis))
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g, ax=axis, n=len(tensors)):
        # Views, not copies: the engine only materialises a parent's
        # slice if that parent actually needs gradient accumulation.
        rolled = np.moveaxis(g, ax, 0)
        return [rolled[i] for i in range(n)]

    return Tensor._make(data, tuple(tensors), backward, "stack")


def where(condition, a, b) -> Tensor:
    """Differentiable elementwise select; ``condition`` is a constant mask."""
    cond = condition.data if isinstance(condition, Tensor) else np.asanyarray(condition)
    if cond.dtype != np.bool_:
        # Skip the cast when the caller already passes a boolean mask
        # (the common ``m > 0`` case): ``astype`` always copies, and the
        # copy would both cost an allocation per call on the serving hot
        # path and strip tracing provenance from the mask.
        cond = cond.astype(bool)
    a = as_tensor(a)
    b = as_tensor(b)
    if not _grad_mode.enabled:
        return Tensor._wrap(np.where(cond, a.data, b.data))
    data = np.where(cond, a.data, b.data)

    def backward(g, c=cond, ta=a, tb=b):
        return (
            _unbroadcast(np.where(c, g, 0.0), ta.shape),
            _unbroadcast(np.where(c, 0.0, g), tb.shape),
        )

    return Tensor._make(data, (a, b), backward, "where")


def maximum(a, b) -> Tensor:
    """Elementwise maximum; ties send gradient to the first operand."""
    a = as_tensor(a)
    b = as_tensor(b)
    if not _grad_mode.enabled:
        return Tensor._wrap(np.where(a.data >= b.data, a.data, b.data))
    take_a = a.data >= b.data
    data = np.where(take_a, a.data, b.data)

    def backward(g, m=take_a, ta=a, tb=b):
        return (
            _unbroadcast(np.where(m, g, 0.0), ta.shape),
            _unbroadcast(np.where(m, 0.0, g), tb.shape),
        )

    return Tensor._make(data, (a, b), backward, "maximum")


def minimum(a, b) -> Tensor:
    """Elementwise minimum; ties send gradient to the first operand."""
    a = as_tensor(a)
    b = as_tensor(b)
    if not _grad_mode.enabled:
        return Tensor._wrap(np.where(a.data <= b.data, a.data, b.data))
    take_a = a.data <= b.data
    data = np.where(take_a, a.data, b.data)

    def backward(g, m=take_a, ta=a, tb=b):
        return (
            _unbroadcast(np.where(m, g, 0.0), ta.shape),
            _unbroadcast(np.where(m, 0.0, g), tb.shape),
        )

    return Tensor._make(data, (a, b), backward, "minimum")
