"""Numerical gradient checking for the autodiff engine.

Used by the test suite to verify every primitive op and by developers when
adding new ops: compares analytic gradients against central finite
differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .dtype import dtype_policy
from .tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def _require_float64(inputs: Sequence[Tensor], which: Sequence[int], caller: str) -> None:
    """Finite differences with eps ~1e-6 drown in float32 rounding noise.

    Raise a clear error instead of reporting spurious mismatches when a
    check is attempted on float32 inputs (the global policy default).
    """
    for i in which:
        if inputs[i].data.dtype != np.float64:
            raise TypeError(
                f"{caller} requires float64 inputs, but input {i} has dtype "
                f"{inputs[i].data.dtype}. The global dtype policy defaults "
                "to float32 for speed; build the check's inputs from "
                "float64 arrays or run it under "
                "repro.autodiff.dtype_policy('float64')."
            )


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function of the input tensors returning a Tensor (any shape; the
        scalar objective is its elementwise sum).
    inputs:
        Input tensors; only ``inputs[index]`` is perturbed.
    index:
        Which input to differentiate with respect to.
    eps:
        Finite-difference step size.
    """
    _require_float64(inputs, [index], "numerical_gradient")
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    # Internal constants (init_state zeros, where fills...) must not
    # truncate the perturbed computation to float32.
    with dtype_policy(np.float64):
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = float(fn(*inputs).data.sum())
            flat[i] = original - eps
            minus = float(fn(*inputs).data.sum())
            flat[i] = original
            grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Verify analytic grads of ``fn`` against finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    ``True`` on success so it can be used inside ``assert gradcheck(...)``.
    """
    _require_float64(
        inputs,
        [i for i, inp in enumerate(inputs) if inp.requires_grad],
        "gradcheck",
    )
    for inp in inputs:
        inp.zero_grad()
    with dtype_policy(np.float64):
        out = fn(*inputs)
        out.sum().backward()
    for i, inp in enumerate(inputs):
        if not inp.requires_grad:
            continue
        analytic = inp.grad if inp.grad is not None else np.zeros_like(inp.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            diff = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs diff {diff:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
