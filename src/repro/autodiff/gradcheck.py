"""Numerical gradient checking for the autodiff engine.

Used by the test suite to verify every primitive op and by developers when
adding new ops: compares analytic gradients against central finite
differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function of the input tensors returning a Tensor (any shape; the
        scalar objective is its elementwise sum).
    inputs:
        Input tensors; only ``inputs[index]`` is perturbed.
    index:
        Which input to differentiate with respect to.
    eps:
        Finite-difference step size.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Verify analytic grads of ``fn`` against finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    ``True`` on success so it can be used inside ``assert gradcheck(...)``.
    """
    for inp in inputs:
        inp.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, inp in enumerate(inputs):
        if not inp.requires_grad:
            continue
        analytic = inp.grad if inp.grad is not None else np.zeros_like(inp.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            diff = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs diff {diff:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
