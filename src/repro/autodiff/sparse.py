"""Sparse-dense products with autodiff (large road networks).

Real deployments have hundreds to thousands of sensors; the Eq. 8
adjacency is then very sparse and dense ``(N, N) @ (B, N, D)`` products
dominate training time and memory. :func:`sparse_matmul` performs the
propagation with a *constant* ``scipy.sparse`` matrix while staying inside
the autodiff graph (the backward pass applies the transpose).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from . import tensor as _tensor_mod
from .plan import taint
from .tensor import Tensor

__all__ = ["sparse_matmul"]


def _apply(matrix: sp.spmatrix, data: np.ndarray) -> np.ndarray:
    """``matrix @ data`` over axis -2 of ``data`` (any leading batch axes)."""
    n = matrix.shape[1]
    # scipy products bypass numpy dispatch — untraceable for execution
    # plans, so poison any active trace instead of baking stale values.
    taint(data, "scipy sparse matmul is untraceable")
    if data.shape[-2] != n:
        raise ValueError(
            f"matrix expects {n} rows on axis -2, got shape {data.shape}"
        )
    if data.ndim == 2:
        return np.asarray(matrix @ data)
    moved = np.moveaxis(data, -2, 0)  # (N, ..., D)
    flat = moved.reshape(n, -1)
    out_flat = np.asarray(matrix @ flat)
    out = out_flat.reshape((matrix.shape[0],) + moved.shape[1:])
    return np.moveaxis(out, 0, -2)


def sparse_matmul(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Differentiable ``matrix @ x`` where ``matrix`` is a constant sparse
    matrix applied to axis ``-2`` of ``x``.

    Gradient: ``dL/dx = matrixᵀ @ dL/dout`` (the matrix itself is not a
    trainable parameter — graph structure is fixed during training).
    """
    if not sp.issparse(matrix):
        raise TypeError(f"expected a scipy.sparse matrix, got {type(matrix)}")
    csr = matrix.tocsr()
    data = _apply(csr, x.data)
    if not _tensor_mod._grad_mode.enabled:
        return Tensor(data)
    transpose = csr.T.tocsr()

    def backward(grad, t=transpose):
        return (_apply(t, grad),)

    return Tensor._make(data, (x,), backward, "sparse_matmul")
