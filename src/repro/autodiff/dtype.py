"""Global floating-point dtype policy.

Training in float64 doubles every matmul's memory traffic for precision
the models never need — the DCRNN / Graph WaveNet lineage trains in
float32 as standard practice. The policy below is the single switch that
decides which float dtype the engine materialises:

* :class:`Tensor` casts non-float input (ints, bools, python lists) to
  the policy dtype instead of hard-coded float64;
* ``nn.init`` initializers, dataset scalers, serving state buffers and
  model input coercions all allocate in the policy dtype;
* explicit float arrays keep their dtype, so a float64 array passed in
  stays float64 — that is what keeps :func:`gradcheck` tight (numpy's
  promotion rules carry float64 inputs through float32 parameters).

The default is ``float32``. Opt back into float64 either process-wide
(``REPRO_DTYPE=float64`` in the environment, or
:func:`set_default_dtype`) or locally with the :func:`dtype_policy`
context manager::

    with dtype_policy("float64"):
        assert gradcheck(fn, inputs)
"""

from __future__ import annotations

import contextlib
import os

import numpy as np

__all__ = ["default_dtype", "set_default_dtype", "dtype_policy"]

_ALLOWED = (np.dtype(np.float32), np.dtype(np.float64))


def _coerce(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in _ALLOWED:
        raise ValueError(
            f"dtype policy must be float32 or float64, got {resolved}"
        )
    return resolved


_DEFAULT_DTYPE = _coerce(os.environ.get("REPRO_DTYPE", np.float32))


def default_dtype() -> np.dtype:
    """The dtype new float tensors/buffers are allocated in."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the process-wide policy dtype; returns the previous one."""
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _coerce(dtype)
    return previous


@contextlib.contextmanager
def dtype_policy(dtype):
    """Temporarily switch the policy dtype (e.g. float64 for gradcheck)."""
    previous = set_default_dtype(dtype)
    try:
        yield _DEFAULT_DTYPE
    finally:
        set_default_dtype(previous)
