"""Resilience primitives for the serving stack.

The paper's model degrades gracefully when *data* goes missing; this
package makes the *system* degrade gracefully when anything else does:

* :mod:`repro.reliability.deadline` — monotonic time budgets threaded
  through the request path (:class:`Deadline`);
* :mod:`repro.reliability.retry` — decorrelated-jitter backoff with a
  shared retry budget (:class:`Retry`, :class:`RetryBudget`);
* :mod:`repro.reliability.breaker` — closed/open/half-open circuit
  breaker over a failure window (:class:`CircuitBreaker`);
* :mod:`repro.reliability.fallback` — fallback ladders, hedged calls
  and the state-only forecast of last resort (:class:`Fallback`,
  :class:`Hedge`, :func:`window_mean_forecast`);
* :mod:`repro.reliability.policy` — every knob in one validated frozen
  dataclass (:class:`ResiliencePolicy`);
* :mod:`repro.reliability.chaos` — seeded fault injection at the model
  and state-store seams (:class:`FaultPlan`).

See ``docs/RELIABILITY.md`` for the serving fallback ladder and chaos
workflow.
"""

from ..errors import CircuitOpen, DeadlineExceeded, InjectedFault, Overloaded
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import ChaosModel, ChaosStore, FaultInjector, FaultPlan
from .deadline import Deadline, current_deadline, deadline_scope
from .fallback import Fallback, FallbackResult, Hedge, window_mean_forecast
from .policy import ResiliencePolicy
from .retry import Retry, RetryBudget

__all__ = [
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "Retry",
    "RetryBudget",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "Fallback",
    "FallbackResult",
    "Hedge",
    "window_mean_forecast",
    "ResiliencePolicy",
    "FaultPlan",
    "FaultInjector",
    "ChaosModel",
    "ChaosStore",
    "DeadlineExceeded",
    "CircuitOpen",
    "Overloaded",
    "InjectedFault",
]
