"""Fallback ladders and hedged calls.

:class:`Fallback` expresses "try these answers in order of preference"
as data instead of nested try/except: each rung is named, and the
result says which rung answered — the serving layer uses the name to
tag degraded responses (``X-Degraded`` header / ``degraded`` field).

:class:`Hedge` bounds tail latency: start the primary call, and if it
has not answered within ``delay_s``, launch the backup concurrently and
take whichever finishes first. The classic use is hedging a slow model
forward with a cheap estimator.

:func:`window_mean_forecast` is the serving stack's rung of last
resort: a HistoricalAverage-style constant forecast computed purely
from the live :class:`~repro.serve.state.StateWindow` contents, so it
works even when the model (and its weights) are unusable.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = ["Fallback", "FallbackResult", "Hedge", "window_mean_forecast"]

T = TypeVar("T")


class FallbackResult:
    """The answer plus the name of the rung that produced it."""

    __slots__ = ("value", "rung", "errors")

    def __init__(self, value, rung: str, errors: list[BaseException]):
        self.value = value
        self.rung = rung
        self.errors = errors

    @property
    def degraded(self) -> bool:
        """True when any rung above the answering one failed."""
        return bool(self.errors)


class Fallback:
    """An ordered ladder of ``(name, callable)`` rungs.

    ``call()`` walks the rungs top-down; a rung failing with one of
    ``catch`` moves to the next. The last rung's error propagates —
    there is nothing left to degrade to.
    """

    def __init__(
        self,
        rungs: Sequence[tuple[str, Callable[..., T]]],
        catch: tuple[type[BaseException], ...] = (Exception,),
    ):
        if not rungs:
            raise ValueError("fallback ladder needs at least one rung")
        names = [name for name, _fn in rungs]
        if len(set(names)) != len(names):
            raise ValueError(f"fallback rung names must be unique, got {names}")
        self.rungs = list(rungs)
        self.catch = tuple(catch)

    def call(self, *args, **kwargs) -> FallbackResult:
        errors: list[BaseException] = []
        for index, (name, fn) in enumerate(self.rungs):
            try:
                return FallbackResult(fn(*args, **kwargs), name, errors)
            except self.catch as error:
                if index == len(self.rungs) - 1:
                    raise
                errors.append(error)
        raise AssertionError("unreachable: loop returns or raises")


class Hedge:
    """First-success-wins hedging of a slow primary with a backup."""

    def __init__(self, delay_s: float = 0.05):
        if delay_s < 0:
            raise ValueError(f"hedge delay must be >= 0, got {delay_s}")
        self.delay_s = delay_s

    def call(
        self,
        primary: Callable[[], T],
        backup: Callable[[], T] | None = None,
    ) -> tuple[T, str]:
        """Run ``primary``, hedging with ``backup`` (default: primary again).

        The hedge launches when the primary has neither answered nor
        failed within ``delay_s`` (a fast primary failure launches it
        immediately). Returns ``(result, which)`` with ``which`` in
        ``{"primary", "hedge"}``; if both fail, the primary's error
        propagates.
        """
        import queue as _queue

        backup = backup if backup is not None else primary
        outcomes: "_queue.Queue[tuple[str, bool, object]]" = _queue.Queue()

        def run(which: str, fn: Callable[[], T]) -> None:
            try:
                outcomes.put((which, True, fn()))
            except BaseException as error:  # noqa: BLE001 - re-raised below
                outcomes.put((which, False, error))

        threading.Thread(target=run, args=("primary", primary), daemon=True).start()
        errors: dict[str, BaseException] = {}
        try:
            which, ok, payload = outcomes.get(timeout=self.delay_s)
            if ok:
                return payload, which  # primary answered before the hedge fired
            errors[which] = payload
        except _queue.Empty:
            pass  # primary still running: hedge rides alongside it
        threading.Thread(target=run, args=("hedge", backup), daemon=True).start()

        outstanding = 2 - len(errors)
        while outstanding:
            which, ok, payload = outcomes.get()
            if ok:
                return payload, which
            errors[which] = payload
            outstanding -= 1
        raise errors.get("primary", next(iter(errors.values())))


def window_mean_forecast(window, horizon: int) -> np.ndarray:
    """Constant forecast from live state only (the ladder's last rung).

    Per ``(node, feature)``: the mean of that entry's *observed* values
    across the window (the paper's HistoricalAverage, computed on the
    ring buffer instead of training data); entries with zero
    observations fall back to the network-wide observed mean. A window
    with no observations at all cannot be forecast from — the caller
    maps that to 503.
    """
    x = np.asarray(window.x, dtype=np.float64)
    m = np.asarray(window.m, dtype=np.float64)
    observed = m.sum(axis=0)  # (N, D)
    if not observed.any():
        from ..errors import ServeError

        raise ServeError(
            "state window holds no observations; nothing to fall back on"
        )
    entry_mean = (x * m).sum(axis=0) / np.maximum(observed, 1.0)
    global_mean = (x * m).sum() / m.sum()
    mean = np.where(observed > 0, entry_mean, global_mean)  # (N, D)
    return np.repeat(mean[None], horizon, axis=0)
