"""Deterministic fault injection for the serving seams.

A :class:`FaultPlan` is a declarative description of what should go
wrong — latency spikes, thrown exceptions, corrupted model output,
skewed observation clocks, dropped sensors — and a seed that makes the
fault stream reproducible. :class:`FaultInjector` turns the plan into
per-event decisions; :class:`ChaosModel` and :class:`ChaosStore` wrap
the two seams the serving stack trusts most (the model forward and the
state store's observation path) without either class knowing it is
being tested.

This module deliberately imports nothing from :mod:`repro.serve`: the
wrappers are duck-typed, so reliability stays below serving in the
layering (serving imports chaos for its soak harness, never the other
way around).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, fields

import numpy as np

from ..datasets.missing import MissingPattern
from ..errors import ConfigError, InjectedFault

__all__ = ["FaultPlan", "FaultInjector", "ChaosModel", "ChaosStore"]


@dataclass(frozen=True)
class FaultPlan:
    """What to break, how often, from which seed.

    Rates are per-event probabilities: ``latency_rate``, ``error_rate``
    and ``corrupt_rate`` apply per model forward. ``dropped_sensors``
    lose every reading; ``clock_skew_steps`` shifts observation
    timestamps (positive = readings claim to be from the future).

    ``dropped_sensors`` accepts either a plain tuple of sensor ids or a
    named :class:`~repro.datasets.MissingPattern` scenario (the object or
    its ``to_json_dict`` form) — the same vocabulary offline evaluation
    and the gauntlet bench use, so a chaos run is reproducible by
    scenario name + seed. Pattern-valued drops resolve to concrete
    sensor ids against the store's node count via
    :meth:`FaultInjector.resolve_dropped`.
    """

    seed: int = 0
    latency_rate: float = 0.0
    latency_s: float = 0.05
    error_rate: float = 0.0
    corrupt_rate: float = 0.0
    clock_skew_steps: int = 0
    dropped_sensors: tuple[int, ...] | MissingPattern = ()

    def __post_init__(self):
        for name in ("latency_rate", "error_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.latency_s < 0:
            raise ConfigError(f"latency_s must be >= 0, got {self.latency_s}")
        dropped = self.dropped_sensors
        if isinstance(dropped, MissingPattern):
            pass  # already the shared vocabulary
        elif isinstance(dropped, dict):
            dropped = MissingPattern.from_json_dict(dropped)
        else:
            dropped = tuple(int(n) for n in dropped)
        object.__setattr__(self, "dropped_sensors", dropped)

    @property
    def drop_pattern(self) -> MissingPattern | None:
        """The sensor-drop scenario, when one is configured."""
        dropped = self.dropped_sensors
        return dropped if isinstance(dropped, MissingPattern) else None

    @property
    def scenario(self) -> dict | None:
        """Scenario JSON of the sensor-drop pattern (None for plain ids)."""
        pattern = self.drop_pattern
        return pattern.to_json_dict() if pattern is not None else None

    @property
    def active(self) -> bool:
        return bool(
            self.latency_rate
            or self.error_rate
            or self.corrupt_rate
            or self.clock_skew_steps
            or self.dropped_sensors
        )

    def to_json_dict(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        pattern = self.drop_pattern
        payload["dropped_sensors"] = (
            pattern.to_json_dict() if pattern is not None
            else list(self.dropped_sensors)
        )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**payload)

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)


class FaultInjector:
    """Seeded per-event fault decisions plus injection counters."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        # Plain-id plans resolve immediately; pattern plans wait for the
        # node count (resolve_dropped, called by ChaosStore on wrap).
        self._dropped: frozenset[int] | None = (
            None
            if plan.drop_pattern is not None
            else frozenset(plan.dropped_sensors)
        )
        self.counts = {
            "latency": 0,
            "errors": 0,
            "corruptions": 0,
            "dropped_observations": 0,
            "skewed_observations": 0,
        }

    def resolve_dropped(
        self,
        num_nodes: int,
        adjacency: np.ndarray | None = None,
    ) -> tuple[int, ...]:
        """Concrete dropped sensor ids for a network of ``num_nodes``.

        For pattern-valued plans this runs the scenario's own
        :meth:`~repro.datasets.MissingPattern.dropped_nodes` — the exact
        node-selection code offline masks use — and caches the result.
        Ids outside ``[0, num_nodes)`` are filtered.
        """
        with self._lock:
            if self._dropped is None:
                pattern = self.plan.drop_pattern
                self._dropped = frozenset(
                    pattern.dropped_nodes(num_nodes, adjacency=adjacency)
                )
            return tuple(
                sorted(n for n in self._dropped if 0 <= n < int(num_nodes))
            )

    def _count(self, key: str) -> None:
        self.counts[key] += 1  # caller holds the lock

    def forward_decision(self) -> tuple[float, bool, bool]:
        """(extra latency seconds, raise?, corrupt?) for one model forward."""
        with self._lock:
            latency = (
                self.plan.latency_s
                if self._rng.random() < self.plan.latency_rate
                else 0.0
            )
            error = self._rng.random() < self.plan.error_rate
            corrupt = self._rng.random() < self.plan.corrupt_rate
            if latency:
                self._count("latency")
            if error:
                self._count("errors")
            if corrupt:
                self._count("corruptions")
        return latency, error, corrupt

    def observation_dropped(self, node: int) -> bool:
        # Unresolved pattern plans drop nothing yet: the node count is
        # unknown until a store is wrapped (ChaosStore resolves eagerly).
        if self._dropped is not None and node in self._dropped:
            with self._lock:
                self._count("dropped_observations")
            return True
        return False

    def skew(self, step: int) -> int:
        if self.plan.clock_skew_steps:
            with self._lock:
                self._count("skewed_observations")
            return step + self.plan.clock_skew_steps
        return step

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self.counts)


class ChaosModel:
    """A forecaster whose forwards misbehave according to a plan.

    Wraps any model the engine accepts; attribute access (shapes,
    ``eval``, parameters) passes through, only ``__call__`` injects
    latency, :class:`~repro.errors.InjectedFault` throws, and NaN
    poisoning of the prediction (which the engine's output validation
    must catch and degrade on).
    """

    def __init__(self, model, injector: FaultInjector, sleep=time.sleep):
        self._model = model
        self._injector = injector
        self._sleep = sleep

    def __getattr__(self, name):
        return getattr(self._model, name)

    def eval(self):
        self._model.eval()
        return self

    def train(self, mode: bool = True):
        self._model.train(mode)
        return self

    def plan_inputs(self, x, m, steps_of_day):
        # A compiled plan would replay the bare forward and route around
        # the ``__call__`` injection seam below, so chaos-wrapped models
        # never plan: the engine stays on the eager path where faults
        # actually fire.
        return None

    def __call__(self, *args, **kwargs):
        latency, error, corrupt = self._injector.forward_decision()
        if latency:
            self._sleep(latency)
        if error:
            raise InjectedFault("chaos: injected model failure")
        out = self._model(*args, **kwargs)
        if corrupt:
            data = out.prediction.data
            data = data.copy()
            data.flat[0] = np.nan
            out.prediction.data = data
        return out


class ChaosStore:
    """A state store whose feed loses, delays and skews readings."""

    def __init__(self, store, injector: FaultInjector, adjacency=None):
        self._store = store
        self._injector = injector
        # Resolve pattern-valued drops against this store's network now,
        # so per-sensor drops fire from the first observation.
        self._dropped = injector.resolve_dropped(store.num_nodes, adjacency)

    def __getattr__(self, name):
        return getattr(self._store, name)

    def observe(self, step, values, mask=None):
        step = self._injector.skew(int(step))
        dropped = list(self._dropped)
        if dropped:
            values = np.array(values, copy=True)
            if mask is None:
                mask = np.ones_like(values)
            else:
                mask = np.array(mask, copy=True)
            mask[dropped] = 0.0
            for node in dropped:
                self._injector.observation_dropped(node)
        return self._store.observe(step, values, mask)

    def observe_sensor(self, step, node, features):
        if self._injector.observation_dropped(int(node)):
            # The reading vanishes in flight; the producer sees success.
            return True
        return self._store.observe_sensor(self._injector.skew(int(step)), node, features)
