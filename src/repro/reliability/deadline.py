"""Monotonic-clock deadlines threaded through the serving path.

A :class:`Deadline` is an absolute expiry on a monotonic clock. It is
created once at the edge (one per forecast request), carried with the
request through the engine's batching queue, and *checked at batch
boundaries* — enqueue, batch formation, pre-forward — so a request that
has already blown its budget never pays for a model forward it cannot
use.

A contextvar carries the ambient deadline across call layers that do
not thread it explicitly (:func:`deadline_scope` / of
:func:`current_deadline`); the engine still passes deadlines explicitly
across its thread boundary, because contextvars do not follow requests
into the dispatcher thread.
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar
from typing import Callable, Iterator

from ..errors import DeadlineExceeded

__all__ = ["Deadline", "current_deadline", "deadline_scope"]


class Deadline:
    """An absolute time budget on a monotonic clock."""

    __slots__ = ("budget_s", "_expires", "_clock")

    def __init__(self, budget_s: float, clock: Callable[[], float] = time.monotonic):
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be > 0 seconds, got {budget_s}")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._expires = clock() + self.budget_s

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``seconds`` from now (alias of the constructor)."""
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self._expires - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        remaining = self.remaining()
        if remaining <= 0.0:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget_s:.3f}s deadline "
                f"({-remaining * 1e3:.1f}ms over)"
            )

    def clamp(self, timeout: float | None) -> float:
        """The tighter of ``timeout`` and the remaining budget (>= 0)."""
        remaining = max(self.remaining(), 0.0)
        if timeout is None:
            return remaining
        return min(float(timeout), remaining)

    def __repr__(self) -> str:
        return f"Deadline(budget_s={self.budget_s}, remaining={self.remaining():.3f}s)"


_CURRENT: ContextVar[Deadline | None] = ContextVar("repro_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The ambient deadline of the calling context, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Install ``deadline`` as the ambient deadline for the ``with`` body."""
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)
