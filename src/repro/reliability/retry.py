"""Retries with decorrelated-jitter backoff and a shared retry budget.

Two pieces:

* :class:`RetryBudget` — a token bucket shared across call sites. Every
  *retry* (not first attempt) spends a token; the bucket refills at a
  steady rate. Under a real outage this caps the retry amplification a
  fleet of callers can generate against an already-failing dependency,
  which is the classic retry-storm failure mode.
* :class:`Retry` — per-call policy: attempt count, decorrelated-jitter
  exponential backoff (AWS architecture-blog variant: each delay is
  uniform in ``[base, prev * 3]``, capped), and an error-class predicate
  deciding which failures are worth retrying at all.

Both are deterministic under an injected RNG/clock/sleep, so tests can
assert exact backoff sequences.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, TypeVar

from ..errors import DeadlineExceeded
from .deadline import Deadline

__all__ = ["Retry", "RetryBudget"]

T = TypeVar("T")


class RetryBudget:
    """Token bucket limiting how many retries may fire per unit time."""

    def __init__(
        self,
        rate_per_s: float = 5.0,
        burst: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_s <= 0 or burst <= 0:
            raise ValueError(
                f"retry budget needs positive rate/burst, got {rate_per_s}/{burst}"
            )
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._stamp = clock()
        self._lock = threading.Lock()
        self.spent = 0
        self.denied = 0

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate_per_s
        )
        self._stamp = now

    def try_spend(self) -> bool:
        """Take one retry token; ``False`` means the budget is exhausted."""
        with self._lock:
            self._refill()
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                return True
            self.denied += 1
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens


class Retry:
    """Bounded retries around a callable.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first call (1 disables retrying).
    base_delay_s / max_delay_s:
        Decorrelated-jitter backoff bounds: the ``k``-th delay is drawn
        uniformly from ``[base, prev_delay * 3]`` and capped at
        ``max_delay_s``.
    retry_on:
        Exception classes considered transient. Anything else propagates
        immediately.
    predicate:
        Optional refinement over a caught (retryable-class) error;
        return ``False`` to stop retrying it.
    budget:
        Optional shared :class:`RetryBudget`; when it denies a token the
        error propagates without further attempts.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_s: float = 0.01,
        max_delay_s: float = 0.5,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        predicate: Callable[[BaseException], bool] | None = None,
        budget: RetryBudget | None = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay_s < 0 or max_delay_s < base_delay_s:
            raise ValueError(
                f"need 0 <= base_delay_s <= max_delay_s, "
                f"got {base_delay_s}/{max_delay_s}"
            )
        self.max_attempts = max_attempts
        self.base_delay_s = float(base_delay_s)
        self.max_delay_s = float(max_delay_s)
        self.retry_on = tuple(retry_on)
        self.predicate = predicate
        self.budget = budget
        self.sleep = sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def next_delay(self, previous: float | None) -> float:
        """One decorrelated-jitter step from the previous delay."""
        prev = self.base_delay_s if previous is None else previous
        with self._lock:  # the RNG is not thread-safe under mutation
            value = self._rng.uniform(self.base_delay_s, max(prev * 3.0, self.base_delay_s))
        return min(value, self.max_delay_s)

    def _retryable(self, error: BaseException) -> bool:
        if not isinstance(error, self.retry_on):
            return False
        # A blown deadline is never transient: the budget is gone.
        if isinstance(error, DeadlineExceeded):
            return False
        if self.predicate is not None and not self.predicate(error):
            return False
        return True

    def call(
        self,
        fn: Callable[..., T],
        *args,
        deadline: Deadline | None = None,
        on_retry: Callable[[int, BaseException, float], None] | None = None,
        **kwargs,
    ) -> T:
        """Invoke ``fn`` with retries; the last error propagates on failure."""
        delay: float | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except BaseException as error:  # noqa: BLE001 - classified below
                if attempt >= self.max_attempts or not self._retryable(error):
                    raise
                if self.budget is not None and not self.budget.try_spend():
                    raise
                delay = self.next_delay(delay)
                if deadline is not None and deadline.remaining() <= delay:
                    raise  # sleeping would blow the deadline anyway
                if on_retry is not None:
                    on_retry(attempt, error, delay)
                if delay > 0:
                    self.sleep(delay)
        raise AssertionError("unreachable: loop returns or raises")
