"""One declarative knob-set for the serving stack's resilience behavior.

:class:`ResiliencePolicy` is the ``api_redesign`` surface: instead of
threading deadline/retry/breaker parameters through engine, HTTP layer
and CLI as loose kwargs, the whole policy is a single validated frozen
dataclass that rides inside :class:`~repro.serve.config.ServeConfig`.
Factories (:meth:`make_breaker`, :meth:`make_retry`,
:meth:`make_deadline`) turn the numbers into live primitives.

``ResiliencePolicy.disabled()`` switches every mechanism off — that is
the bitwise-identical-to-pre-policy baseline the overhead benchmark
compares against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields, replace
from typing import Callable

from ..errors import ConfigError
from ..telemetry import MetricRegistry
from .breaker import CircuitBreaker
from .deadline import Deadline
from .retry import Retry

__all__ = ["ResiliencePolicy"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Deadlines, retries, breaker, fallback and shedding in one place.

    Semantics of the off-switches: ``deadline_s=None`` disables
    deadlines, ``retry_attempts=1`` disables retrying, ``breaker=False``
    disables the circuit breaker, ``fallback=False`` turns degradation
    into plain errors, ``max_queue_depth=0`` unbounds the request queue
    (no load shedding).
    """

    deadline_s: float | None = 10.0
    retry_attempts: int = 2
    retry_base_delay_s: float = 0.005
    retry_max_delay_s: float = 0.1
    breaker: bool = True
    breaker_window: int = 32
    breaker_failure_ratio: float = 0.5
    breaker_min_calls: int = 8
    breaker_open_s: float = 5.0
    breaker_half_open_calls: int = 2
    fallback: bool = True
    max_queue_depth: int = 128
    retry_after_s: float = 1.0

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be > 0 or None, got {self.deadline_s}"
            )
        if self.retry_attempts < 1:
            raise ConfigError(
                f"retry_attempts must be >= 1, got {self.retry_attempts}"
            )
        if not 0 <= self.retry_base_delay_s <= self.retry_max_delay_s:
            raise ConfigError(
                "need 0 <= retry_base_delay_s <= retry_max_delay_s, got "
                f"{self.retry_base_delay_s}/{self.retry_max_delay_s}"
            )
        if not 0.0 < self.breaker_failure_ratio <= 1.0:
            raise ConfigError(
                f"breaker_failure_ratio must be in (0, 1], "
                f"got {self.breaker_failure_ratio}"
            )
        if self.breaker_window < 1 or not (
            1 <= self.breaker_min_calls <= self.breaker_window
        ):
            raise ConfigError(
                f"breaker_min_calls must be in 1..breaker_window "
                f"({self.breaker_window}), got {self.breaker_min_calls}"
            )
        if self.breaker_open_s <= 0:
            raise ConfigError(f"breaker_open_s must be > 0, got {self.breaker_open_s}")
        if self.breaker_half_open_calls < 1:
            raise ConfigError(
                f"breaker_half_open_calls must be >= 1, "
                f"got {self.breaker_half_open_calls}"
            )
        if self.max_queue_depth < 0:
            raise ConfigError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.retry_after_s <= 0:
            raise ConfigError(f"retry_after_s must be > 0, got {self.retry_after_s}")

    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "ResiliencePolicy":
        """Every mechanism off: the pre-policy serving behavior."""
        return cls(
            deadline_s=None,
            retry_attempts=1,
            breaker=False,
            fallback=False,
            max_queue_depth=0,
        )

    def with_overrides(self, **changes) -> "ResiliencePolicy":
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Manifest round-trip: fleet manifests carry per-tenant overrides
    # as plain JSON objects.
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        """Every field as a JSON-serialisable mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "ResiliencePolicy":
        """Build a policy from a JSON mapping of overrides.

        Unknown keys raise :class:`~repro.errors.ConfigError` (a typo in
        a fleet manifest must not silently fall back to defaults).
        """
        if not isinstance(payload, dict):
            raise ConfigError(
                f"resilience overrides must be a JSON object, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"unknown resilience policy field(s) {unknown}; "
                f"valid fields: {sorted(known)}"
            )
        return cls(**payload)

    # ------------------------------------------------------------------
    def make_deadline(
        self, clock: Callable[[], float] = time.monotonic
    ) -> Deadline | None:
        if self.deadline_s is None:
            return None
        return Deadline(self.deadline_s, clock=clock)

    def make_retry(self, seed: int = 0) -> Retry | None:
        if self.retry_attempts <= 1:
            return None
        return Retry(
            max_attempts=self.retry_attempts,
            base_delay_s=self.retry_base_delay_s,
            max_delay_s=self.retry_max_delay_s,
            seed=seed,
        )

    def make_breaker(
        self,
        name: str = "model",
        registry: MetricRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> CircuitBreaker | None:
        if not self.breaker:
            return None
        return CircuitBreaker(
            window=self.breaker_window,
            failure_ratio=self.breaker_failure_ratio,
            min_calls=self.breaker_min_calls,
            open_s=self.breaker_open_s,
            half_open_calls=self.breaker_half_open_calls,
            name=name,
            registry=registry,
            clock=clock,
        )
