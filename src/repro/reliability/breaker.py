"""Circuit breaker: stop calling a dependency that keeps failing.

Classic three-state machine over a sliding outcome window:

* **closed** — calls flow; outcomes land in a bounded window. Once the
  window holds ``min_calls`` outcomes and the failure share reaches
  ``failure_ratio``, the breaker opens.
* **open** — calls are rejected (:class:`~repro.errors.CircuitOpen`)
  for ``open_s`` seconds, giving the dependency room to recover without
  a thundering herd.
* **half-open** — after the cool-off, up to ``half_open_calls`` probe
  calls are admitted. ``half_open_successes`` consecutive successes
  close the breaker; any probe failure re-opens it.

Telemetry: a ``reliability/breaker_state`` gauge (0 closed, 1 half-open,
2 open) plus transition/rejection counters land in the metric registry,
so ``/metrics`` and ``/healthz`` can report breaker health.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from typing import Callable, Iterator, TypeVar

from ..errors import CircuitOpen
from ..telemetry import MetricRegistry, get_registry, label_block

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker over a failure window."""

    def __init__(
        self,
        window: int = 32,
        failure_ratio: float = 0.5,
        min_calls: int = 8,
        open_s: float = 5.0,
        half_open_calls: int = 2,
        half_open_successes: int = 2,
        name: str = "model",
        registry: MetricRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < failure_ratio <= 1.0:
            raise ValueError(f"failure_ratio must be in (0, 1], got {failure_ratio}")
        if min_calls < 1 or min_calls > window:
            raise ValueError(
                f"min_calls must be in 1..window ({window}), got {min_calls}"
            )
        if open_s <= 0:
            raise ValueError(f"open_s must be > 0, got {open_s}")
        if half_open_calls < 1 or half_open_successes < 1:
            raise ValueError("half_open_calls and half_open_successes must be >= 1")
        self.window = window
        self.failure_ratio = failure_ratio
        self.min_calls = min_calls
        self.open_s = open_s
        self.half_open_calls = half_open_calls
        self.half_open_successes = half_open_successes
        self.name = name
        self.registry = registry if registry is not None else get_registry()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._probe_successes = 0
        self._publish_state()

    # ------------------------------------------------------------------
    def _publish_state(self) -> None:
        self.registry.gauge(
            "reliability/breaker_state" + label_block({"name": self.name})
        ).set(_STATE_GAUGE[self._state])

    def _transition(self, state: str) -> None:
        self._state = state
        self.registry.counter(
            "reliability/breaker_transitions"
            + label_block({"name": self.name, "to": state})
        ).inc()
        if state == OPEN:
            self._opened_at = self._clock()
            self._outcomes.clear()
        if state in (HALF_OPEN, CLOSED):
            self._probes_inflight = 0
            self._probe_successes = 0
        self._publish_state()

    def _maybe_half_open(self) -> None:
        """open → half-open once the cool-off has elapsed (lock held)."""
        if self._state == OPEN and self._clock() - self._opened_at >= self.open_s:
            self._transition(HALF_OPEN)

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed open cool-off."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def failure_rate(self) -> float:
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(self._outcomes) / len(self._outcomes)

    def allow(self) -> bool:
        """May a call proceed right now? (Counts a rejection when not.)

        In half-open state this also claims one probe slot, so callers
        must follow an allowed call with ``record_success`` or
        ``record_failure``.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes_inflight < self.half_open_calls:
                self._probes_inflight += 1
                return True
            self.registry.counter(
                "reliability/breaker_rejections" + label_block({"name": self.name})
            ).inc()
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_successes:
                    self._transition(CLOSED)
                return
            if self._state == CLOSED:
                self._outcomes.append(False)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition(OPEN)
                return
            if self._state == CLOSED:
                self._outcomes.append(True)
                if (
                    len(self._outcomes) >= self.min_calls
                    and sum(self._outcomes) / len(self._outcomes)
                    >= self.failure_ratio
                ):
                    self._transition(OPEN)

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def protect(self, what: str = "call") -> Iterator[None]:
        """Guard a code region: raises :class:`CircuitOpen` when tripped."""
        if not self.allow():
            raise CircuitOpen(
                f"circuit {self.name!r} is {self._state}; rejecting {what}"
            )
        try:
            yield
        except BaseException:
            self.record_failure()
            raise
        else:
            self.record_success()

    def call(self, fn: Callable[..., T], *args, **kwargs) -> T:
        with self.protect(what=getattr(fn, "__name__", "call")):
            return fn(*args, **kwargs)

    def snapshot(self) -> dict:
        """JSON-ready state for ``/healthz``."""
        with self._lock:
            self._maybe_half_open()
            outcomes = list(self._outcomes)
            return {
                "name": self.name,
                "state": self._state,
                "window": len(outcomes),
                "failure_rate": (
                    sum(outcomes) / len(outcomes) if outcomes else 0.0
                ),
                "open_remaining_s": (
                    max(0.0, self.open_s - (self._clock() - self._opened_at))
                    if self._state == OPEN
                    else 0.0
                ),
            }
