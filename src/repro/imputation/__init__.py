"""Standalone imputation baselines (RQ2 comparison)."""

from .base import Imputer, check_inputs
from .knn import KNNImputer
from .matrix_factorization import MatrixFactorizationImputer
from .simple import LastObservedImputer, LinearInterpolationImputer, MeanImputer
from .tensor_decomposition import TensorDecompositionImputer

__all__ = [
    "Imputer",
    "check_inputs",
    "MeanImputer",
    "LastObservedImputer",
    "LinearInterpolationImputer",
    "KNNImputer",
    "MatrixFactorizationImputer",
    "TensorDecompositionImputer",
]
