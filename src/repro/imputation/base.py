"""Imputer interface.

All imputers operate on a full series tensor ``(T, N, D)`` with an
observation mask and return a completed tensor: observed entries pass
through unchanged, missing entries are filled. Used for the RQ2 study
(Table comparing Last/KNN/MF/TD with RIHGCN's built-in imputation).
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError

__all__ = ["Imputer", "check_inputs"]


def check_inputs(data: np.ndarray, mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce (data, mask) to float64 ``(T, N, D)``.

    Raises :class:`~repro.errors.DataError` on malformed inputs.
    """
    data = np.asarray(data, dtype=np.float64)
    mask = np.asarray(mask, dtype=np.float64)
    if data.ndim != 3:
        raise DataError(f"data must be (T, N, D), got shape {data.shape}")
    if mask.shape != data.shape:
        raise DataError(f"mask shape {mask.shape} != data shape {data.shape}")
    if ((mask != 0) & (mask != 1)).any():
        raise DataError("mask must be binary")
    return data, mask


class Imputer:
    """Base class; subclasses implement :meth:`impute`."""

    def impute(self, data: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Return a completed copy of ``data``."""
        raise NotImplementedError

    def __call__(self, data: np.ndarray, mask: np.ndarray) -> np.ndarray:
        completed = self.impute(data, mask)
        # Contract: observed entries are never altered.
        data, mask = check_inputs(data, mask)
        return mask * data + (1.0 - mask) * completed
