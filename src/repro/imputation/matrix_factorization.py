"""Matrix-factorization imputation (paper RQ2 baseline).

Treats each feature channel as a ``(T, N)`` matrix ``X ≈ U Vᵀ`` with low
rank ``r``, fit on observed entries by alternating least squares with L2
regularization; missing entries are reconstructed from the factors.
"""

from __future__ import annotations

import numpy as np

from .base import Imputer, check_inputs

__all__ = ["MatrixFactorizationImputer"]


class MatrixFactorizationImputer(Imputer):
    """ALS matrix completion per feature channel.

    Parameters
    ----------
    rank:
        Latent dimension ``r``.
    reg:
        L2 regularization on both factors.
    iterations:
        Number of alternating sweeps.
    """

    def __init__(
        self,
        rank: int = 8,
        reg: float = 0.1,
        iterations: int = 20,
        seed: int = 0,
    ):
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.rank = rank
        self.reg = reg
        self.iterations = iterations
        self.seed = seed

    def _als(self, matrix: np.ndarray, observed: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        rows, cols = matrix.shape
        rank = min(self.rank, rows, cols)
        u = rng.normal(0, 0.1, size=(rows, rank))
        v = rng.normal(0, 0.1, size=(cols, rank))
        eye = self.reg * np.eye(rank)
        for _ in range(self.iterations):
            # Solve for U rows given V.
            for i in range(rows):
                idx = observed[i]
                if not idx.any():
                    continue
                vi = v[idx]
                u[i] = np.linalg.solve(vi.T @ vi + eye, vi.T @ matrix[i, idx])
            # Solve for V rows given U.
            for j in range(cols):
                idx = observed[:, j]
                if not idx.any():
                    continue
                uj = u[idx]
                v[j] = np.linalg.solve(uj.T @ uj + eye, uj.T @ matrix[idx, j])
        return u @ v.T

    def impute(self, data: np.ndarray, mask: np.ndarray) -> np.ndarray:
        data, mask = check_inputs(data, mask)
        rng = np.random.default_rng(self.seed)
        out = data.copy()
        for d in range(data.shape[2]):
            matrix = data[:, :, d]
            observed = mask[:, :, d] > 0
            if observed.sum() == 0:
                out[:, :, d] = 0.0
                continue
            # Center on the observed mean so the factors model deviations.
            mean = matrix[observed].mean()
            centered = np.where(observed, matrix - mean, 0.0)
            out[:, :, d] = self._als(centered, observed, rng) + mean
        return out
