"""K-nearest-neighbour imputation (paper RQ2 baseline).

A missing entry ``(t, n, d)`` is filled from the ``k`` nodes most similar
to ``n`` (by correlation of their co-observed history) that *do* observe
feature ``d`` at time ``t``, weighted by similarity. Falls back to the
node's temporal neighbourhood and finally to the series mean.
"""

from __future__ import annotations

import numpy as np

from .base import Imputer, check_inputs
from .simple import MeanImputer

__all__ = ["KNNImputer"]


class KNNImputer(Imputer):
    """Spatial KNN with correlation similarity.

    Parameters
    ----------
    k:
        Number of neighbours to average.
    min_overlap:
        Minimum number of co-observed timestamps for a similarity to be
        trusted; below it the pair gets similarity 0.
    """

    def __init__(self, k: int = 3, min_overlap: int = 10):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.min_overlap = min_overlap

    def _similarities(self, data: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Node-node similarity ``(N, N)`` from co-observed correlation."""
        total, nodes, features = data.shape
        flat = data.reshape(total, nodes * features).reshape(total, nodes, features)
        sims = np.zeros((nodes, nodes))
        for i in range(nodes):
            for j in range(i + 1, nodes):
                both = (mask[:, i] > 0) & (mask[:, j] > 0)  # (T, D)
                overlap = both.sum()
                if overlap < self.min_overlap:
                    continue
                a = flat[:, i][both]
                b = flat[:, j][both]
                a_std, b_std = a.std(), b.std()
                if a_std < 1e-9 or b_std < 1e-9:
                    continue
                corr = float(((a - a.mean()) * (b - b.mean())).mean() / (a_std * b_std))
                sims[i, j] = sims[j, i] = max(corr, 0.0)
        return sims

    def impute(self, data: np.ndarray, mask: np.ndarray) -> np.ndarray:
        data, mask = check_inputs(data, mask)
        nodes = data.shape[1]
        sims = self._similarities(data, mask)
        fallback = MeanImputer()(data, mask)
        out = fallback.copy()

        for n in range(nodes):
            order = np.argsort(-sims[n])
            neighbours = [j for j in order if sims[n, j] > 0][: self.k]
            if not neighbours:
                continue
            weights = sims[n, neighbours]  # (k,)
            # Weighted average of neighbours' observed values at each (t, d).
            nb_vals = data[:, neighbours, :]  # (T, k, D)
            nb_mask = mask[:, neighbours, :]  # (T, k, D)
            w = weights[None, :, None] * nb_mask
            denom = w.sum(axis=1)  # (T, D)
            estimate = np.where(denom > 0, (nb_vals * w).sum(axis=1) / np.maximum(denom, 1e-12), np.nan)
            missing = mask[:, n, :] == 0
            usable = missing & ~np.isnan(estimate)
            out[:, n, :][usable] = estimate[usable]
        return out
