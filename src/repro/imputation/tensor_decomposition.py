"""Tensor-decomposition imputation (paper RQ2 baseline, cf. [10]).

CP (CANDECOMP/PARAFAC) decomposition of the ``(day, slot, node*feature)``
traffic tensor — the folding used by urban tensor-completion methods:
daily periodicity becomes a low-rank structure along the (day, slot)
modes. Fit by masked ALS; missing entries reconstructed from the factors.
"""

from __future__ import annotations

import numpy as np

from .base import Imputer, check_inputs

__all__ = ["TensorDecompositionImputer"]


def _khatri_rao(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Column-wise Khatri-Rao product of ``(I, R)`` and ``(J, R)`` -> ``(I*J, R)``."""
    i, r = a.shape
    j, r2 = b.shape
    if r != r2:
        raise ValueError("factor ranks disagree")
    return (a[:, None, :] * b[None, :, :]).reshape(i * j, r)


class TensorDecompositionImputer(Imputer):
    """Masked CP-ALS over the (day, slot, series) folding.

    Parameters
    ----------
    rank:
        CP rank.
    steps_per_day:
        Slots per day used for the folding; timestamps beyond a whole
        number of days are handled by zero-padding the mask.
    """

    def __init__(
        self,
        rank: int = 6,
        steps_per_day: int = 288,
        reg: float = 0.1,
        iterations: int = 15,
        seed: int = 0,
    ):
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.steps_per_day = steps_per_day
        self.reg = reg
        self.iterations = iterations
        self.seed = seed

    def impute(self, data: np.ndarray, mask: np.ndarray) -> np.ndarray:
        data, mask = check_inputs(data, mask)
        total, nodes, features = data.shape
        spd = self.steps_per_day
        days = int(np.ceil(total / spd))
        padded = days * spd

        series = data.reshape(total, nodes * features)
        observed = (mask.reshape(total, nodes * features) > 0)
        obs_values = series[observed]
        mean = obs_values.mean() if obs_values.size else 0.0
        centered = np.where(observed, series - mean, 0.0)

        tensor = np.zeros((days, spd, nodes * features))
        known = np.zeros((days, spd, nodes * features), dtype=bool)
        tensor.reshape(-1, nodes * features)[:total] = centered
        known.reshape(-1, nodes * features)[:total] = observed

        factors = self._cp_als(tensor, known)
        recon = np.einsum("ir,jr,kr->ijk", *factors) + mean
        recon_flat = recon.reshape(padded, nodes * features)[:total]
        return recon_flat.reshape(total, nodes, features)

    def _cp_als(
        self, tensor: np.ndarray, known: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        dims = tensor.shape
        rank = min(self.rank, *dims)
        factors = [rng.normal(0, 0.1, size=(dim, rank)) for dim in dims]
        eye = self.reg * np.eye(rank)
        for _ in range(self.iterations):
            # EM-style: complete the tensor with the current model, then
            # do one unconstrained ALS sweep (fast and robust for the
            # moderate ranks used here).
            recon = np.einsum("ir,jr,kr->ijk", *factors)
            work = np.where(known, tensor, recon)
            for mode in range(3):
                others = [factors[m] for m in range(3) if m != mode]
                # C-order unfolding puts the later axis fastest, which
                # matches khatri_rao(first_other, second_other).
                kr = _khatri_rao(others[0], others[1])
                unfold = np.moveaxis(work, mode, 0).reshape(dims[mode], -1)
                gram = (others[0].T @ others[0]) * (others[1].T @ others[1]) + eye
                factors[mode] = np.linalg.solve(gram.T, (unfold @ kr).T).T
        return factors[0], factors[1], factors[2]
