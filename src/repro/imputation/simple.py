"""Simple imputers: mean, last-observed, linear interpolation.

"Last" is one of the paper's RQ2 baselines; mean filling is the
preprocessing the paper applies to the non-imputation forecasting
baselines; linear interpolation is included as the strongest trivial
method for time series.
"""

from __future__ import annotations

import numpy as np

from .base import Imputer, check_inputs

__all__ = ["MeanImputer", "LastObservedImputer", "LinearInterpolationImputer"]


class MeanImputer(Imputer):
    """Fill each (node, feature) series with its observed mean.

    Series with no observations at all fall back to the global feature
    mean (and finally to 0 if the feature is entirely missing).
    """

    def impute(self, data: np.ndarray, mask: np.ndarray) -> np.ndarray:
        data, mask = check_inputs(data, mask)
        count = mask.sum(axis=0)  # (N, D)
        series_mean = np.where(
            count > 0, (data * mask).sum(axis=0) / np.maximum(count, 1.0), np.nan
        )
        feature_count = mask.sum(axis=(0, 1))  # (D,)
        feature_mean = np.where(
            feature_count > 0,
            (data * mask).sum(axis=(0, 1)) / np.maximum(feature_count, 1.0),
            0.0,
        )
        series_mean = np.where(np.isnan(series_mean), feature_mean, series_mean)
        return np.broadcast_to(series_mean, data.shape).copy()


class LastObservedImputer(Imputer):
    """Carry the last observation forward (paper's "Last" baseline).

    Leading missing entries (no previous observation) are back-filled from
    the first observation; fully-missing series fall back to 0.
    """

    def impute(self, data: np.ndarray, mask: np.ndarray) -> np.ndarray:
        data, mask = check_inputs(data, mask)
        total = data.shape[0]
        out = data.copy()
        # Forward fill via running index of the last observed timestamp.
        observed = mask > 0
        idx = np.where(observed, np.arange(total)[:, None, None], -1)
        last_seen = np.maximum.accumulate(idx, axis=0)
        has_prev = last_seen >= 0
        filled = np.take_along_axis(out, np.maximum(last_seen, 0), axis=0)
        out = np.where(has_prev, filled, out)
        # Back-fill the leading gap from the first observation.
        idx_b = np.where(observed, np.arange(total)[:, None, None], total)
        first_seen = np.minimum.accumulate(idx_b[::-1], axis=0)[::-1]
        has_next = first_seen < total
        filled_b = np.take_along_axis(data, np.minimum(first_seen, total - 1), axis=0)
        out = np.where(~has_prev & has_next, filled_b, out)
        return out


class LinearInterpolationImputer(Imputer):
    """Linear interpolation in time per (node, feature) series.

    Edges extend the nearest observation; fully-missing series fall back
    to 0.
    """

    def impute(self, data: np.ndarray, mask: np.ndarray) -> np.ndarray:
        data, mask = check_inputs(data, mask)
        total, nodes, features = data.shape
        out = data.copy()
        t_axis = np.arange(total)
        for n in range(nodes):
            for d in range(features):
                obs = mask[:, n, d] > 0
                if not obs.any():
                    out[:, n, d] = 0.0
                    continue
                if obs.all():
                    continue
                out[:, n, d] = np.interp(t_axis, t_axis[obs], data[obs, n, d])
        return out
