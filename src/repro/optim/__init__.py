"""Optimizers, gradient clipping, schedulers and early stopping."""

from .adam import Adam
from .optimizer import Optimizer, clip_grad_norm, clip_grad_value
from .scheduler import (
    CosineAnnealingLR,
    EarlyStopping,
    ExponentialLR,
    ReduceLROnPlateau,
    StepLR,
)
from .sgd import SGD

__all__ = [
    "Optimizer",
    "Adam",
    "SGD",
    "clip_grad_norm",
    "clip_grad_value",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "ReduceLROnPlateau",
    "EarlyStopping",
]
