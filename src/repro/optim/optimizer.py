"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "clip_grad_norm", "clip_grad_value"]


class Optimizer:
    """Base optimizer holding a parameter list.

    Subclasses implement :meth:`step`, reading ``param.grad`` and updating
    ``param.data`` in place.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging exploding-gradient
    events in the recurrent imputation chains).
    """
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


def clip_grad_value(params: Iterable[Parameter], clip_value: float) -> None:
    """Clamp each gradient element to ``[-clip_value, clip_value]``."""
    for p in params:
        if p.grad is not None:
            np.clip(p.grad, -clip_value, clip_value, out=p.grad)
