"""Learning-rate schedulers and early stopping."""

from __future__ import annotations

import math

from .optimizer import Optimizer

__all__ = ["StepLR", "ExponentialLR", "CosineAnnealingLR", "ReduceLROnPlateau", "EarlyStopping"]


class _Scheduler:
    """Base: remembers the initial lr and the epoch counter."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)
        return self.optimizer.lr

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialLR(_Scheduler):
    """Multiply lr by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95):
        super().__init__(optimizer)
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** epoch


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def _lr_at(self, epoch: int) -> float:
        frac = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * frac))


class ReduceLROnPlateau:
    """Halve (by ``factor``) the lr when a monitored metric stops improving."""

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 3,
        min_lr: float = 1e-6,
    ):
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.best = math.inf
        self.bad_epochs = 0

    def step(self, metric: float) -> float:
        """Report the latest validation metric; returns the (new) lr."""
        if metric < self.best - 1e-12:
            self.best = metric
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
            if self.bad_epochs > self.patience:
                self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
                self.bad_epochs = 0
        return self.optimizer.lr


class EarlyStopping:
    """Stop training when validation loss stops improving.

    The paper stops after 6 epochs without improvement; that is the default
    ``patience`` here. Tracks the best metric so callers can restore the
    best weights.
    """

    def __init__(self, patience: int = 6, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.min_delta = min_delta
        self.best = math.inf
        self.best_epoch = -1
        self.bad_epochs = 0
        self.should_stop = False

    def step(self, metric: float, epoch: int | None = None) -> bool:
        """Report a metric; returns True if this is a new best."""
        improved = metric < self.best - self.min_delta
        if improved:
            self.best = metric
            self.best_epoch = epoch if epoch is not None else self.best_epoch + 1
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
            if self.bad_epochs >= self.patience:
                self.should_stop = True
        return improved
