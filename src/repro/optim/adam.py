"""Adam optimizer (Kingma & Ba, 2015) — the optimizer used in the paper."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction and optional decoupled weight decay.

    The paper trains every deep model with Adam at ``lr=0.001``; those are
    the defaults here.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                # Decoupled (AdamW-style) decay keeps the moments clean.
                p.data = p.data - self.lr * self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
