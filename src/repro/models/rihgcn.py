"""RIHGCN and its ablation factories — the paper's model zoo entry points.

These are thin factories over :class:`RecurrentImputationForecaster` that
pin the configuration each name denotes in Tables I/II:

* :func:`rihgcn` — heterogeneous graphs + LSTM + bidirectional recurrent
  imputation (the proposed model);
* :func:`gcn_lstm_i` — geographic graph only (no temporal graphs);
* :func:`fc_gcn_i` — spatial correlations only (no LSTM);
* :func:`fc_lstm_i` — temporal correlations only (BRITS-like).
"""

from __future__ import annotations

import numpy as np

from ..graphs import HeterogeneousGraphSet
from .recurrent_imputation import RecurrentImputationForecaster

__all__ = ["rihgcn", "gcn_lstm_i", "fc_gcn_i", "fc_lstm_i"]


def rihgcn(
    graphs: HeterogeneousGraphSet,
    **kwargs,
) -> RecurrentImputationForecaster:
    """The proposed model (Recurrent Imputation + Heterogeneous GCN)."""
    return RecurrentImputationForecaster(
        spatial_kind="hgcn", graphs=graphs, use_lstm=True, **kwargs
    )


def gcn_lstm_i(
    adjacency: np.ndarray,
    **kwargs,
) -> RecurrentImputationForecaster:
    """Ablation: recurrent imputation with the static geographic graph."""
    return RecurrentImputationForecaster(
        spatial_kind="gcn", adjacency=adjacency, use_lstm=True, **kwargs
    )


def fc_gcn_i(
    adjacency: np.ndarray,
    **kwargs,
) -> RecurrentImputationForecaster:
    """Ablation: spatial-only recurrent imputation (no LSTM)."""
    return RecurrentImputationForecaster(
        spatial_kind="gcn", adjacency=adjacency, use_lstm=False, **kwargs
    )


def fc_lstm_i(**kwargs) -> RecurrentImputationForecaster:
    """Ablation: temporal-only recurrent imputation (BRITS-like)."""
    return RecurrentImputationForecaster(
        spatial_kind="none", use_lstm=True, **kwargs
    )
