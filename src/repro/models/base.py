"""Model interfaces.

Two families share the experiment harness:

* **Neural forecasters** (:class:`NeuralForecaster`) — autodiff Modules
  trained by :class:`repro.training.Trainer`. Their forward pass takes a
  window batch and returns a :class:`ForecastOutput` (prediction plus,
  for imputation-based models, the step-ahead estimates the joint loss
  needs).
* **Statistical forecasters** (:class:`StatisticalForecaster`) — HA and
  VAR, fit in closed form on the training split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor
from ..nn import Module

__all__ = ["ForecastOutput", "NeuralForecaster", "StatisticalForecaster"]


@dataclass
class ForecastOutput:
    """Forward-pass result of a neural forecaster.

    Attributes
    ----------
    prediction:
        ``(B, T_out, N, D_out)`` forecast in the model's (scaled) units.
    estimates_fwd / estimates_bwd:
        ``(B, T_in, N, D)`` step-ahead history estimates from the forward
        and backward recurrent passes (``None`` for models without the
        recurrent imputation mechanism).
    estimate_validity:
        ``(T_in,)`` 0/1 weights marking history steps where both passes
        produced an estimate (the first forward and last backward steps
        start from zero state and are excluded from Eq. 6).
    """

    prediction: Tensor
    estimates_fwd: Tensor | None = None
    estimates_bwd: Tensor | None = None
    estimate_validity: np.ndarray | None = None


class NeuralForecaster(Module):
    """Base class for trainable forecasters.

    Subclasses implement ``forward(x, m, steps_of_day) -> ForecastOutput``
    where ``x``/``m`` are ``(B, T_in, N, D)`` arrays (``x`` zero-filled at
    missing entries) and ``steps_of_day`` is ``(B, T_in)``.

    Models consuming additional window fields (e.g. ASTGCN's periodic
    segments) override :meth:`forward_batch`, which is the entry point
    the training harness uses — each model declares its own batch-field
    contract instead of the trainer special-casing model families.
    """

    #: whether the model consumes the observation mask (imputation models)
    uses_mask: bool = False
    #: whether forward() returns history estimates for the joint loss
    produces_estimates: bool = False
    #: whether forward() takes x_daily/m_daily periodic segments (ASTGCN)
    uses_periodic: bool = False

    def __init__(self, input_length: int, output_length: int, num_nodes: int,
                 num_features: int, output_features: int | None = None):
        super().__init__()
        self.input_length = input_length
        self.output_length = output_length
        self.num_nodes = num_nodes
        self.num_features = num_features
        self.output_features = output_features if output_features is not None else num_features

    def forward(self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray) -> ForecastOutput:
        raise NotImplementedError

    def forward_batch(self, batch) -> ForecastOutput:
        """Forward pass from a :class:`~repro.datasets.WindowSet` batch.

        The default consumes the universal fields (``x``, ``m``,
        ``steps_of_day``); models that read extra window fields override
        this to pick them off the batch themselves.
        """
        return self(batch.x, batch.m, batch.steps_of_day)

    # ------------------------------------------------------------------
    # Traced execution plans (repro.autodiff.plan)
    # ------------------------------------------------------------------
    def plan_inputs(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> tuple[dict[str, np.ndarray], tuple] | None:
        """Split a request into a traceable core input set and a guard.

        Returns ``(inputs, signature)`` or ``None`` when the model does
        not support traced execution (the default — serving then stays
        on the eager path).

        ``inputs`` maps :meth:`plan_forward` keyword names to
        policy-dtype arrays; anything data-dependent that the tracer
        cannot follow (step-of-day lookups, graph-interval weights) must
        be computed *here*, eagerly, and passed in as a plan input.
        ``signature`` is a hashable fingerprint of every value that
        steers control flow inside :meth:`plan_forward` (e.g. which
        temporal graphs are active): plans are cached per
        ``(shape, signature)`` so a branch taken differently forces a
        fresh trace instead of replaying a stale one.
        """
        return None

    def plan_forward(self, **inputs) -> np.ndarray:
        """The traceable forward core over :meth:`plan_inputs` arrays.

        Must be pure array math of its inputs (given a fixed signature)
        and return the scaled prediction as an ndarray. Only models that
        override :meth:`plan_inputs` need to implement this.
        """
        raise NotImplementedError


class StatisticalForecaster:
    """Base class for closed-form baselines (HA, VAR).

    ``fit`` consumes the raw training series; ``predict`` maps a window
    batch to forecasts, all in numpy.
    """

    def fit(self, data: np.ndarray, mask: np.ndarray) -> "StatisticalForecaster":
        """Fit on training history ``(T, N, D)`` with observation mask."""
        raise NotImplementedError

    def predict(
        self, x: np.ndarray, m: np.ndarray, output_length: int
    ) -> np.ndarray:
        """Forecast ``(B, T_out, N, D)`` from window batches ``(B, T_in, N, D)``."""
        raise NotImplementedError
