"""Vector Autoregression baseline (paper: lag order 3).

Each feature channel gets its own VAR over the ``N`` node series: the value
vector at time ``t`` is a linear function of the previous ``lags`` value
vectors of *all* nodes. Fit by ridge-regularized least squares on the
mean-filled training history; multi-step forecasts are produced by rolling
the one-step model forward.
"""

from __future__ import annotations

import numpy as np

from .base import StatisticalForecaster

__all__ = ["VectorAutoRegression"]


class VectorAutoRegression(StatisticalForecaster):
    """VAR(p) with ridge regularization for numerical stability.

    Parameters
    ----------
    lags:
        Autoregressive order (paper sets 3).
    ridge:
        Tikhonov coefficient; keeps the normal equations well-posed when
        node series are collinear (common at high missing rates after
        mean filling).
    """

    def __init__(self, lags: int = 3, ridge: float = 1e-3):
        if lags < 1:
            raise ValueError(f"lags must be >= 1, got {lags}")
        self.lags = lags
        self.ridge = ridge
        # One (N*lags + 1, N) coefficient matrix per feature channel.
        self._coef: list[np.ndarray] | None = None
        self._train_mean: np.ndarray | None = None  # (N, D)

    def fit(self, data: np.ndarray, mask: np.ndarray) -> "VectorAutoRegression":
        data = np.asarray(data, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        total, nodes, features = data.shape
        if total <= self.lags:
            raise ValueError(
                f"need more than {self.lags} timestamps, got {total}"
            )
        count = np.maximum(mask.sum(axis=0), 1.0)
        self._train_mean = (data * mask).sum(axis=0) / count
        filled = mask * data + (1.0 - mask) * self._train_mean

        self._coef = []
        for d in range(features):
            series = filled[:, :, d]  # (T, N)
            rows = total - self.lags
            design = np.ones((rows, nodes * self.lags + 1))
            for lag in range(1, self.lags + 1):
                cols = slice((lag - 1) * nodes, lag * nodes)
                design[:, cols] = series[self.lags - lag : total - lag]
            target = series[self.lags :]
            gram = design.T @ design + self.ridge * np.eye(design.shape[1])
            coef = np.linalg.solve(gram, design.T @ target)
            self._coef.append(coef)
        return self

    def predict(
        self, x: np.ndarray, m: np.ndarray, output_length: int
    ) -> np.ndarray:
        if self._coef is None or self._train_mean is None:
            raise RuntimeError("call fit() before predict()")
        x = np.asarray(x, dtype=np.float64)
        m = np.asarray(m, dtype=np.float64)
        batch, steps, nodes, features = x.shape
        if steps < self.lags:
            raise ValueError(f"window shorter than lag order {self.lags}")
        filled = m * x + (1.0 - m) * self._train_mean  # (B, T, N, D)

        out = np.zeros((batch, output_length, nodes, features))
        for d in range(features):
            coef = self._coef[d]
            history = filled[:, :, :, d]  # (B, T, N)
            buffer = history[:, -self.lags :, :].copy()  # (B, lags, N)
            for step in range(output_length):
                design = np.ones((batch, nodes * self.lags + 1))
                for lag in range(1, self.lags + 1):
                    cols = slice((lag - 1) * nodes, lag * nodes)
                    design[:, cols] = buffer[:, -lag, :]
                pred = design @ coef  # (B, N)
                out[:, step, :, d] = pred
                buffer = np.concatenate([buffer[:, 1:, :], pred[:, None, :]], axis=1)
        return out
