"""ASTGCN baseline (Guo et al., AAAI 2019).

Attention-based Spatial-Temporal GCN: temporal attention reweights the
input window along time, spatial attention modulates the Chebyshev
propagation matrices, and a temporal convolution mixes along time. We
implement the recent-segment branch (``T_h``), which is the configuration
the paper compares against (``T_h = 12``, ``K = 3``); periodic segments
are supported by widening the input window.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, default_dtype
from ..graphs import chebyshev_polynomials
from ..nn import (
    CausalConv1d,
    Linear,
    Module,
    Parameter,
    SpatialAttention,
    TemporalAttention,
    init,
)
from .base import ForecastOutput, NeuralForecaster

__all__ = ["ASTGCN"]


class _STBlock(Module):
    """One spatio-temporal block: TAtt -> SAtt-modulated ChebConv -> TCN."""

    def __init__(
        self,
        num_nodes: int,
        in_channels: int,
        out_channels: int,
        num_steps: int,
        cheb_stack: np.ndarray,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.temporal_att = TemporalAttention(num_nodes, in_channels, num_steps, rng=rng)
        self.spatial_att = SpatialAttention(num_nodes, in_channels, num_steps, rng=rng)
        self.order = cheb_stack.shape[0]
        self._cheb = [Tensor(cheb_stack[k]) for k in range(self.order)]
        self.cheb_weight = Parameter(
            init.xavier_uniform((self.order * in_channels, out_channels), rng)
        )
        self.cheb_bias = Parameter(init.zeros(out_channels))
        self.time_conv = CausalConv1d(out_channels, out_channels, kernel_size=3, rng=rng)
        self.residual = Parameter(init.xavier_uniform((in_channels, out_channels), rng))

    def forward(self, x: Tensor) -> Tensor:
        """``x``: ``(B, N, T, C)`` -> same shape with ``out_channels``."""
        # Temporal attention mixes time steps: x'(b,n,t,:) = sum_tau E(b,t,tau) x(b,n,tau,:).
        t_att = self.temporal_att(x)  # (B, T, T)
        x_t = t_att.unsqueeze(1).matmul(x)  # (B, N, T, C)
        # Spatial attention modulates every Chebyshev support.
        s_att = self.spatial_att(x_t)  # (B, N, N)
        x_time = x_t.swapaxes(1, 2)  # (B, T, N, C)
        propagated = []
        for t_k in self._cheb:
            support = t_k * s_att  # (B, N, N) via broadcasting
            propagated.append(support.unsqueeze(1).matmul(x_time))  # (B, T, N, C)
        spatial = concat(propagated, axis=-1).matmul(self.cheb_weight) + self.cheb_bias
        spatial = spatial.relu().swapaxes(1, 2)  # (B, N, T, C_out)
        out = self.time_conv(spatial)  # causal over time axis (-2)
        return (out + x.matmul(self.residual)).relu()


class _Branch(Module):
    """One ASTGCN input branch: ST blocks over a segment + its own head."""

    def __init__(
        self,
        segment_length: int,
        output_size: int,
        num_nodes: int,
        num_features: int,
        hidden_channels: int,
        num_blocks: int,
        cheb: np.ndarray,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.blocks = []
        channels = num_features
        for i in range(num_blocks):
            block = _STBlock(num_nodes, channels, hidden_channels,
                             segment_length, cheb, rng)
            self.register_module(f"block{i}", block)
            self.blocks.append(block)
            channels = hidden_channels
        self.head = Linear(segment_length * hidden_channels, output_size, rng=rng)

    def forward(self, x: np.ndarray) -> Tensor:
        """``x``: ``(B, T_seg, N, C)`` -> ``(B, N, output_size)``."""
        batch, steps, nodes, _features = x.shape
        h = Tensor(np.asanyarray(x, dtype=default_dtype())).swapaxes(1, 2)  # (B, N, T, C)
        for block in self.blocks:
            h = block(h)
        return self.head(h.reshape(batch, nodes, steps * h.shape[-1]))


class ASTGCN(NeuralForecaster):
    """ASTGCN with a recent branch and an optional daily-periodic branch.

    The paper configures ASTGCN with recent (``T_h = 12``), daily
    (``T_d = 12``) and weekly (``T_w = 24``) segments; branch outputs are
    fused with learned elementwise weights. ``daily_segments > 0`` enables
    the daily branch (the harness then builds windows carrying
    ``x_daily``); the weekly branch follows the same mechanism and is
    enabled by widening ``daily_segments`` to 7-day strides upstream.
    """

    def __init__(
        self,
        input_length: int,
        output_length: int,
        num_nodes: int,
        num_features: int,
        output_features: int | None = None,
        adjacency: np.ndarray | None = None,
        hidden_channels: int = 32,
        num_blocks: int = 1,
        cheb_order: int = 3,
        daily_segments: int = 0,
        seed: int = 0,
    ):
        super().__init__(input_length, output_length, num_nodes, num_features,
                         output_features)
        if adjacency is None:
            raise ValueError("ASTGCN requires the geographic adjacency")
        rng = np.random.default_rng(seed)
        cheb = chebyshev_polynomials(adjacency, cheb_order)
        self.daily_segments = daily_segments
        self.uses_periodic = daily_segments > 0
        output_size = output_length * self.output_features

        self.recent = _Branch(input_length, output_size, num_nodes,
                              num_features, hidden_channels, num_blocks,
                              cheb, rng)
        if daily_segments > 0:
            self.daily = _Branch(
                daily_segments * output_length, output_size, num_nodes,
                num_features, hidden_channels, num_blocks, cheb, rng,
            )
            # Learned elementwise fusion weights (one map per branch).
            self.fuse_recent = Parameter(init.ones((num_nodes, output_size)))
            self.fuse_daily = Parameter(
                init.zeros((num_nodes, output_size))
            )

    def forward(
        self,
        x: np.ndarray,
        m: np.ndarray,
        steps_of_day: np.ndarray,
        x_daily: np.ndarray | None = None,
        m_daily: np.ndarray | None = None,
    ) -> ForecastOutput:
        x = np.asanyarray(x, dtype=default_dtype())
        batch = x.shape[0]
        nodes = x.shape[2]
        out = self.recent(x)  # (B, N, T_out * D_out)
        if self.daily_segments > 0:
            if x_daily is None:
                raise ValueError(
                    "this ASTGCN was built with a daily branch; windows must "
                    "be created with daily_segments > 0"
                )
            daily_out = self.daily(x_daily)
            out = out * self.fuse_recent + daily_out * self.fuse_daily
        prediction = out.reshape(
            batch, nodes, self.output_length, self.output_features
        ).transpose(0, 2, 1, 3)
        return ForecastOutput(prediction=prediction)

    def forward_batch(self, batch) -> ForecastOutput:
        """Consume the periodic segment fields when the daily branch exists."""
        if self.uses_periodic:
            return self(batch.x, batch.m, batch.steps_of_day,
                        x_daily=batch.x_daily, m_daily=batch.m_daily)
        return self(batch.x, batch.m, batch.steps_of_day)
