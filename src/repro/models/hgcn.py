"""The HGCN block (Section III-D3) and the simpler spatial encoders.

HGCN runs one GCN per graph in the heterogeneous set — the geographic
graph plus ``M`` temporal graphs — and combines node embeddings as::

    S_t = GCN_geo(X_t) + sum_m w_m(t) * GCN_m(X_t)

where ``w_m(t)`` weights each temporal graph by how close timestamp ``t``
is to the graph's time interval (hard indicator or soft circular decay,
see :meth:`TimelinePartition.membership_weights`).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, default_dtype
from ..graphs import HeterogeneousGraphSet, chebyshev_polynomials
from ..nn import ChebConv, Linear, Module, ModuleList

__all__ = ["SpatialEncoder", "LinearEncoder", "GCNEncoder", "HGCNBlock"]


class SpatialEncoder(Module):
    """Interface: map node features ``(B, N, D)`` to embeddings ``(B, N, p)``.

    ``weights`` carries per-sample temporal-graph weights ``(B, M)``;
    encoders that ignore the heterogeneous structure accept and discard it.
    """

    #: whether forward() consumes interval weights
    needs_interval_weights: bool = False

    def forward(self, x: Tensor, weights: np.ndarray | None = None) -> Tensor:
        raise NotImplementedError


class LinearEncoder(SpatialEncoder):
    """No spatial mixing: a shared per-node affine embedding.

    This is the spatial block of the FC-LSTM-I ablation (temporal
    correlations only, cf. BRITS).
    """

    def __init__(self, in_channels: int, out_channels: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.proj = Linear(in_channels, out_channels, rng=rng)

    def forward(self, x: Tensor, weights: np.ndarray | None = None) -> Tensor:
        return self.proj(x).relu()


class GCNEncoder(SpatialEncoder):
    """Single-graph spectral GCN on the geographic adjacency.

    The spatial block of FC-GCN-I and GCN-LSTM-I (no temporal graphs).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        adjacency: np.ndarray,
        cheb_order: int = 3,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        stack = chebyshev_polynomials(adjacency, cheb_order)
        self.conv = ChebConv(in_channels, out_channels, stack, rng=rng)

    def forward(self, x: Tensor, weights: np.ndarray | None = None) -> Tensor:
        return self.conv(x).relu()


class HGCNBlock(SpatialEncoder):
    """Heterogeneous GCN: geographic GCN + weighted temporal GCNs.

    Parameters
    ----------
    graphs:
        The :class:`HeterogeneousGraphSet` built from training history.
    cheb_order:
        Chebyshev polynomial order ``K`` (paper: 3) shared by every GCN.
    """

    needs_interval_weights = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        graphs: HeterogeneousGraphSet,
        cheb_order: int = 3,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.graphs = graphs
        self.geo_conv = ChebConv(
            in_channels, out_channels,
            chebyshev_polynomials(graphs.geographic, cheb_order), rng=rng,
        )
        self.temporal_convs = ModuleList(
            ChebConv(in_channels, out_channels,
                     chebyshev_polynomials(adj, cheb_order), rng=rng)
            for adj in graphs.temporal
        )

    @property
    def num_temporal(self) -> int:
        return len(self.temporal_convs)

    def forward(self, x: Tensor, weights: np.ndarray | None = None) -> Tensor:
        """``x``: ``(B, N, D)``; ``weights``: ``(B, M)`` interval weights."""
        if weights is None:
            raise ValueError("HGCNBlock requires per-sample interval weights")
        # asanyarray: tracing subclasses must survive; the per-graph
        # ``w.any()`` skip below is data-dependent control flow, guarded
        # upstream by the model's plan signature (activity bitmask).
        weights = np.asanyarray(weights, dtype=default_dtype())
        if weights.ndim != 2 or weights.shape[1] != self.num_temporal:
            raise ValueError(
                f"weights must be (B, {self.num_temporal}), got {weights.shape}"
            )
        out = self.geo_conv(x)
        for idx, conv in enumerate(self.temporal_convs):
            w = weights[:, idx]
            if not w.any():
                continue  # interval inactive for the whole batch
            out = out + conv(x) * Tensor(w.reshape(-1, 1, 1))
        return out.relu()
