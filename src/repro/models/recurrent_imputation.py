"""The recurrent-imputation forecaster family (Sections III-E / III-F).

One configurable class covers the paper's model and its three ablations:

=================  ==================  =========
Name               spatial encoder      temporal
=================  ==================  =========
FC-LSTM-I          LinearEncoder        LSTM
FC-GCN-I           GCNEncoder           (none)
GCN-LSTM-I         GCNEncoder           LSTM
RIHGCN             HGCNBlock            LSTM
=================  ==================  =========

Mechanics per direction (Eq. 3–5): at step ``t`` the incomplete input is
complemented with the previous step's estimate,
``X̂_t = M_t ⊙ X_t + (1-M_t) ⊙ X̂ᵉ_t``; the spatial encoder produces node
embeddings ``S_t``; the (mask-conditioned) LSTM produces hidden states
``H_t``; ``Z_t = [S_t; H_t]`` feeds a linear head that estimates
``X̂ᵉ_{t+1}``. Crucially the estimate stays attached to the autodiff graph,
so imputation errors receive delayed gradients from later steps and from
the forecast loss — the paper's central training trick
(``detach_imputation=True`` severs this link for the ablation benchmark).

A bi-directional pass (Section III-F) repeats this backward in time with
its own parameters; hidden states are concatenated and estimates from both
directions enter the consistency loss (Eq. 6).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, default_dtype, no_grad, stack, where
from ..graphs import HeterogeneousGraphSet
from ..nn import Linear, LSTMCell, Module
from .base import ForecastOutput, NeuralForecaster
from .hgcn import GCNEncoder, HGCNBlock, LinearEncoder, SpatialEncoder

__all__ = ["RecurrentImputationForecaster", "build_spatial_encoder"]


def build_spatial_encoder(
    kind: str,
    in_channels: int,
    out_channels: int,
    adjacency: np.ndarray | None = None,
    graphs: HeterogeneousGraphSet | None = None,
    cheb_order: int = 3,
    rng: np.random.Generator | None = None,
) -> SpatialEncoder:
    """Factory mapping a config string to a spatial encoder.

    ``kind``: ``"none"`` (shared linear), ``"gcn"`` (geographic graph,
    requires ``adjacency``) or ``"hgcn"`` (requires ``graphs``).
    """
    if kind == "none":
        return LinearEncoder(in_channels, out_channels, rng=rng)
    if kind == "gcn":
        if adjacency is None:
            raise ValueError("spatial kind 'gcn' requires an adjacency matrix")
        return GCNEncoder(in_channels, out_channels, adjacency, cheb_order, rng=rng)
    if kind == "hgcn":
        if graphs is None:
            raise ValueError("spatial kind 'hgcn' requires a HeterogeneousGraphSet")
        return HGCNBlock(in_channels, out_channels, graphs, cheb_order, rng=rng)
    raise ValueError(f"unknown spatial encoder kind {kind!r}")


class _DirectionPass(Module):
    """One direction (forward or backward) of the recurrent imputation."""

    def __init__(
        self,
        spatial: SpatialEncoder,
        num_features: int,
        embed_dim: int,
        hidden_dim: int,
        use_lstm: bool,
        rng: np.random.Generator | None,
    ):
        super().__init__()
        self.spatial = spatial
        self.use_lstm = use_lstm
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim if use_lstm else 0
        if use_lstm:
            # LSTM input is [S_t ; m_t] per node (Eq. 4).
            self.cell = LSTMCell(embed_dim + num_features, hidden_dim, rng=rng)
        self.estimate_head = Linear(embed_dim + self.hidden_dim, num_features, rng=rng)

    @property
    def state_dim(self) -> int:
        """Per-node dimension of Z_t."""
        return self.embed_dim + self.hidden_dim

    def forward(
        self,
        x: np.ndarray,
        m: np.ndarray,
        interval_weights: np.ndarray | None,
        reverse: bool,
        detach_imputation: bool,
    ) -> tuple[Tensor, list[Tensor | None]]:
        """Run the pass.

        Returns ``(z, estimates)`` where ``z`` is ``(B, T, N, state_dim)``
        and ``estimates[t]`` is the ``(B, N, D)`` estimate of ``X_t``
        produced by the *previous* step in this direction (``None`` at the
        boundary step that has no predecessor).
        """
        batch, steps, nodes, features = x.shape
        order = range(steps - 1, -1, -1) if reverse else range(steps)
        z_store: list[Tensor | None] = [None] * steps
        estimates: list[Tensor | None] = [None] * steps

        est_prev: Tensor | None = None
        state = None
        for t in order:
            x_t = Tensor(x[:, t])
            m_t = m[:, t]  # (B, N, D) numpy
            if est_prev is None:
                x_comp = x_t  # zero-filled missing entries at the boundary
            else:
                feed = est_prev.detach() if detach_imputation else est_prev
                x_comp = where(m_t > 0, x_t, feed)  # Eq. 3
            w_t = interval_weights[:, t] if interval_weights is not None else None
            s_t = self.spatial(x_comp, w_t)  # (B, N, p)
            if self.use_lstm:
                s_flat = s_t.reshape(batch * nodes, self.embed_dim)
                m_flat = Tensor(m_t.reshape(batch * nodes, features))
                h, c = self.cell(concat([s_flat, m_flat], axis=-1), state)
                state = (h, c)
                z_t = concat([s_t, h.reshape(batch, nodes, self.hidden_dim)], axis=-1)
            else:
                z_t = s_t
            z_store[t] = z_t
            est_next = self.estimate_head(z_t)  # estimates X at the next step
            target_step = t - 1 if reverse else t + 1
            if 0 <= target_step < steps:
                estimates[target_step] = est_next
            est_prev = est_next
        z = stack([zt for zt in z_store], axis=1)  # (B, T, N, state_dim)
        return z, estimates


class RecurrentImputationForecaster(NeuralForecaster):
    """Joint imputation + forecasting model (the paper's framework).

    Parameters
    ----------
    spatial_kind:
        ``"none"`` / ``"gcn"`` / ``"hgcn"`` — selects the ablation.
    adjacency / graphs:
        Geographic adjacency (for ``gcn``) or the full heterogeneous set
        (for ``hgcn``).
    embed_dim:
        GCN output channels per node, the paper's ``p`` (64 filters).
    hidden_dim:
        LSTM hidden size, the paper's ``q`` (128).
    bidirectional:
        Run the backward pass too (Section III-F); required for the
        consistency term of Eq. 6.
    detach_imputation:
        Ablation switch: treat estimates as constants during backprop
        (the "standard LSTM imputation" the paper contrasts against).
    use_lstm:
        Disable for the FC-GCN-I ablation (spatial correlations only).
    head_mode:
        How Eq. (7) aggregates hidden states across time: ``"concat"``
        (flatten all Z_t into one FC input — the default) or
        ``"attention"`` (learned softmax weights over time steps, the
        paper's mentioned alternative).
    """

    uses_mask = True
    produces_estimates = True

    def __init__(
        self,
        input_length: int,
        output_length: int,
        num_nodes: int,
        num_features: int,
        output_features: int | None = None,
        spatial_kind: str = "hgcn",
        adjacency: np.ndarray | None = None,
        graphs: HeterogeneousGraphSet | None = None,
        embed_dim: int = 64,
        hidden_dim: int = 128,
        cheb_order: int = 3,
        bidirectional: bool = True,
        detach_imputation: bool = False,
        use_lstm: bool = True,
        head_mode: str = "concat",
        attention_dim: int = 32,
        seed: int = 0,
    ):
        super().__init__(input_length, output_length, num_nodes, num_features,
                         output_features)
        if head_mode not in ("concat", "attention"):
            raise ValueError(f"unknown head_mode {head_mode!r}")
        rng = np.random.default_rng(seed)
        self.spatial_kind = spatial_kind
        self.bidirectional = bidirectional
        self.detach_imputation = detach_imputation
        self.head_mode = head_mode
        self.graphs = graphs

        def make_pass() -> _DirectionPass:
            spatial = build_spatial_encoder(
                spatial_kind, num_features, embed_dim,
                adjacency=adjacency, graphs=graphs, cheb_order=cheb_order, rng=rng,
            )
            return _DirectionPass(
                spatial, num_features, embed_dim, hidden_dim, use_lstm, rng
            )

        self.forward_pass = make_pass()
        self.backward_pass = make_pass() if bidirectional else None

        directions = 2 if bidirectional else 1
        state_dim = self.forward_pass.state_dim * directions
        # Aggregation (Eq. 7): concatenate Z_t across time, or weight them
        # with learned temporal attention.
        if head_mode == "concat":
            self.head = Linear(
                input_length * state_dim,
                output_length * self.output_features,
                rng=rng,
            )
        else:
            self.att_proj = Linear(state_dim, attention_dim, rng=rng)
            self.att_score = Linear(attention_dim, 1, rng=rng)
            self.head = Linear(
                state_dim, output_length * self.output_features, rng=rng
            )

    # ------------------------------------------------------------------
    def _interval_weights(self, steps_of_day: np.ndarray) -> np.ndarray | None:
        """Per-(sample, step) temporal-graph weights ``(B, T, M)``."""
        if self.graphs is None or self.spatial_kind != "hgcn":
            return None
        batch, steps = steps_of_day.shape
        flat = self.graphs.interval_weights(steps_of_day.reshape(-1))
        return flat.reshape(batch, steps, -1)

    def forward(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> ForecastOutput:
        # asanyarray: keep tracing subclasses alive through the cast.
        x = np.asanyarray(x, dtype=default_dtype())
        m = np.asanyarray(m, dtype=default_dtype())
        weights = self._interval_weights(np.asarray(steps_of_day))
        return self._forward_core(x, m, weights)

    def _forward_core(
        self, x: np.ndarray, m: np.ndarray, weights: np.ndarray | None
    ) -> ForecastOutput:
        """Forward pass over precomputed interval weights.

        Shared by :meth:`forward` (which derives ``weights`` from
        ``steps_of_day``) and :meth:`plan_forward` (which receives them
        as an explicit plan input so the tracer never sees the
        data-dependent interval lookup).
        """
        batch, steps, nodes, _features = x.shape
        if steps != self.input_length:
            raise ValueError(
                f"expected {self.input_length} input steps, got {steps}"
            )

        z_fwd, est_fwd = self.forward_pass(
            x, m, weights, reverse=False, detach_imputation=self.detach_imputation
        )
        if self.backward_pass is not None:
            z_bwd, est_bwd = self.backward_pass(
                x, m, weights, reverse=True, detach_imputation=self.detach_imputation
            )
            z = concat([z_fwd, z_bwd], axis=-1)
        else:
            z_bwd, est_bwd = None, None
            z = z_fwd

        if self.head_mode == "concat":
            # (B, T, N, Z) -> (B, N, T*Z) -> head -> (B, T_out, N, D_out).
            z_nodes = z.transpose(0, 2, 1, 3).reshape(
                batch, nodes, steps * z.shape[-1]
            )
            flat = self.head(z_nodes)  # (B, N, T_out * D_out)
        else:
            # Attention over time: a_t = softmax_t(v^T tanh(W z_t)).
            from ..autodiff import softmax

            scores = self.att_score(self.att_proj(z).tanh())  # (B, T, N, 1)
            attention = softmax(scores, axis=1)
            context = (z * attention).sum(axis=1)  # (B, N, Z)
            flat = self.head(context)  # (B, N, T_out * D_out)
        prediction = flat.reshape(
            batch, nodes, self.output_length, self.output_features
        ).transpose(0, 2, 1, 3)

        est_fwd_t, est_bwd_t, validity = self._assemble_estimates(
            est_fwd, est_bwd, x.shape
        )
        return ForecastOutput(
            prediction=prediction,
            estimates_fwd=est_fwd_t,
            estimates_bwd=est_bwd_t,
            estimate_validity=validity,
        )

    # ------------------------------------------------------------------
    # Traced execution plans
    # ------------------------------------------------------------------
    def plan_inputs(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> tuple[dict[str, np.ndarray], tuple]:
        """Eager prologue for tracing: cast, and resolve interval weights.

        The interval-weight lookup is data-dependent (it indexes the
        timeline partition by step-of-day), so it runs eagerly here and
        the resulting ``(B, T, M)`` weights become a plan *input*. The
        signature is the per-graph activity bitmask — ``HGCNBlock``
        skips temporal graphs whose weights are all zero, so a plan is
        only valid for requests activating the same graph subset.
        """
        x = np.asarray(x, dtype=default_dtype())
        m = np.asarray(m, dtype=default_dtype())
        weights = self._interval_weights(np.asarray(steps_of_day))
        inputs = {"x": x, "m": m}
        if weights is None:
            return inputs, ()
        weights = np.asarray(weights, dtype=default_dtype())
        inputs["weights"] = weights
        signature = tuple(bool(b) for b in (weights != 0).any(axis=(0, 1)))
        return inputs, signature

    def plan_forward(
        self,
        x: np.ndarray,
        m: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        return self._forward_core(x, m, weights).prediction.data

    def _assemble_estimates(
        self,
        est_fwd: list[Tensor | None],
        est_bwd: list[Tensor | None] | None,
        shape: tuple[int, ...],
    ) -> tuple[Tensor, Tensor | None, np.ndarray]:
        """Stack per-step estimates, zero-filling boundary steps."""
        batch, steps, nodes, features = shape
        zero = Tensor(np.zeros((batch, nodes, features), dtype=default_dtype()))
        fwd_stack = stack([e if e is not None else zero for e in est_fwd], axis=1)
        validity = np.array([1.0 if e is not None else 0.0 for e in est_fwd])
        if est_bwd is not None:
            bwd_stack = stack([e if e is not None else zero for e in est_bwd], axis=1)
            validity = validity * np.array(
                [1.0 if e is not None else 0.0 for e in est_bwd]
            )
            return fwd_stack, bwd_stack, validity
        return fwd_stack, None, validity

    # ------------------------------------------------------------------
    def impute(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> np.ndarray:
        """Fill missing history entries (inference-time imputation, RQ2).

        Observed entries pass through unchanged; missing entries take the
        bidirectional mean estimate (or the single available direction at
        the boundary steps).
        """
        with no_grad():
            out = self.forward(x, m, steps_of_day)
        fwd = out.estimates_fwd.data
        if out.estimates_bwd is not None:
            bwd = out.estimates_bwd.data
            steps = x.shape[1]
            fwd_valid = np.array([t > 0 for t in range(steps)], dtype=default_dtype())
            bwd_valid = np.array([t < steps - 1 for t in range(steps)], dtype=default_dtype())
            weight_f = fwd_valid[None, :, None, None]
            weight_b = bwd_valid[None, :, None, None]
            denom = np.maximum(weight_f + weight_b, 1.0)
            estimate = (fwd * weight_f + bwd * weight_b) / denom
        else:
            estimate = fwd
        m = np.asanyarray(m, dtype=default_dtype())
        return m * np.asanyarray(x) + (1.0 - m) * estimate
