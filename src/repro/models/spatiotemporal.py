"""Mean-filled spatio-temporal baselines: FC-LSTM, FC-GCN, GCN-LSTM.

These models do not handle missingness; following the paper's protocol the
harness feeds them inputs whose missing entries are replaced by the
per-feature observed mean (after Z-score normalization that mean is zero,
so the zero-filled tensors are already mean-filled).

* **FC-LSTM** — shared per-node LSTM over time, FC aggregation.
* **FC-GCN**  — a GCN per timestamp, hidden states aggregated with FC.
* **GCN-LSTM** — GCN spatial encoding feeding an LSTM, FC head.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, default_dtype, stack
from ..graphs import chebyshev_polynomials
from ..nn import ChebConv, Linear, LSTMCell
from .base import ForecastOutput, NeuralForecaster

__all__ = ["SpatioTemporalForecaster", "fc_lstm", "fc_gcn", "gcn_lstm"]


class SpatioTemporalForecaster(NeuralForecaster):
    """Configurable GCN/LSTM forecaster without imputation.

    ``spatial``: ``"none"`` (identity-style linear) or ``"gcn"``;
    ``use_lstm`` toggles the temporal module. The three baselines are the
    factory functions below.
    """

    def __init__(
        self,
        input_length: int,
        output_length: int,
        num_nodes: int,
        num_features: int,
        output_features: int | None = None,
        spatial: str = "gcn",
        adjacency: np.ndarray | None = None,
        use_lstm: bool = True,
        embed_dim: int = 64,
        hidden_dim: int = 128,
        cheb_order: int = 3,
        seed: int = 0,
    ):
        super().__init__(input_length, output_length, num_nodes, num_features,
                         output_features)
        rng = np.random.default_rng(seed)
        self.use_lstm = use_lstm
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim if use_lstm else 0
        if spatial == "gcn":
            if adjacency is None:
                raise ValueError("spatial='gcn' requires an adjacency matrix")
            stack_mat = chebyshev_polynomials(adjacency, cheb_order)
            self.encoder = ChebConv(num_features, embed_dim, stack_mat, rng=rng)
        elif spatial == "none":
            self.encoder = Linear(num_features, embed_dim, rng=rng)
        else:
            raise ValueError(f"unknown spatial mode {spatial!r}")
        if use_lstm:
            self.cell = LSTMCell(embed_dim, hidden_dim, rng=rng)
        state_dim = embed_dim + self.hidden_dim
        self.head = Linear(
            input_length * state_dim, output_length * self.output_features, rng=rng
        )

    def forward(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> ForecastOutput:
        x = np.asanyarray(x, dtype=default_dtype())
        batch, steps, nodes, _features = x.shape
        state = None
        z_steps: list[Tensor] = []
        for t in range(steps):
            s_t = self.encoder(Tensor(x[:, t])).relu()  # (B, N, p)
            if self.use_lstm:
                s_flat = s_t.reshape(batch * nodes, self.embed_dim)
                h, c = self.cell(s_flat, state)
                state = (h, c)
                z_t = concat(
                    [s_t, h.reshape(batch, nodes, self.hidden_dim)], axis=-1
                )
            else:
                z_t = s_t
            z_steps.append(z_t)
        z = stack(z_steps, axis=1)  # (B, T, N, Z)
        z_nodes = z.transpose(0, 2, 1, 3).reshape(batch, nodes, steps * z.shape[-1])
        flat = self.head(z_nodes)
        prediction = flat.reshape(
            batch, nodes, self.output_length, self.output_features
        ).transpose(0, 2, 1, 3)
        return ForecastOutput(prediction=prediction)

    # ------------------------------------------------------------------
    # Traced execution plans
    # ------------------------------------------------------------------
    def plan_inputs(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> tuple[dict[str, np.ndarray], tuple] | None:
        """The forward is pure in ``x`` — mask and clock are ignored —
        so the plan input set is just the window and the signature is
        empty (no data-dependent control flow to guard)."""
        return {"x": np.asarray(x, dtype=default_dtype())}, ()

    def plan_forward(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, None, None).prediction.data


def fc_lstm(**kwargs) -> SpatioTemporalForecaster:
    """FC-LSTM baseline: temporal correlations only."""
    return SpatioTemporalForecaster(spatial="none", use_lstm=True, **kwargs)


def fc_gcn(**kwargs) -> SpatioTemporalForecaster:
    """FC-GCN baseline: spatial correlations only."""
    return SpatioTemporalForecaster(spatial="gcn", use_lstm=False, **kwargs)


def gcn_lstm(**kwargs) -> SpatioTemporalForecaster:
    """GCN-LSTM baseline: both, on the static geographic graph."""
    return SpatioTemporalForecaster(spatial="gcn", use_lstm=True, **kwargs)
