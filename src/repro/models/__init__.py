"""Model zoo: the paper's RIHGCN, its ablations and all baselines."""

from .astgcn import ASTGCN
from .dcrnn import DCRNN, DCGRUCell, DiffusionConv, random_walk_supports
from .base import ForecastOutput, NeuralForecaster, StatisticalForecaster
from .graph_wavenet import GraphWaveNet
from .grud import GRUDForecaster, compute_deltas, forward_fill_last
from .hgcn import GCNEncoder, HGCNBlock, LinearEncoder, SpatialEncoder
from .historical_average import HistoricalAverage, SeasonalHistoricalAverage
from .maginet import MagiNetForecaster
from .recurrent_imputation import (
    RecurrentImputationForecaster,
    build_spatial_encoder,
)
from .rihgcn import fc_gcn_i, fc_lstm_i, gcn_lstm_i, rihgcn
from .stgcn import STGCN
from .spatiotemporal import SpatioTemporalForecaster, fc_gcn, fc_lstm, gcn_lstm
from .var import VectorAutoRegression

__all__ = [
    "ForecastOutput",
    "NeuralForecaster",
    "StatisticalForecaster",
    "SpatialEncoder",
    "LinearEncoder",
    "GCNEncoder",
    "HGCNBlock",
    "RecurrentImputationForecaster",
    "build_spatial_encoder",
    "rihgcn",
    "gcn_lstm_i",
    "fc_gcn_i",
    "fc_lstm_i",
    "SpatioTemporalForecaster",
    "fc_lstm",
    "fc_gcn",
    "gcn_lstm",
    "ASTGCN",
    "GraphWaveNet",
    "STGCN",
    "DCRNN",
    "DCGRUCell",
    "DiffusionConv",
    "random_walk_supports",
    "GRUDForecaster",
    "MagiNetForecaster",
    "compute_deltas",
    "forward_fill_last",
    "HistoricalAverage",
    "SeasonalHistoricalAverage",
    "VectorAutoRegression",
]
