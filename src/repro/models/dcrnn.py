"""DCRNN-style baseline (Li et al., ICLR 2018).

Diffusion-Convolutional Recurrent Neural Network: a GRU whose gate
transformations are diffusion convolutions over the road graph, arranged
as a sequence-to-sequence model (encoder over the history, free-running
decoder over the horizon). This is the canonical graph-recurrent
forecaster the paper's related work builds on ([4]); provided as an extra
baseline beyond the paper's comparison set.

Like the other mean-filled baselines it does not model missingness —
inputs are zero-filled in scaled space (== mean-filled).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, default_dtype, stack
from ..nn import Linear, Module, Parameter, init
from .base import ForecastOutput, NeuralForecaster

__all__ = ["DCRNN", "DiffusionConv", "DCGRUCell", "random_walk_supports"]


def random_walk_supports(adjacency: np.ndarray) -> list[np.ndarray]:
    """Forward/backward random-walk transition matrices.

    For undirected graphs the two coincide and one support is returned;
    the dual-support form matters for directed road networks.
    """
    adj = np.asarray(adjacency, dtype=default_dtype())
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ValueError(f"adjacency must be square, got {adj.shape}")

    def normalize(a: np.ndarray) -> np.ndarray:
        degree = a.sum(axis=1, keepdims=True)
        degree[degree == 0] = 1.0
        return a / degree

    forward = normalize(adj)
    backward = normalize(adj.T)
    if np.allclose(forward, backward):
        return [forward]
    return [forward, backward]


class DiffusionConv(Module):
    """Diffusion convolution: ``sum_s sum_k (P_s^k X) W_{s,k}``.

    ``supports`` are random-walk transition matrices; powers up to
    ``max_step`` are precomputed (the graph is fixed during training).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        supports: list[np.ndarray],
        max_step: int = 2,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if max_step < 1:
            raise ValueError(f"max_step must be >= 1, got {max_step}")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self._powers: list[Tensor] = []
        for support in supports:
            support = np.asarray(support, dtype=default_dtype())
            power = np.eye(support.shape[0])
            for _ in range(max_step):
                power = power @ support
                self._powers.append(Tensor(power.copy()))
        n_terms = 1 + len(self._powers)  # identity term + diffusion terms
        self.weight = Parameter(
            init.xavier_uniform((n_terms * in_channels, out_channels), rng)
        )
        self.bias = Parameter(init.zeros(out_channels))

    def forward(self, x: Tensor) -> Tensor:
        """``x``: ``(B, N, in_channels)`` -> ``(B, N, out_channels)``."""
        terms = [x] + [p.matmul(x) for p in self._powers]
        return concat(terms, axis=-1).matmul(self.weight) + self.bias


class DCGRUCell(Module):
    """GRU cell with diffusion-convolutional gates (shared across nodes)."""

    def __init__(
        self,
        in_channels: int,
        hidden_dim: int,
        supports: list[np.ndarray],
        max_step: int = 2,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.gates = DiffusionConv(
            in_channels + hidden_dim, 2 * hidden_dim, supports, max_step, rng
        )
        self.candidate = DiffusionConv(
            in_channels + hidden_dim, hidden_dim, supports, max_step, rng
        )

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        """``x``: ``(B, N, C)``; ``h``: ``(B, N, H)`` -> new ``h``."""
        if h is None:
            h = Tensor(np.zeros(x.shape[:-1] + (self.hidden_dim,), dtype=default_dtype()))
        combined = concat([x, h], axis=-1)
        gates = self.gates(combined).sigmoid()
        r = gates[:, :, : self.hidden_dim]
        u = gates[:, :, self.hidden_dim :]
        c = self.candidate(concat([x, r * h], axis=-1)).tanh()
        return u * h + (1.0 - u) * c


class DCRNN(NeuralForecaster):
    """Seq2seq diffusion-convolutional GRU forecaster.

    Encoder consumes the history step by step; the decoder free-runs over
    the horizon, feeding each step's prediction back as the next input.
    """

    def __init__(
        self,
        input_length: int,
        output_length: int,
        num_nodes: int,
        num_features: int,
        output_features: int | None = None,
        adjacency: np.ndarray | None = None,
        hidden_dim: int = 32,
        diffusion_steps: int = 2,
        seed: int = 0,
    ):
        super().__init__(input_length, output_length, num_nodes, num_features,
                         output_features)
        if adjacency is None:
            raise ValueError("DCRNN requires the geographic adjacency")
        rng = np.random.default_rng(seed)
        supports = random_walk_supports(adjacency)
        self.encoder = DCGRUCell(num_features, hidden_dim, supports,
                                 diffusion_steps, rng)
        self.decoder = DCGRUCell(self.output_features, hidden_dim, supports,
                                 diffusion_steps, rng)
        self.projection = Linear(hidden_dim, self.output_features, rng=rng)

    def forward(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> ForecastOutput:
        x = np.asanyarray(x, dtype=default_dtype())
        batch, steps, nodes, _features = x.shape
        if steps != self.input_length:
            raise ValueError(f"expected {self.input_length} steps, got {steps}")
        h = None
        for t in range(steps):
            h = self.encoder(Tensor(x[:, t]), h)
        decoder_input = Tensor(np.zeros((batch, nodes, self.output_features), dtype=default_dtype()))
        outputs = []
        for _step in range(self.output_length):
            h = self.decoder(decoder_input, h)
            step_pred = self.projection(h)  # (B, N, D_out)
            outputs.append(step_pred)
            decoder_input = step_pred
        prediction = stack(outputs, axis=1)  # (B, T_out, N, D_out)
        return ForecastOutput(prediction=prediction)
