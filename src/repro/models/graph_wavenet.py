"""Graph WaveNet baseline (Wu et al., IJCAI 2019).

Stacked gated dilated temporal convolutions interleaved with diffusion
convolution over a *learned* adaptive adjacency (plus the fixed geographic
support), with skip connections into an MLP output head.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, default_dtype
from ..nn import AdaptiveGraphConv, GatedTCNBlock, Linear
from .base import ForecastOutput, NeuralForecaster

__all__ = ["GraphWaveNet"]


class GraphWaveNet(NeuralForecaster):
    """Graph WaveNet with configurable depth.

    Each layer: gated TCN (dilation doubling per layer) followed by
    adaptive diffusion convolution on the node axis; residuals inside the
    blocks, skip connections summed into the head.
    """

    def __init__(
        self,
        input_length: int,
        output_length: int,
        num_nodes: int,
        num_features: int,
        output_features: int | None = None,
        adjacency: np.ndarray | None = None,
        residual_channels: int = 32,
        num_layers: int = 3,
        embed_dim: int = 10,
        diffusion_steps: int = 2,
        seed: int = 0,
    ):
        super().__init__(input_length, output_length, num_nodes, num_features,
                         output_features)
        rng = np.random.default_rng(seed)
        self.input_proj = Linear(num_features, residual_channels, rng=rng)
        self.tcn_blocks = []
        self.graph_convs = []
        for i in range(num_layers):
            tcn = GatedTCNBlock(
                residual_channels, residual_channels,
                kernel_size=2, dilation=2 ** i, rng=rng,
            )
            gcn = AdaptiveGraphConv(
                residual_channels, residual_channels, num_nodes,
                embed_dim=embed_dim, diffusion_steps=diffusion_steps,
                fixed_support=adjacency, rng=rng,
            )
            self.register_module(f"tcn{i}", tcn)
            self.register_module(f"gcn{i}", gcn)
            self.tcn_blocks.append(tcn)
            self.graph_convs.append(gcn)
        self.head = Linear(
            input_length * residual_channels,
            output_length * self.output_features,
            rng=rng,
        )

    def forward(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> ForecastOutput:
        x = np.asanyarray(x, dtype=default_dtype())
        batch, steps, nodes, _features = x.shape
        h = self.input_proj(Tensor(x)).swapaxes(1, 2)  # (B, N, T, C)
        skip = None
        for tcn, gcn in zip(self.tcn_blocks, self.graph_convs):
            h = tcn(h)  # temporal mixing, time axis -2
            spatial = gcn(h.swapaxes(1, 2))  # (B, T, N, C) node mixing
            h = h + spatial.swapaxes(1, 2)
            skip = h if skip is None else skip + h
        flat = skip.relu().reshape(batch, nodes, steps * skip.shape[-1])
        out = self.head(flat)
        prediction = out.reshape(
            batch, nodes, self.output_length, self.output_features
        ).transpose(0, 2, 1, 3)
        return ForecastOutput(prediction=prediction)
