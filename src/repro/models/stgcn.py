"""STGCN baseline (Yu et al., IJCAI 2018).

Spatio-Temporal Graph Convolutional Network: "sandwich" ST-Conv blocks —
gated temporal convolution, Chebyshev graph convolution, gated temporal
convolution — stacked, then an output head. The gated-temporal-convolution
family the paper's related work cites ([16]); mean-filled inputs like the
other non-imputation baselines.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, default_dtype
from ..graphs import chebyshev_polynomials
from ..nn import ChebConv, GatedTCNBlock, Linear, Module
from .base import ForecastOutput, NeuralForecaster

__all__ = ["STGCN"]


class _STConvBlock(Module):
    """Temporal-gate -> ChebConv -> temporal-gate sandwich."""

    def __init__(
        self,
        in_channels: int,
        spatial_channels: int,
        out_channels: int,
        cheb_stack: np.ndarray,
        kernel_size: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.temporal_in = GatedTCNBlock(in_channels, spatial_channels,
                                         kernel_size=kernel_size, rng=rng)
        self.spatial = ChebConv(spatial_channels, spatial_channels, cheb_stack,
                                rng=rng)
        self.temporal_out = GatedTCNBlock(spatial_channels, out_channels,
                                          kernel_size=kernel_size, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """``x``: ``(B, N, T, C)`` -> same with ``out_channels``."""
        h = self.temporal_in(x)  # time axis is -2
        # Graph conv acts on the node axis: (B, N, T, C) -> (B, T, N, C).
        h = self.spatial(h.swapaxes(1, 2)).relu().swapaxes(1, 2)
        return self.temporal_out(h)


class STGCN(NeuralForecaster):
    """Stacked ST-Conv blocks with a fully-connected forecast head."""

    def __init__(
        self,
        input_length: int,
        output_length: int,
        num_nodes: int,
        num_features: int,
        output_features: int | None = None,
        adjacency: np.ndarray | None = None,
        hidden_channels: int = 32,
        num_blocks: int = 2,
        kernel_size: int = 3,
        cheb_order: int = 3,
        seed: int = 0,
    ):
        super().__init__(input_length, output_length, num_nodes, num_features,
                         output_features)
        if adjacency is None:
            raise ValueError("STGCN requires the geographic adjacency")
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        rng = np.random.default_rng(seed)
        cheb = chebyshev_polynomials(adjacency, cheb_order)
        self.blocks = []
        channels = num_features
        for i in range(num_blocks):
            block = _STConvBlock(channels, hidden_channels, hidden_channels,
                                 cheb, kernel_size, rng)
            self.register_module(f"block{i}", block)
            self.blocks.append(block)
            channels = hidden_channels
        self.head = Linear(
            input_length * hidden_channels,
            output_length * self.output_features,
            rng=rng,
        )

    def forward(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> ForecastOutput:
        x = np.asanyarray(x, dtype=default_dtype())
        batch, steps, nodes, _features = x.shape
        if steps != self.input_length:
            raise ValueError(f"expected {self.input_length} steps, got {steps}")
        h = Tensor(x).swapaxes(1, 2)  # (B, N, T, C)
        for block in self.blocks:
            h = block(h)
        flat = h.reshape(batch, nodes, steps * h.shape[-1])
        prediction = self.head(flat).reshape(
            batch, nodes, self.output_length, self.output_features
        ).transpose(0, 2, 1, 3)
        return ForecastOutput(prediction=prediction)
