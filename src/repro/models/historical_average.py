"""Historical Average baselines.

:class:`HistoricalAverage` follows the paper: "we calculate the average
traffic information for each time series, and use it as the predicted
value for future timestamps". With missing data the average runs over
*observed* entries of the input window; a fully-missing window falls back
to the training mean.

:class:`SeasonalHistoricalAverage` is the stronger classic variant common
in the traffic literature: the prediction for a future timestamp is the
training-set average at the same *time of day* — it captures the daily
cycle that plain HA flattens.
"""

from __future__ import annotations

import numpy as np

from .base import StatisticalForecaster

__all__ = ["HistoricalAverage", "SeasonalHistoricalAverage"]


class HistoricalAverage(StatisticalForecaster):
    """Window-mean forecaster (constant over the horizon)."""

    def __init__(self):
        self._train_mean: np.ndarray | None = None  # (N, D)

    def fit(self, data: np.ndarray, mask: np.ndarray) -> "HistoricalAverage":
        data = np.asarray(data, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        count = np.maximum(mask.sum(axis=0), 1.0)
        self._train_mean = (data * mask).sum(axis=0) / count
        return self

    def predict(
        self, x: np.ndarray, m: np.ndarray, output_length: int
    ) -> np.ndarray:
        if self._train_mean is None:
            raise RuntimeError("call fit() before predict()")
        x = np.asarray(x, dtype=np.float64)
        m = np.asarray(m, dtype=np.float64)
        count = m.sum(axis=1)  # (B, N, D)
        window_sum = (x * m).sum(axis=1)
        mean = np.where(
            count > 0, window_sum / np.maximum(count, 1.0), self._train_mean
        )  # (B, N, D)
        return np.repeat(mean[:, None, :, :], output_length, axis=1)


class SeasonalHistoricalAverage(StatisticalForecaster):
    """Time-of-day average forecaster (needs ``steps_of_day`` at predict).

    Fit computes the observed mean per (slot-of-day, node, feature) on the
    training history; prediction looks up the slots of the forecast steps.
    Slots never observed in training fall back to the global series mean.
    """

    #: the experiment runner passes the windows' steps_of_day when set
    needs_steps_of_day = True

    def __init__(self, steps_per_day: int = 288):
        if steps_per_day < 1:
            raise ValueError(f"steps_per_day must be >= 1, got {steps_per_day}")
        self.steps_per_day = steps_per_day
        self._profile: np.ndarray | None = None  # (S, N, D)
        self._train_mean: np.ndarray | None = None  # (N, D)

    def fit(self, data: np.ndarray, mask: np.ndarray) -> "SeasonalHistoricalAverage":
        from ..graphs.partition import daily_profile

        data = np.asarray(data, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        self._profile = daily_profile(data, mask, self.steps_per_day)
        count = np.maximum(mask.sum(axis=0), 1.0)
        self._train_mean = (data * mask).sum(axis=0) / count
        return self

    def predict(
        self,
        x: np.ndarray,
        m: np.ndarray,
        output_length: int,
        steps_of_day: np.ndarray | None = None,
    ) -> np.ndarray:
        if self._profile is None or self._train_mean is None:
            raise RuntimeError("call fit() before predict()")
        x = np.asarray(x, dtype=np.float64)
        batch, _t_in, nodes, features = x.shape
        if steps_of_day is None:
            raise ValueError(
                "SeasonalHistoricalAverage needs the windows' steps_of_day"
            )
        steps_of_day = np.asarray(steps_of_day)
        out = np.zeros((batch, output_length, nodes, features))
        for b in range(batch):
            last = int(steps_of_day[b, -1])
            for step in range(output_length):
                slot = (last + step + 1) % self.steps_per_day
                out[b, step] = self._profile[slot]
        return out
