"""MagiNet-style mask-conditioned deep imputation forecaster.

A mask-aware baseline in the spirit of MagiNet (arXiv 2406.03511): the
missing pattern itself — the mask and the time-since-last-observation —
is an *input* the network conditions on, not just a weighting in the
loss. Two mask-gated recurrent passes (forward and backward in time)
each maintain a running estimate of the next reading; a learned
confidence gate, driven purely by the missing pattern ``[m ; δ]``,
decides how much of the recurrent estimate to trust when a value is
absent:

* ``g_t = sigmoid(W_g [m_t ; δ_t])`` — pattern-conditioned confidence;
* ``x̃_t = m_t ⊙ x_t + (1-m_t) ⊙ (g_t ⊙ x̂_t)`` — observed values pass
  through, missing ones take the gated recurrent estimate;
* ``s_t = tanh(W_f [x̃_t ; m_t])`` — mask-conditioned encoding fed to a
  per-node GRU.

Both directions emit step-ahead estimates, so the trainer's
:class:`~repro.nn.JointLoss` applies its imputation and consistency
terms exactly as it does for the paper's RIHGCN family, and
:meth:`impute` serves the RQ2 protocol. Unlike RIHGCN there is no graph
convolution: the model isolates how far mask conditioning alone goes,
which is the comparison the missing-pattern gauntlet needs.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, default_dtype, no_grad, stack, where
from ..nn import GRUCell, Linear
from .base import ForecastOutput, NeuralForecaster
from .grud import compute_deltas

__all__ = ["MagiNetForecaster"]


class _MaskGatedPass:
    """One direction of the mask-conditioned recurrence (not a Module:
    the owner registers the layers; this just groups them)."""

    def __init__(self, num_features: int, embed_dim: int, hidden_dim: int, rng):
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        # Confidence gate from the missing pattern alone.
        self.gate = Linear(2 * num_features, num_features, rng=rng)
        # Mask-conditioned input encoding.
        self.encoder = Linear(2 * num_features, embed_dim, rng=rng)
        self.cell = GRUCell(embed_dim, hidden_dim, rng=rng)
        self.estimate_head = Linear(hidden_dim, num_features, rng=rng)

    def layers(self) -> dict:
        return {
            "gate": self.gate,
            "encoder": self.encoder,
            "cell": self.cell,
            "estimate_head": self.estimate_head,
        }

    def forward(
        self,
        x: np.ndarray,
        m: np.ndarray,
        deltas: np.ndarray,
        reverse: bool,
    ) -> tuple[list[Tensor], list[Tensor | None]]:
        """Returns ``(hidden, estimates)`` per step.

        ``hidden[t]`` is the ``(B, N, H)`` state after consuming step
        ``t``; ``estimates[t]`` is the ``(B, N, D)`` estimate of ``X_t``
        produced by the *previous* step in this direction (``None`` at
        the boundary step that has no predecessor).
        """
        batch, steps, nodes, features = x.shape
        order = range(steps - 1, -1, -1) if reverse else range(steps)
        hidden: list[Tensor | None] = [None] * steps
        estimates: list[Tensor | None] = [None] * steps

        est_prev: Tensor | None = None
        state = None
        for t in order:
            x_t = Tensor(x[:, t].reshape(batch * nodes, features))
            m_np = m[:, t].reshape(batch * nodes, features)
            m_t = Tensor(m_np)
            d_t = Tensor(deltas[:, t].reshape(batch * nodes, features))
            gate = self.gate(concat([m_t, d_t], axis=-1)).sigmoid()
            if est_prev is None:
                x_comp = x_t  # zero-filled missing entries at the boundary
            else:
                x_comp = where(m_np > 0, x_t, gate * est_prev)
            s_t = self.encoder(concat([x_comp, m_t], axis=-1)).tanh()
            state = self.cell(s_t, state)
            hidden[t] = state.reshape(batch, nodes, self.hidden_dim)
            est_next = self.estimate_head(state)
            target_step = t - 1 if reverse else t + 1
            if 0 <= target_step < steps:
                estimates[target_step] = est_next.reshape(batch, nodes, features)
            est_prev = est_next
        return hidden, estimates


class MagiNetForecaster(NeuralForecaster):
    """Bidirectional mask-conditioned GRU forecaster with imputation heads."""

    uses_mask = True
    produces_estimates = True

    def __init__(
        self,
        input_length: int,
        output_length: int,
        num_nodes: int,
        num_features: int,
        output_features: int | None = None,
        embed_dim: int = 32,
        hidden_dim: int = 64,
        seed: int = 0,
    ):
        super().__init__(input_length, output_length, num_nodes, num_features,
                         output_features)
        rng = np.random.default_rng(seed)
        self.hidden_dim = hidden_dim
        self.forward_pass = _MaskGatedPass(num_features, embed_dim, hidden_dim, rng)
        self.backward_pass = _MaskGatedPass(num_features, embed_dim, hidden_dim, rng)
        for direction, pass_ in (("fwd", self.forward_pass),
                                 ("bwd", self.backward_pass)):
            for name, layer in pass_.layers().items():
                setattr(self, f"{direction}_{name}", layer)
        self.head = Linear(
            input_length * 2 * hidden_dim,
            output_length * self.output_features,
            rng=rng,
        )

    def forward(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> ForecastOutput:
        x = np.asanyarray(x, dtype=default_dtype())
        m = np.asanyarray(m, dtype=default_dtype())
        batch, steps, nodes, features = x.shape
        if steps != self.input_length:
            raise ValueError(f"expected {self.input_length} steps, got {steps}")
        # Time since last observation, per direction, normalized so the
        # gate sees O(1) inputs regardless of window length.
        deltas_fwd = compute_deltas(m) / max(steps, 1)
        deltas_bwd = compute_deltas(m[:, ::-1])[:, ::-1] / max(steps, 1)

        h_fwd, est_fwd = self.forward_pass.forward(x, m, deltas_fwd, reverse=False)
        h_bwd, est_bwd = self.backward_pass.forward(x, m, deltas_bwd, reverse=True)

        z = concat(
            [stack(h_fwd, axis=1), stack(h_bwd, axis=1)], axis=-1
        )  # (B, T, N, 2H)
        z_nodes = z.transpose(0, 2, 1, 3).reshape(
            batch, nodes, steps * 2 * self.hidden_dim
        )
        prediction = self.head(z_nodes).reshape(
            batch, nodes, self.output_length, self.output_features
        ).transpose(0, 2, 1, 3)

        zero = Tensor(np.zeros((batch, nodes, features), dtype=default_dtype()))
        fwd_stack = stack([e if e is not None else zero for e in est_fwd], axis=1)
        bwd_stack = stack([e if e is not None else zero for e in est_bwd], axis=1)
        validity = np.array(
            [1.0 if f is not None and b is not None else 0.0
             for f, b in zip(est_fwd, est_bwd)]
        )
        return ForecastOutput(
            prediction=prediction,
            estimates_fwd=fwd_stack,
            estimates_bwd=bwd_stack,
            estimate_validity=validity,
        )

    # ------------------------------------------------------------------
    def impute(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> np.ndarray:
        """Fill missing history entries (RQ2 protocol).

        Observed entries pass through; missing entries take the mean of
        the direction estimates that exist at that step (the boundary
        steps have only one).
        """
        with no_grad():
            out = self.forward(x, m, steps_of_day)
        fwd = out.estimates_fwd.data
        bwd = out.estimates_bwd.data
        steps = x.shape[1]
        fwd_valid = np.array([t > 0 for t in range(steps)], dtype=default_dtype())
        bwd_valid = np.array(
            [t < steps - 1 for t in range(steps)], dtype=default_dtype()
        )
        weight_f = fwd_valid[None, :, None, None]
        weight_b = bwd_valid[None, :, None, None]
        denom = np.maximum(weight_f + weight_b, 1.0)
        estimate = (fwd * weight_f + bwd * weight_b) / denom
        m = np.asanyarray(m, dtype=default_dtype())
        return m * np.asanyarray(x) + (1.0 - m) * estimate
