"""GRU-D-style decay forecaster (Che et al., 2018 — the "RNNs for missing
data" family the paper's related work contrasts against).

Instead of recurrent imputation, GRU-D conditions the recurrence on the
missing pattern directly through two learned exponential decays:

* **input decay**: a missing input is replaced by a mixture of the last
  observed value and the (scaled-space) mean, with the mixing weight
  decaying in the time since the last observation:
  ``x̃ = m ⊙ x + (1-m) ⊙ (γ_x ⊙ x_last)`` with
  ``γ_x = exp(-relu(w_x ⊙ δ))`` (the empirical mean is 0 after Z-score);
* **hidden decay**: the hidden state fades toward zero over unobserved
  spans: ``h ← γ_h ⊙ h`` with ``γ_h = exp(-relu(W_h δ))``.

The GRU input concatenates ``[x̃ ; m]``, and the usual FC head aggregates
hidden states into the multistep forecast. Not part of the paper's
comparison set; provided as a stronger learned-missingness baseline.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, default_dtype, stack
from ..nn import GRUCell, Linear, Parameter, init
from .base import ForecastOutput, NeuralForecaster

__all__ = ["GRUDForecaster", "compute_deltas", "forward_fill_last"]


def compute_deltas(mask: np.ndarray) -> np.ndarray:
    """Time since the last observation, per entry.

    ``mask``: ``(B, T, N, D)``; returns ``delta`` of the same shape where
    ``delta[:, t]`` is the number of steps since the entry was last
    observed (counting from the previous step, so an entry observed at
    ``t-1`` has delta 1; the first step has delta 0 by convention).
    """
    mask = np.asarray(mask)
    batch, steps = mask.shape[:2]
    delta = np.zeros_like(mask, dtype=default_dtype())
    for t in range(1, steps):
        delta[:, t] = np.where(
            mask[:, t - 1] > 0, 1.0, delta[:, t - 1] + 1.0
        )
    return delta


def forward_fill_last(x: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Per entry, the most recently observed value (0 before the first)."""
    x = np.asarray(x, dtype=default_dtype())
    mask = np.asarray(mask)
    out = np.zeros_like(x)
    carried = np.zeros_like(x[:, 0])
    for t in range(x.shape[1]):
        carried = np.where(mask[:, t] > 0, x[:, t], carried)
        out[:, t] = carried
    return out


class GRUDForecaster(NeuralForecaster):
    """Decay-based forecaster over incomplete windows."""

    uses_mask = True

    def __init__(
        self,
        input_length: int,
        output_length: int,
        num_nodes: int,
        num_features: int,
        output_features: int | None = None,
        hidden_dim: int = 64,
        seed: int = 0,
    ):
        super().__init__(input_length, output_length, num_nodes, num_features,
                         output_features)
        rng = np.random.default_rng(seed)
        self.hidden_dim = hidden_dim
        # Input decay: one rate per feature; hidden decay: delta summary -> H.
        self.input_decay = Parameter(init.uniform((num_features,), rng, 0.0, 0.2))
        self.hidden_decay = Parameter(
            init.xavier_uniform((num_features, hidden_dim), rng)
        )
        self.cell = GRUCell(2 * num_features, hidden_dim, rng=rng)
        self.head = Linear(
            input_length * hidden_dim, output_length * self.output_features,
            rng=rng,
        )

    def forward(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> ForecastOutput:
        x = np.asanyarray(x, dtype=default_dtype())
        m = np.asanyarray(m, dtype=default_dtype())
        batch, steps, nodes, features = x.shape
        if steps != self.input_length:
            raise ValueError(f"expected {self.input_length} steps, got {steps}")
        deltas = compute_deltas(m)
        last_values = forward_fill_last(x, m)

        h = None
        outputs = []
        for t in range(steps):
            delta_t = Tensor(deltas[:, t].reshape(batch * nodes, features))
            m_t = Tensor(m[:, t].reshape(batch * nodes, features))
            x_t = Tensor(x[:, t].reshape(batch * nodes, features))
            last_t = Tensor(last_values[:, t].reshape(batch * nodes, features))

            # Input decay toward the scaled-space mean (zero).
            gamma_x = (-(delta_t * self.input_decay.relu())).exp()
            x_tilde = m_t * x_t + (1.0 - m_t) * (gamma_x * last_t)
            # Hidden decay from the delta pattern.
            if h is not None:
                gamma_h = (-(delta_t.matmul(self.hidden_decay)).relu()).exp()
                h = h * gamma_h
            h = self.cell(concat([x_tilde, m_t], axis=-1), h)
            outputs.append(h.reshape(batch, nodes, self.hidden_dim))

        z = stack(outputs, axis=1)  # (B, T, N, H)
        z_nodes = z.transpose(0, 2, 1, 3).reshape(
            batch, nodes, steps * self.hidden_dim
        )
        prediction = self.head(z_nodes).reshape(
            batch, nodes, self.output_length, self.output_features
        ).transpose(0, 2, 1, 3)
        return ForecastOutput(prediction=prediction)
