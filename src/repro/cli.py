"""Command-line interface for the reproduction experiments.

Usage::

    python -m repro.cli table1-missing --rates 0.4 0.8 --epochs 10
    python -m repro.cli table1-horizon --missing-rate 0.8
    python -m repro.cli table2
    python -m repro.cli imputation --rates 0.4
    python -m repro.cli fig4 --graphs 2 4 8
    python -m repro.cli fig5 --lambdas 0.001 1 20
    python -m repro.cli --scale full table1-missing   # paper-closer scale
    python -m repro.cli export --model RIHGCN --output artifacts/rihgcn
    python -m repro.cli plan --bundle artifacts/rihgcn --verify
    python -m repro.cli quantize --bundle artifacts/rihgcn --mode int8 --gate 1
    python -m repro.cli serve --bundle artifacts/rihgcn --port 8787 --trace-sample 0.1
    python -m repro.cli chaos --bundle artifacts/rihgcn --error-rate 0.05
    python -m repro.cli traces http://127.0.0.1:8787 --limit 5 --critical-path
    python -m repro.cli slo http://127.0.0.1:8787
    python -m repro.cli slo-smoke --bundle artifacts/rihgcn --report slo.json
    python -m repro.cli cluster --bundle artifacts/gcnlstm --shards 2
    python -m repro.cli cluster-smoke --shards 2 --report smoke.json

Every subcommand prints the corresponding paper table/figure rows. The
``--scale`` flag trades fidelity for speed (fast/small/full); individual
knobs (nodes, days, epochs, models) can override it.
"""

from __future__ import annotations

import argparse
import os
import sys

from .experiments import (
    ALL_MODEL_NAMES,
    DataConfig,
    ModelConfig,
    default_trainer_config,
    run_fig4,
    run_fig5,
    run_imputation_study,
    run_table1_horizons,
    run_table1_missing_rates,
    run_table2,
)

_SCALES = {
    "fast": dict(num_nodes=6, num_days=4, stride=6, embed=8, hidden=16,
                 graphs=3, epochs=4),
    "small": dict(num_nodes=10, num_days=6, stride=3, embed=16, hidden=32,
                  graphs=4, epochs=10),
    "full": dict(num_nodes=16, num_days=10, stride=1, embed=32, hidden=64,
                 graphs=4, epochs=30),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RIHGCN reproduction experiments"
    )
    parser.add_argument("--scale", choices=sorted(_SCALES), default="small",
                        help="preset size/epoch budget")
    parser.add_argument("--nodes", type=int, help="override sensor count")
    parser.add_argument("--days", type=int, help="override day count")
    parser.add_argument("--epochs", type=int, help="override training epochs")
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_models_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--models", nargs="+", metavar="NAME", default=None,
            help=f"model subset (default: all of {ALL_MODEL_NAMES})",
        )

    p = sub.add_parser("table1-missing", help="Table I upper: error vs missing rate")
    p.add_argument("--rates", type=float, nargs="+", default=[0.2, 0.4, 0.6, 0.8])
    add_models_flag(p)

    p = sub.add_parser("table1-horizon", help="Table I lower: error vs horizon")
    p.add_argument("--missing-rate", type=float, default=0.8)
    add_models_flag(p)

    p = sub.add_parser("table2", help="Table II: Stampede roving sensors")
    add_models_flag(p)

    p = sub.add_parser("imputation", help="RQ2: imputation comparison")
    p.add_argument("--rates", type=float, nargs="+", default=[0.4, 0.8])

    p = sub.add_parser("fig4", help="Figure 4: number of temporal graphs")
    p.add_argument("--graphs", type=int, nargs="+", default=[2, 4, 8, 16])

    p = sub.add_parser("fig5", help="Figure 5: imputation-loss weight")
    p.add_argument("--lambdas", type=float, nargs="+",
                   default=[0.0001, 0.01, 1.0, 5.0, 20.0])

    p = sub.add_parser(
        "gauntlet",
        help="missing-pattern gauntlet: model x scenario x rate grid "
             "(--smoke validates the committed BENCH record; see docs/MISSING.md)",
    )
    add_models_flag(p)
    p.add_argument("--rates", type=float, nargs="+", default=None,
                   help="target missing rates (default: 0.3 0.6)")
    p.add_argument("--smoke", action="store_true",
                   help="validate the committed record and gate regressions "
                        "instead of running the full grid")
    p.add_argument("--record", type=str,
                   default="benchmarks/BENCH_missing_gauntlet.json",
                   help="committed gauntlet record (for --smoke)")
    p.add_argument("--emit", type=str, default=None,
                   help="write the grid as a JSON record to this path")
    p.add_argument("--report", type=str, default=None,
                   help="write the smoke report JSON to this path")

    p = sub.add_parser(
        "profile",
        help="train one model briefly; print op hotspots, write a JSONL run record",
    )
    p.add_argument("--model", default="RIHGCN", help="registered neural model name")
    p.add_argument("--missing-rate", type=float, default=0.4)
    p.add_argument("--profile-epoch", type=int, default=1,
                   help="epoch to run the op profiler on (default: second epoch)")
    p.add_argument("--top", type=int, default=15, help="hotspot rows to print")
    p.add_argument("--run-record", type=str, default="runs/profile.jsonl",
                   help="JSONL run-record path")

    p = sub.add_parser(
        "export",
        help="train a model and write a serving bundle (.npz + .json header)",
    )
    p.add_argument("--model", default="RIHGCN", help="registered neural model name")
    p.add_argument("--missing-rate", type=float, default=0.4)
    p.add_argument("--output", type=str, default=None,
                   help="bundle base path (default: artifacts/<model>-<scale>)")
    p.add_argument("--skip-training", action="store_true",
                   help="export with freshly initialised weights (smoke tests)")

    p = sub.add_parser(
        "plan",
        help="trace a bundle's forward into an execution plan; print "
             "compile stats (see docs/PERFORMANCE.md)",
    )
    p.add_argument("--bundle", required=True, help="bundle base path from 'export'")
    p.add_argument("--batch", type=int, default=1,
                   help="batch rows to trace the plan for")
    p.add_argument("--verify", action="store_true",
                   help="replay the plan on fresh inputs and require bitwise "
                        "equality with the eager forward (exit 1 on mismatch)")

    p = sub.add_parser(
        "quantize",
        help="re-write a bundle with int8/float16 weights "
             "(see docs/PERFORMANCE.md)",
    )
    p.add_argument("--bundle", required=True,
                   help="float bundle base path from 'export'")
    p.add_argument("--output", type=str, default=None,
                   help="quantized bundle base path (default: <bundle>-<mode>)")
    p.add_argument("--mode", choices=["int8", "float16"], default="int8")
    p.add_argument("--gate", type=float, default=1.0,
                   help="max relative MAE drift vs the float bundle, in "
                        "percent (negative disables the gate)")

    def add_resilience_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--deadline-s", type=float, default=None,
                       help="per-request time budget in seconds")
        p.add_argument("--retry-attempts", type=int, default=None,
                       help="model-forward attempts incl. the first (1 = off)")
        p.add_argument("--no-breaker", action="store_true",
                       help="disable the model-forward circuit breaker")
        p.add_argument("--no-fallback", action="store_true",
                       help="turn degraded answers into plain errors")
        p.add_argument("--max-queue-depth", type=int, default=None,
                       help="bound on queued forecasts (0 = unbounded)")

    def add_observability_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--no-slo", action="store_true",
                       help="disable the SLO burn-rate engine and /slo")
        p.add_argument("--slo-latency-ms", type=float, default=None,
                       help="latency objective threshold (default 250ms)")
        p.add_argument("--profile-hz", type=float, default=None,
                       help="continuous-profiler sample rate (0 = off)")
        p.add_argument("--exemplars", action="store_true",
                       help="attach trace-id exemplars to /metrics buckets")

    p = sub.add_parser(
        "serve",
        help="serve forecasts from a bundle over HTTP (see docs/SERVING.md)",
    )
    p.add_argument("--bundle", required=True, help="bundle base path from 'export'")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="TCP port; 0 picks an ephemeral port (printed on start)")
    p.add_argument("--max-batch-size", type=int, default=8,
                   help="requests fused per forward pass (1 = sequential)")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="how long a forming batch waits for followers")
    p.add_argument("--trace-sample", type=float, default=0.0,
                   help="request-trace sampling rate in [0, 1] (0 = off)")
    p.add_argument("--trace-export", type=str, default=None,
                   help="append finished spans to this JSONL file")
    p.add_argument("--no-plan", action="store_true",
                   help="disable traced execution plans (eager forwards only)")
    add_resilience_flags(p)
    add_observability_flags(p)

    p = sub.add_parser(
        "chaos",
        help="soak a bundle's serving path under seeded fault injection "
             "(see docs/RELIABILITY.md)",
    )
    p.add_argument("--bundle", required=True, help="bundle base path from 'export'")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent closed-loop clients")
    p.add_argument("--requests", type=int, default=50,
                   help="observe+forecast rounds per client")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="fault-stream seed (same seed = same faults)")
    p.add_argument("--latency-rate", type=float, default=0.1,
                   help="share of model forwards hit by a latency spike")
    p.add_argument("--latency-ms", type=float, default=50.0,
                   help="injected latency per spike")
    p.add_argument("--error-rate", type=float, default=0.05,
                   help="share of model forwards that throw")
    p.add_argument("--corrupt-rate", type=float, default=0.0,
                   help="share of forwards with NaN-poisoned output")
    p.add_argument("--drop-sensors", type=int, nargs="*", default=[],
                   help="sensor ids whose readings vanish in flight")
    p.add_argument("--drop-scenario", type=str, default=None,
                   help="named MissingPattern scenario JSON (inline string or "
                        "a file path) driving the sensor drops — the same "
                        "vocabulary as 'repro gauntlet' (see docs/MISSING.md); "
                        "overrides --drop-sensors")
    p.add_argument("--availability-target", type=float, default=0.99,
                   help="minimum non-5xx share; below this exits non-zero")
    add_resilience_flags(p)

    p = sub.add_parser(
        "fleet",
        help="serve a multi-tenant fleet from a JSON manifest "
             "(see docs/FLEET.md)",
    )
    p.add_argument("--manifest", required=True,
                   help="fleet manifest path from save_fleet_manifest")
    p.add_argument("--trace-sample", type=float, default=0.0,
                   help="request-trace sampling rate in [0, 1] (0 = off)")
    p.add_argument("--trace-export", type=str, default=None,
                   help="append finished spans to this JSONL file")

    p = sub.add_parser(
        "fleet-smoke",
        help="boot a two-tenant pool and exercise shadow/canary/quota "
             "end to end (CI gate; see docs/FLEET.md)",
    )
    p.add_argument("--bundle-a", required=True,
                   help="stable bundle base path from 'export'")
    p.add_argument("--bundle-b", required=True,
                   help="candidate bundle base path from 'export'")
    p.add_argument("--rounds", type=int, default=120,
                   help="observe+forecast rounds per tenant and phase")
    p.add_argument("--report", type=str, default=None,
                   help="also write the JSON report to this path")

    p = sub.add_parser(
        "cluster",
        help="serve a bundle from an N-worker sharded cluster "
             "(see docs/CLUSTER.md)",
    )
    p.add_argument("--bundle", required=True, help="bundle base path from 'export'")
    p.add_argument("--shards", type=int, default=2, help="worker process count")
    p.add_argument("--halo-hops", type=int, default=None,
                   help="halo ring depth (default: the model's receptive field)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="router TCP port; 0 picks an ephemeral port")
    p.add_argument("--shard-deadline-s", type=float, default=2.0,
                   help="per-shard scatter-gather deadline in seconds")
    p.add_argument("--salt", default="",
                   help="consistent-hash ring salt (changes region placement)")

    p = sub.add_parser(
        "cluster-smoke",
        help="identity control + seeded kill-one-shard chaos over a "
             "2-worker cluster (CI gate; see docs/CLUSTER.md)",
    )
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--requests", type=int, default=60,
                   help="load requests per chaos phase")
    p.add_argument("--no-chaos", action="store_true",
                   help="identity control only, skip the kill/restart phase")
    p.add_argument("--in-process", action="store_true",
                   help="simulate workers in-process instead of spawning")
    p.add_argument("--availability-target", type=float, default=0.99,
                   help="minimum 2xx share under chaos; below this exits non-zero")
    p.add_argument("--report", type=str, default=None,
                   help="also write the JSON report to this path")

    p = sub.add_parser(
        "traces",
        help="pretty-print traces from a running server or a JSONL export",
    )
    p.add_argument("source",
                   help="http(s)://host:port of a server, or a JSONL span file")
    p.add_argument("--limit", type=int, default=None,
                   help="only the most recent N traces")
    p.add_argument("--critical-path", action="store_true",
                   help="append per-trace critical-path phase attribution")

    p = sub.add_parser(
        "slo",
        help="print SLO budget/burn status from a server's /slo endpoint",
    )
    p.add_argument("source", help="http(s)://host:port of a server or router")
    p.add_argument("--json", action="store_true",
                   help="dump the raw /slo payload instead of the table")

    p = sub.add_parser(
        "slo-smoke",
        help="seeded-fault SLO exercise: a burn event must fire, clear, "
             "and gate a canary (CI gate; see docs/OBSERVABILITY.md)",
    )
    p.add_argument("--bundle", required=True,
                   help="bundle base path from 'export'")
    p.add_argument("--rounds", type=int, default=30,
                   help="observe+forecast rounds per phase")
    p.add_argument("--report", type=str, default=None,
                   help="also write the JSON report to this path")

    p = sub.add_parser("report", help="run everything, emit a Markdown report")
    p.add_argument("--output", type=str, default="-",
                   help="output file path, or '-' for stdout")
    p.add_argument("--skip", nargs="+", default=[],
                   choices=["table1-missing", "table1-horizon", "table2",
                            "imputation", "fig4", "fig5"],
                   help="experiments to leave out")
    add_models_flag(p)
    return parser


def _configs(args) -> tuple[DataConfig, ModelConfig, object]:
    preset = _SCALES[args.scale]
    data = DataConfig(
        dataset="pems",
        num_nodes=args.nodes or preset["num_nodes"],
        num_days=args.days or preset["num_days"],
        stride=preset["stride"],
        seed=args.seed,
    )
    model = ModelConfig(
        embed_dim=preset["embed"],
        hidden_dim=preset["hidden"],
        num_graphs=preset["graphs"],
        seed=args.seed,
    )
    trainer = default_trainer_config(max_epochs=args.epochs or preset["epochs"])
    return data, model, trainer


def _load_traces(source: str, limit: int | None) -> list[dict]:
    """Fetch traces from ``/traces`` or regroup a JSONL span export."""
    import json

    if source.startswith("http://") or source.startswith("https://"):
        from urllib.request import urlopen

        url = source.rstrip("/") + "/traces"
        if limit is not None:
            url += f"?limit={limit}"
        with urlopen(url) as response:
            return json.load(response)["traces"]

    grouped: dict[str, list[dict]] = {}
    order: list[str] = []
    with open(source, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            span = json.loads(line)
            trace_id = span["trace_id"]
            if trace_id not in grouped:
                grouped[trace_id] = []
                order.append(trace_id)
            grouped[trace_id].append(span)
    traces = [
        {"trace_id": trace_id,
         "spans": sorted(grouped[trace_id], key=lambda s: s["start"])}
        for trace_id in reversed(order)  # most recently started trace first
    ]
    if limit is not None:
        traces = traces[: max(limit, 0)]
    return traces


def _fetch_json(source: str, route: str) -> dict:
    import json
    from urllib.request import urlopen

    with urlopen(source.rstrip("/") + route) as response:
        return json.load(response)


def _render_slo(payload: dict) -> str:
    """Render a ``GET /slo`` payload as the operator-facing table."""
    snapshot = payload.get("slo", payload)
    lines = []
    burning = snapshot.get("burning", [])
    lines.append(
        "SLO status: "
        + (f"BURNING ({', '.join(burning)})" if burning else "all budgets ok")
    )
    for name, entry in snapshot.get("objectives", {}).items():
        objective = entry["objective"]
        left = entry["budget_remaining"]
        total = entry["good_total"] + entry["bad_total"]
        rule_bits = []
        for rule in entry["rules"]:
            flag = "!" if rule["burning"] else ""
            rule_bits.append(
                f"{rule['rule']} {rule['burn_short']:.1f}x/"
                f"{rule['burn_long']:.1f}x{flag}"
            )
        lines.append(
            f"  {name:<16} target {objective['target']:.2%}  "
            f"budget left {left:7.1%}  events {total}  "
            f"burn {'; '.join(rule_bits)}"
        )
        for event in entry.get("active_burns", []):
            lines.append(
                f"    firing: rule {event['rule']} at "
                f"{event['burn_short']:.1f}x (threshold {event['threshold']:g}x)"
            )
    canaries = payload.get("canaries", {})
    if canaries:
        lines.append("canary rollouts:")
        for tenant, entry in canaries.items():
            reason = f" — {entry['reason']}" if entry.get("reason") else ""
            lines.append(f"  {tenant}: {entry['state']}{reason}")
            slo = entry.get("slo") or {}
            fired = slo.get("burn_events_total", 0)
            if fired:
                lines.append(f"    burn events fired: {fired}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    data_cfg, model_cfg, trainer_cfg = _configs(args)
    models = getattr(args, "models", None)

    if args.command == "table1-missing":
        result = run_table1_missing_rates(
            models=models, missing_rates=args.rates, data_config=data_cfg,
            model_config=model_cfg, trainer_config=trainer_cfg, verbose=True,
        )
        print()
        print(result.render("Table I (upper): PeMS by missing rate"))
    elif args.command == "table1-horizon":
        result = run_table1_horizons(
            models=models, missing_rate=args.missing_rate,
            data_config=data_cfg, model_config=model_cfg,
            trainer_config=trainer_cfg, verbose=True,
        )
        print()
        print(result.render(
            f"Table I (lower): PeMS @ {args.missing_rate:.0%} missing by horizon"
        ))
    elif args.command == "table2":
        from dataclasses import replace

        stampede_cfg = replace(data_cfg, dataset="stampede", missing_rate=None,
                               num_days=max(data_cfg.num_days, 10))
        result = run_table2(
            models=models, data_config=stampede_cfg, model_config=model_cfg,
            trainer_config=trainer_cfg, verbose=True,
        )
        print()
        print(result.render("Table II: Stampede by horizon"))
    elif args.command == "imputation":
        result = run_imputation_study(
            missing_rates=args.rates, data_config=data_cfg,
            model_config=model_cfg, trainer_config=trainer_cfg, verbose=True,
        )
        print()
        print(result.render())
    elif args.command == "fig4":
        result = run_fig4(
            graph_counts=args.graphs, data_config=data_cfg,
            model_config=model_cfg, trainer_config=trainer_cfg, verbose=True,
        )
        print()
        print(result.render())
    elif args.command == "fig5":
        result = run_fig5(
            lambdas=args.lambdas, data_config=data_cfg,
            model_config=model_cfg, trainer_config=trainer_cfg, verbose=True,
        )
        print()
        print(result.render())
    elif args.command == "gauntlet":
        import json
        import platform
        import time

        from .experiments import run_gauntlet_smoke, run_missing_gauntlet

        if args.smoke:
            print(f"gauntlet smoke against {args.record}")
            report = run_gauntlet_smoke(
                args.record, data_config=data_cfg, model_config=model_cfg,
                trainer_config=trainer_cfg, verbose=True,
            )
            if args.report:
                with open(args.report, "w", encoding="utf-8") as handle:
                    json.dump(report, handle, indent=2, default=str)
                print(f"report written to {args.report}")
            print(f"verdict: {'PASS' if report['passed'] else 'FAIL'}")
            if not report["passed"]:
                return 1
        else:
            result = run_missing_gauntlet(
                models=models, rates=args.rates, data_config=data_cfg,
                model_config=model_cfg, trainer_config=trainer_cfg,
                verbose=True,
            )
            print()
            print(result.render())
            if args.emit:
                record = {
                    "bench": "missing_gauntlet",
                    "scale": args.scale,
                    "unix_time": time.time(),
                    "python": platform.python_version(),
                    "machine": platform.machine(),
                }
                record.update(result.to_payload())
                out_dir = os.path.dirname(args.emit)
                if out_dir:
                    os.makedirs(out_dir, exist_ok=True)
                with open(args.emit, "w", encoding="utf-8") as handle:
                    json.dump(record, handle, indent=2)
                    handle.write("\n")
                print(f"record written to {args.emit}")
    elif args.command == "profile":
        from dataclasses import replace

        from .experiments import build_model, is_statistical, prepare_context
        from .telemetry import EpochLogger, JSONLRunRecorder, Profiler
        from .training import Trainer

        if is_statistical(args.model):
            print(f"{args.model} is a closed-form baseline; nothing to profile",
                  file=sys.stderr)
            return 2
        ctx = prepare_context(
            replace(data_cfg, missing_rate=args.missing_rate), model_cfg
        )
        model = build_model(args.model, ctx)
        trainer = Trainer(model, trainer_cfg)
        profiler = Profiler(epoch=args.profile_epoch, top=args.top)
        recorder = JSONLRunRecorder(
            args.run_record,
            extra={"dataset": data_cfg.dataset, "missing_rate": args.missing_rate,
                   "command": "profile"},
        )
        print(f"profiling {args.model}: {trainer_cfg.max_epochs} epochs, "
              f"{ctx.train_windows.num_windows} train windows, "
              f"missing rate {args.missing_rate:.0%}")
        history = trainer.fit(
            ctx.train_windows, ctx.val_windows,
            callbacks=[EpochLogger(), recorder, profiler],
        )
        print()
        print(f"op hotspots (epoch {min(args.profile_epoch, history.num_epochs - 1)}, "
              f"sorted by total seconds):")
        print(profiler.report_text or "(no ops recorded)")
        print()
        print(f"run record appended to {args.run_record} "
              f"(run_id={recorder.run_id}, {history.num_epochs} epochs)")
    elif args.command == "export":
        from dataclasses import replace

        from .experiments import build_model, is_statistical, prepare_context
        from .serve import export_bundle
        from .training import Trainer

        if is_statistical(args.model):
            print(f"{args.model} is a closed-form baseline; bundles cover the "
                  f"neural registry", file=sys.stderr)
            return 2
        ctx = prepare_context(
            replace(data_cfg, missing_rate=args.missing_rate), model_cfg
        )
        model = build_model(args.model, ctx)
        if args.skip_training:
            print(f"exporting {args.model} with untrained weights (--skip-training)")
        else:
            print(f"training {args.model}: {trainer_cfg.max_epochs} epochs, "
                  f"{ctx.train_windows.num_windows} train windows")
            history = Trainer(model, trainer_cfg).fit(
                ctx.train_windows, ctx.val_windows
            )
            print(f"trained {history.num_epochs} epochs, "
                  f"final val loss {history.val_loss[-1]:.4f}")
        output = args.output or f"artifacts/{args.model.replace(' ', '-')}-{args.scale}"
        out_dir = os.path.dirname(output)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        header_path = export_bundle(model, args.model, ctx, output)
        print(f"bundle written to {header_path} "
              f"(+ {os.path.basename(output)}.npz)")
    elif args.command == "plan":
        import numpy as np

        from .autodiff import PlanUnsupported, default_dtype, inference_mode, trace
        from .serve import load_bundle

        bundle = load_bundle(args.bundle)
        model = bundle.model
        rng = np.random.default_rng(args.seed)
        dtype = default_dtype()
        shape = (args.batch, bundle.input_length, bundle.num_nodes,
                 bundle.num_features)
        steps_per_day = bundle.data_config.steps_per_day
        day_steps = (int(rng.integers(0, steps_per_day))
                     + np.arange(bundle.input_length)) % steps_per_day
        steps = np.broadcast_to(
            day_steps, (args.batch, bundle.input_length)
        ).copy()

        def draw():
            m = (rng.random(shape) >= 0.2).astype(dtype)
            x = rng.standard_normal(shape).astype(dtype) * m
            return x, m

        x, m = draw()
        split = model.plan_inputs(x, m, steps)
        if split is None:
            print(f"{bundle.model_name} does not implement traced plans; "
                  "serving stays on the eager path")
            return 2
        inputs, signature = split
        try:
            plan, _ = trace(model.plan_forward, inputs)
        except PlanUnsupported as error:
            print(f"plan unsupported, serving falls back to eager: {error}")
            return 2
        print(f"{bundle.model_name}: plan compiled for batch {args.batch}"
              + (f", signature {signature}" if signature else ""))
        for key, value in plan.stats.as_dict().items():
            print(f"  {key:<20} {value}")
        if args.verify:
            x2, m2 = draw()
            inputs2, signature2 = model.plan_inputs(x2, m2, steps)
            if signature2 != signature:
                print("verify: fresh draw changed the plan signature; "
                      "a server would retrace instead of replaying")
                return 1
            replayed = plan.replay(inputs2)
            with inference_mode():
                eager = np.asarray(model.plan_forward(**inputs2))
            if replayed.dtype == eager.dtype and np.array_equal(
                replayed, eager, equal_nan=True
            ):
                print("verify: PASS (replay bitwise-equal to the eager forward)")
            else:
                diff = np.max(np.abs(
                    replayed.astype(np.float64) - eager.astype(np.float64)
                ))
                print(f"verify: FAIL (max |diff| {diff:.3e})")
                return 1
    elif args.command == "quantize":
        from .errors import QuantizationError
        from .serve import quantization_mae_drift, quantize_bundle

        output = args.output or f"{args.bundle}-{args.mode}"
        gate = None if args.gate < 0 else args.gate / 100.0
        try:
            header_path = quantize_bundle(
                args.bundle, output, mode=args.mode, gate=gate, seed=args.seed
            )
        except QuantizationError as error:
            print(f"quantization failed: {error}", file=sys.stderr)
            return 1
        src_npz = args.bundle if args.bundle.endswith(".npz") else args.bundle + ".npz"
        out_npz = output if output.endswith(".npz") else output + ".npz"
        shrink = os.path.getsize(src_npz) / max(os.path.getsize(out_npz), 1)
        print(f"quantized bundle written to {header_path} "
              f"({args.mode}, {shrink:.2f}x smaller arrays)")
        if gate is not None:
            drift = quantization_mae_drift(args.bundle, output, seed=args.seed)
            print(f"relative MAE drift vs float32: {drift:.4%} "
                  f"(gate {gate:.2%})")
    elif args.command == "serve":
        from .serve import ServeApp, ServeConfig, load_bundle, run_server
        from .telemetry import Tracer, set_tracer

        config = ServeConfig.from_args(args)
        bundle = load_bundle(args.bundle)
        print(f"loaded {bundle.model_name} bundle: {bundle.num_nodes} nodes, "
              f"{bundle.num_features} features, window {bundle.input_length} "
              f"-> horizon {bundle.output_length}")
        tracer = Tracer(
            sample_rate=config.trace_sample, export_path=config.trace_export
        )
        set_tracer(tracer)  # callbacks and helpers share the server's tracer
        if config.trace_sample > 0:
            print(f"tracing {config.trace_sample:.0%} of requests"
                  + (f", exporting to {config.trace_export}"
                     if config.trace_export else ""))
        app = ServeApp(bundle, tracer=tracer, config=config)
        run_server(app)
    elif args.command == "chaos":
        from .reliability import FaultPlan
        from .serve import ServeConfig, load_bundle, make_chaos_app, run_chaos_soak

        config = ServeConfig.from_args(args)
        bundle = load_bundle(args.bundle)
        if args.drop_scenario:
            import json

            source = args.drop_scenario
            if os.path.exists(source):
                with open(source, encoding="utf-8") as handle:
                    source = handle.read()
            dropped = json.loads(source)
        else:
            dropped = tuple(args.drop_sensors)
        plan = FaultPlan(
            seed=args.chaos_seed,
            latency_rate=args.latency_rate,
            latency_s=args.latency_ms / 1e3,
            error_rate=args.error_rate,
            corrupt_rate=args.corrupt_rate,
            dropped_sensors=dropped,
        )
        print(f"chaos soak of {bundle.model_name}: {args.clients} clients x "
              f"{args.requests} rounds, plan {plan.to_json_dict()}")
        app, injector = make_chaos_app(bundle, plan, config=config)
        report = run_chaos_soak(
            app,
            num_clients=args.clients,
            requests_per_client=args.requests,
            seed=args.seed,
            injector=injector,
        )
        print(report.render())
        passed = (
            report.crashes == 0
            and report.availability >= args.availability_target
        )
        print(f"verdict: {'PASS' if passed else 'FAIL'} "
              f"(availability target {args.availability_target:.2%})")
        if not passed:
            return 1
    elif args.command == "fleet":
        from .serve import ServeApp, build_pool, load_fleet_manifest, run_server
        from .telemetry import Tracer, set_tracer

        fleet_cfg, base_dir = load_fleet_manifest(args.manifest)
        tracer = Tracer(
            sample_rate=args.trace_sample, export_path=args.trace_export
        )
        set_tracer(tracer)
        pool = build_pool(fleet_cfg, base_dir=base_dir, tracer=tracer)
        for name in pool.tenants():
            runtime = pool.runtime(name)
            print(f"tenant {name}: {runtime.bundle.model_name} "
                  f"({runtime.bundle_ref}), "
                  f"quota {'off' if runtime.quota is None else runtime.quota.snapshot()['rate_per_s']}")
        app = ServeApp(pool=pool, config=fleet_cfg.default)
        run_server(app)
    elif args.command == "fleet-smoke":
        import json

        from .serve import load_bundle, run_fleet_smoke

        bundle_a = load_bundle(args.bundle_a)
        bundle_b = load_bundle(args.bundle_b)
        print(f"fleet smoke: alpha={bundle_a.model_name} "
              f"beta={bundle_b.model_name}, {args.rounds} rounds per phase")
        report = run_fleet_smoke(
            bundle_a, bundle_b, rounds=args.rounds, seed=args.seed
        )
        for check, ok in report["checks"].items():
            print(f"  {'PASS' if ok else 'FAIL'}  {check}")
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, default=str)
            print(f"report written to {args.report}")
        print(f"verdict: {'PASS' if report['passed'] else 'FAIL'}")
        if not report["passed"]:
            return 1
    elif args.command == "cluster":
        from .graphs import shard_quality
        from .serve import bind_http, load_bundle
        from .serve.cluster import (
            ClusterConfig,
            ClusterSupervisor,
            build_plan,
            coupling_adjacency,
        )

        config = ClusterConfig(
            num_shards=args.shards,
            halo_hops=args.halo_hops,
            host=args.host,
            port=args.port,
            shard_deadline_s=args.shard_deadline_s,
            salt=args.salt,
        )
        bundle = load_bundle(args.bundle)
        plan = build_plan(bundle, config)
        quality = shard_quality(plan, coupling_adjacency(bundle))
        print(f"loaded {bundle.model_name} bundle: {bundle.num_nodes} nodes "
              f"-> {plan.num_shards} shards, halo {plan.halo_hops} hops")
        print(f"  owned per shard {quality['owned_sizes']}, "
              f"edge cut {quality['edge_cut']:.2%}, "
              f"replication x{quality['replication_factor']:.2f}")
        supervisor = ClusterSupervisor(args.bundle, plan, config=config)
        supervisor.start()
        try:
            for shard, port in enumerate(supervisor.ports):
                print(f"  shard {shard}: http://127.0.0.1:{port}")
            server = bind_http(supervisor.router, args.host, args.port)
            host, port = server.server_address[:2]
            print(f"cluster router listening on http://{host}:{port} "
                  f"(Ctrl-C to stop)")
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            supervisor.stop()
    elif args.command == "cluster-smoke":
        import json

        from .serve import run_cluster_smoke

        num_nodes = args.nodes or 48
        print(f"cluster smoke: {num_nodes} nodes x {args.shards} shards, "
              f"{'in-process' if args.in_process else 'worker processes'}, "
              f"chaos {'off' if args.no_chaos else 'on'}")
        report = run_cluster_smoke(
            num_nodes=num_nodes,
            num_shards=args.shards,
            seed=args.seed,
            chaos=not args.no_chaos,
            processes=not args.in_process,
            availability_floor=args.availability_target,
            requests_per_phase=args.requests,
        )
        identity = report["identity"]
        print(f"  identity max |diff| {identity['max_abs_diff']:.2e} "
              f"(tol {identity['tol']:.0e}, {identity['dtype']})")
        if "chaos" in report:
            chaos = report["chaos"]
            print(f"  chaos availability {chaos['availability']:.2%} "
                  f"(victim shard {chaos['victim']}, "
                  f"warmed from {chaos['warmed']})")
        for check, ok in report["checks"].items():
            print(f"  {'PASS' if ok else 'FAIL'}  {check}")
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, default=str)
            print(f"report written to {args.report}")
        print(f"verdict: {'PASS' if report['passed'] else 'FAIL'}")
        if not report["passed"]:
            return 1
    elif args.command == "traces":
        from .telemetry import format_trace

        for trace in _load_traces(args.source, args.limit):
            print(format_trace(trace, critical_path=args.critical_path))
            print()
    elif args.command == "slo":
        import json

        payload = _fetch_json(args.source, "/slo")
        if args.json:
            print(json.dumps(payload, indent=2, default=str))
        else:
            print(_render_slo(payload))
        burning = payload.get("slo", payload).get("burning", [])
        if burning:
            return 1
    elif args.command == "slo-smoke":
        import json

        from .serve import load_bundle, run_slo_smoke

        bundle = load_bundle(args.bundle)
        print(f"slo smoke: {bundle.model_name}, {args.rounds} rounds per phase")
        report = run_slo_smoke(bundle, rounds=args.rounds, seed=args.seed)
        print(f"  burn fired on: {report['burning_during_fault']}")
        if report["canary"] is not None:
            print(f"  canary: {report['canary']['state']} "
                  f"({report['canary']['reason']})")
        for check, ok in report["checks"].items():
            print(f"  {'PASS' if ok else 'FAIL'}  {check}")
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, default=str)
            print(f"report written to {args.report}")
        print(f"verdict: {'PASS' if report['passed'] else 'FAIL'}")
        if not report["passed"]:
            return 1
    elif args.command == "report":
        from .experiments import ReportConfig, generate_report

        skip = set(args.skip)
        report_cfg = ReportConfig(
            include_table1_missing="table1-missing" not in skip,
            include_table1_horizon="table1-horizon" not in skip,
            include_table2="table2" not in skip,
            include_imputation="imputation" not in skip,
            include_fig4="fig4" not in skip,
            include_fig5="fig5" not in skip,
            models=models,
            data=data_cfg,
            model=model_cfg,
            trainer=trainer_cfg,
        )
        text = generate_report(report_cfg)
        if args.output == "-":
            print(text)
        else:
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"report written to {args.output}")
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
