"""A small thread-safe LRU cache for forecast results.

Forecasts are pure functions of ``(state version, horizon)``, so between
two observations every repeated request can be answered without touching
the model. Deliberately tiny: an ``OrderedDict`` under a lock, with hit
and miss counters the ``/metrics`` endpoint exposes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable, default=None):
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
