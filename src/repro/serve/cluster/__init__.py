"""Sharded N-worker serving topology over the engine pool.

A :class:`~repro.graphs.ShardPlan` (consistent-hashed contiguous
regions + k-hop halos) assigns sensor nodes to shards; each shard runs
an :class:`~repro.serve.fleet.EnginePool`-backed
:class:`~.shard.ShardApp` over an exactly-sliced sub-model; a thin
:class:`~.router.ClusterRouter` front tier fans writes to holders,
scatter-gathers reads under per-shard deadlines, and fails over through
halo replicas, snapshot-warmed restarts and a stale-row cache.

See ``docs/CLUSTER.md`` for the topology diagram, halo semantics and
the failover walkthrough.
"""

from .config import ClusterConfig
from .demo import corridor_adjacency, make_demo_bundle
from .local import LocalCluster, build_plan, resolve_halo_hops
from .process import ClusterSupervisor, shard_worker_main
from .router import ClusterRouter, merge_prometheus
from .shard import ShardApp
from .sharding import (
    coupling_adjacency,
    make_shard_bundle,
    spatial_hops,
    translate_snapshot,
)
from .smoke import run_cluster_smoke
from .transport import HTTPShardClient, LocalShardClient, ShardUnavailable

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ClusterSupervisor",
    "HTTPShardClient",
    "LocalCluster",
    "LocalShardClient",
    "ShardApp",
    "ShardUnavailable",
    "build_plan",
    "corridor_adjacency",
    "coupling_adjacency",
    "make_demo_bundle",
    "make_shard_bundle",
    "merge_prometheus",
    "resolve_halo_hops",
    "run_cluster_smoke",
    "shard_worker_main",
    "spatial_hops",
    "translate_snapshot",
]
