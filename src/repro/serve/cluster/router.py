"""The cluster front tier: fan-out writes, scatter-gather reads.

The :class:`ClusterRouter` holds no model and no state — it owns the
:class:`~repro.graphs.ShardPlan`, one client per shard, one
:class:`~repro.reliability.CircuitBreaker` per shard, and a small
last-known-rows cache used as the final failover rung. Request routing:

* ``POST /observe`` — per-sensor bodies fan to **every holder** of the
  node (owner + halo replicas) so shard-local windows stay coherent;
  full-network bodies broadcast. Accepted if any holder acked; all
  holders down → 503.
* ``GET /forecast?node=N`` — owner first, then halo replicas (tagged
  ``failover``), then the router's stale row (tagged ``stale``).
* ``GET /forecast`` — scatter-gather of every shard's owned rows under
  per-shard deadlines; a dead shard's rows come from replicas retaining
  them, then the stale cache, then ``null`` (tagged ``partial``) — one
  shard down is a degraded 200, never a 500.
* ``GET /healthz`` / ``GET /metrics`` — aggregate across shards; shard
  series stay disjoint thanks to per-shard ``{shard="sN"}`` labels. A
  shard that fails its scrape mid-restart increments
  ``cluster_shard_scrape_failures_total{shard="sN"}`` and the merged
  exposition is served partial rather than erroring.
* ``GET /traces`` — merged traces: the router's own spans stitched with
  every live shard's ``/traces`` buffer into single cross-process trees
  (the router injects ``traceparent`` on every fan-out leg).
* ``GET /slo`` — the router-level SLO engine's burn/budget snapshot.
* ``GET /profile`` — collapsed-stack flame data merged across the
  router and every shard whose continuous profiler is on, each stack
  prefixed with its owning process label.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qs, urlparse

import numpy as np

from ...autodiff import default_dtype
from ...errors import ServeError
from ...graphs import ShardPlan
from ...reliability import Deadline
from ...telemetry import (
    ContinuousProfiler,
    MetricRegistry,
    SLOEngine,
    TraceCollector,
    Tracer,
    default_serving_objectives,
    extract_trace_context,
    inject_trace_context,
    merge_collapsed,
)
from ...telemetry.prometheus import render_prometheus
from ..http import PlainText, Response
from .config import ClusterConfig
from .transport import ShardUnavailable

__all__ = ["ClusterRouter", "merge_prometheus"]


def merge_prometheus(texts: list[str]) -> str:
    """Merge shard expositions: one HELP/TYPE per metric, all series.

    Series collisions cannot happen across healthy shards because every
    shard labels its series with its own ``shard="sN"`` — exact
    duplicate lines (e.g. re-scraped constants) are dropped anyway.
    """
    header_seen: set[str] = set()
    series_seen: set[str] = set()
    out: list[str] = []
    for text in texts:
        for line in text.splitlines():
            if line.startswith("# "):
                if line not in header_seen:
                    header_seen.add(line)
                    out.append(line)
            elif line:
                if line not in series_seen:
                    series_seen.add(line)
                    out.append(line)
    return "\n".join(out) + "\n" if out else ""


class ClusterRouter:
    """Thin stdlib front tier over the shard fleet."""

    def __init__(
        self,
        plan: ShardPlan,
        clients: list,
        config: ClusterConfig | None = None,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        if len(clients) != plan.num_shards:
            raise ValueError(
                f"need one client per shard: plan has {plan.num_shards}, "
                f"got {len(clients)}"
            )
        self.plan = plan
        self.clients = list(clients)
        self.config = config if config is not None else ClusterConfig(
            num_shards=plan.num_shards
        )
        self.registry = registry if registry is not None else MetricRegistry()
        serve = self.config.serve
        self.tracer = tracer if tracer is not None else Tracer(
            sample_rate=serve.trace_sample, service="router"
        )
        self.slo = (
            SLOEngine(default_serving_objectives(latency_ms=serve.slo_latency_ms))
            if serve.slo_enabled
            else None
        )
        self.profiler: ContinuousProfiler | None = None
        if serve.profile_hz > 0:
            self.profiler = ContinuousProfiler(
                interval_s=1.0 / serve.profile_hz, registry=self.registry
            ).start()
        policy = self.config.serve.resilience
        self.breakers = [
            policy.make_breaker(f"shard{s}", registry=self.registry)
            for s in range(plan.num_shards)
        ]
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, plan.num_shards),
            thread_name_prefix="cluster-router",
        )
        # Last good per-node forecast rows: the final failover rung when
        # no live shard holds a node. {node: (newest_step, [row, ...])}
        self._stale_rows: dict[int, tuple[int, list]] = {}
        self._stale_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        # wait=True: an in-flight fan-out task may be inside a shard
        # forward (which holds the global inference-mode flag); returning
        # while it runs would let it race a later training backward in
        # the same process. Deadlines bound how long this can block.
        self._executor.shutdown(wait=True, cancel_futures=True)
        if self.profiler is not None:
            self.profiler.stop()

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def retarget(self, shard: int, client) -> None:
        """Swap the client for ``shard`` (a restarted worker's address).

        The shard's breaker is rebuilt closed: the old one accumulated
        the dead worker's failures and would keep skipping the fresh one
        until its cool-off elapsed.
        """
        self.clients[shard] = client
        policy = self.config.serve.resilience
        self.breakers[shard] = policy.make_breaker(
            f"shard{shard}", registry=self.registry
        )

    # -- one guarded shard call ----------------------------------------
    def _call(
        self,
        shard: int,
        method: str,
        path: str,
        body: bytes | None = None,
        deadline: Deadline | None = None,
        parent=None,
        attributes: dict | None = None,
    ) -> Response | None:
        """One breaker-gated, deadline-clamped request; None on failure.

        With a trace parent (explicit, or the calling thread's current
        span) the hop runs under a ``shard_call`` span and the outgoing
        request carries ``traceparent``, stitching the shard's spans
        into the router's trace. Meta scrapes (/metrics, /traces, ...)
        have no parent and stay span-free.
        """
        breaker = self.breakers[shard]
        if breaker is not None and not breaker.allow():
            self.registry.counter(
                f'cluster/shard_skipped{{shard="s{shard}"}}'
            ).inc()
            return None
        timeout = self.config.shard_deadline_s
        if deadline is not None:
            timeout = deadline.clamp(timeout)
            if timeout <= 0:
                return None
        parent = parent if parent is not None else Tracer.current_context()
        if parent is not None:
            attrs = {"shard": f"s{shard}", "path": path.split("?", 1)[0]}
            if attributes:
                attrs.update(attributes)
            span_cm = self.tracer.span("shard_call", parent=parent, attributes=attrs)
        else:
            span_cm = contextlib.nullcontext()
        with span_cm as span:
            headers = (
                inject_trace_context(context=span.context)
                if span is not None
                else None
            )
            try:
                response = self.clients[shard].request(
                    method, path, body=body, timeout=timeout, headers=headers
                )
            except (ShardUnavailable, ServeError, OSError):
                if breaker is not None:
                    breaker.record_failure()
                self.registry.counter(
                    f'cluster/shard_errors{{shard="s{shard}"}}'
                ).inc()
                if span is not None:
                    span.status = "error"
                return None
            if breaker is not None:
                if response.status >= 500:
                    breaker.record_failure()
                else:
                    breaker.record_success()
            if span is not None:
                span.set_attribute("status", response.status)
                if response.status >= 500:
                    span.status = "error"
            return response

    def _fan(
        self,
        targets: list[int],
        method: str,
        path: str,
        body: bytes | None = None,
        attributes: dict | None = None,
    ) -> dict[int, Response | None]:
        """Issue one request per target shard concurrently.

        The caller's span context is captured *here*, on the request
        thread — the executor threads do not inherit the contextvar, so
        each ``_call`` gets the parent passed explicitly.
        """
        parent = Tracer.current_context()
        deadline = Deadline(self.config.shard_deadline_s * 2)
        futures = {
            shard: self._executor.submit(
                self._call, shard, method, path, body, deadline, parent, attributes
            )
            for shard in targets
        }
        return {shard: future.result() for shard, future in futures.items()}

    # -- stale cache ---------------------------------------------------
    def _remember_rows(
        self, nodes: list[int], prediction: list, newest_step: int
    ) -> None:
        """Cache per-node rows from a clean (non-degraded) answer."""
        with self._stale_lock:
            for i, node in enumerate(nodes):
                rows = [step_rows[i] for step_rows in prediction]
                self._stale_rows[int(node)] = (int(newest_step), rows)

    def _stale_for(self, node: int) -> tuple[int, list] | None:
        with self._stale_lock:
            return self._stale_rows.get(int(node))

    # -- observe -------------------------------------------------------
    def _bad_node(self, node: int) -> Response:
        return Response(404, {
            "error": f"unknown node {node}",
            "shard_map": {
                "num_nodes": self.plan.num_nodes,
                "num_shards": self.plan.num_shards,
                "hint": "node ids are global integers in "
                f"[0, {self.plan.num_nodes})",
            },
        })

    def observe(self, payload: dict, body: bytes) -> Response:
        if "node" in payload:
            node = int(payload["node"])
            if not 0 <= node < self.plan.num_nodes:
                return self._bad_node(node)
            # Duplicate halo-node observations to every holder so the
            # replicas' windows track the owner's.
            targets = list(self.plan.holders_of(node))
        elif "values" in payload:
            targets = list(range(self.plan.num_shards))
        else:
            return Response(
                400, {"error": "observation needs 'values' or 'node'+'features'"}
            )
        responses = self._fan(targets, "POST", "/observe", body)
        acks = {
            f"s{shard}": (resp is not None and resp.status == 200)
            for shard, resp in responses.items()
        }
        accepted = [s for s, ok in acks.items() if ok]
        rejected = [
            resp for resp in responses.values()
            if resp is not None and resp.status == 429
        ]
        if not accepted:
            if rejected:
                return Response(
                    429, {"error": "all holders saturated", "shards": acks},
                    rejected[0].headers,
                )
            self.registry.counter("cluster/observe_failed").inc()
            return Response(
                503,
                {"error": "no shard accepted the observation", "shards": acks},
                {"Retry-After": "1"},
            )
        headers = {}
        if len(accepted) < len(targets):
            headers["X-Degraded"] = "partial-write"
        first_ok = next(
            resp for resp in responses.values()
            if resp is not None and resp.status == 200
        )
        out = {"accepted": True, "shards": acks}
        if isinstance(first_ok.body, dict):
            out["newest_step"] = first_ok.body.get("newest_step")
        return Response(200, out, headers)

    # -- forecast ------------------------------------------------------
    def forecast_node(self, node: int, horizon: int | None) -> Response:
        if not 0 <= node < self.plan.num_nodes:
            return self._bad_node(node)
        deadline = Deadline(self.config.shard_deadline_s * 2)
        query = f"/forecast?nodes={node}"
        if horizon is not None:
            query += f"&horizon={horizon}"
        owner = self.plan.owner(node)
        for holder in self.plan.holders_of(node):
            response = self._call(
                holder, "GET", query, None, deadline,
                attributes={"failover": True} if holder != owner else None,
            )
            if response is None or response.status != 200:
                continue
            body = dict(response.body)
            degraded = body.get("degraded")
            if holder != owner:
                degraded = degraded or "failover"
                self.registry.counter("cluster/failovers").inc()
            body["degraded"] = degraded
            body["node"] = node
            if not degraded:
                self._remember_rows(
                    [node], body["prediction"], body.get("newest_step", -1)
                )
            headers = {"X-Degraded": degraded} if degraded else {}
            return Response(200, body, headers)
        stale = self._stale_for(node)
        if stale is not None:
            newest, rows = stale
            self.registry.counter("cluster/stale_served").inc()
            return Response(200, {
                "node": node,
                "newest_step": newest,
                "degraded": "stale",
                "prediction": [[row] for row in rows],
                "nodes": [node],
            }, {"X-Degraded": "stale"})
        self.registry.counter("cluster/forecast_failed").inc()
        return Response(
            503,
            {"error": f"no live shard holds node {node} and no stale answer"},
            {"Retry-After": "1"},
        )

    def forecast_all(self, horizon: int | None) -> Response:
        suffix = f"?horizon={horizon}" if horizon is not None else ""
        targets = list(range(self.plan.num_shards))
        responses = self._fan(targets, "GET", f"/forecast{suffix}")
        num_nodes = self.plan.num_nodes
        horizon_seen: int | None = None
        rows: dict[int, list] = {}
        shard_status: dict[str, dict] = {}
        newest = -1
        degraded: str | None = None
        failed: list[int] = []
        for shard, resp in responses.items():
            key = f"s{shard}"
            if resp is None or resp.status != 200 or not isinstance(resp.body, dict):
                shard_status[key] = {
                    "ok": False,
                    "status": None if resp is None else resp.status,
                }
                failed.append(shard)
                continue
            body = resp.body
            shard_status[key] = {
                "ok": True,
                "version": body.get("version"),
                "degraded": body.get("degraded"),
            }
            if body.get("degraded"):
                degraded = degraded or str(body["degraded"])
            horizon_seen = body["horizon"]
            newest = max(newest, int(body.get("newest_step", -1)))
            prediction = body["prediction"]
            for i, node in enumerate(body["nodes"]):
                rows[int(node)] = [step_rows[i] for step_rows in prediction]
        # Replica retarget: pull a dead shard's owned rows from live
        # shards whose halo retains them.
        for shard in failed:
            missing = [n for n in self.plan.nodes_of(shard) if n not in rows]
            if not missing:
                continue
            for replica, resp in responses.items():
                if replica in failed or not missing:
                    continue
                held = [
                    n for n in missing
                    if n in set(self.plan.retained_of(replica))
                ]
                if not held:
                    continue
                csv = ",".join(str(n) for n in held)
                fallback = self._call(
                    replica, "GET",
                    f"/forecast?nodes={csv}{suffix.replace('?', '&')}",
                    attributes={"failover": True},
                )
                if fallback is None or fallback.status != 200:
                    continue
                degraded = degraded or "failover"
                self.registry.counter("cluster/failovers").inc()
                prediction = fallback.body["prediction"]
                for i, node in enumerate(fallback.body["nodes"]):
                    rows[int(node)] = [step_rows[i] for step_rows in prediction]
                missing = [n for n in missing if n not in rows]
        if not rows:
            self.registry.counter("cluster/forecast_failed").inc()
            return Response(
                503,
                {"error": "no shard answered the scatter-gather",
                 "shards": shard_status},
                {"Retry-After": "1"},
            )
        # Assemble; still-missing rows fall back to stale, then null.
        horizon_out = horizon_seen if horizon_seen is not None else 1
        assembled: list[list] = [
            [None] * num_nodes for _ in range(horizon_out)
        ]
        null_nodes: list[int] = []
        for node in range(num_nodes):
            node_rows = rows.get(node)
            if node_rows is None:
                stale = self._stale_for(node)
                if stale is not None:
                    node_rows = stale[1][:horizon_out]
                    degraded = degraded or "stale"
                    self.registry.counter("cluster/stale_served").inc()
                else:
                    null_nodes.append(node)
                    degraded = degraded or "partial"
                    continue
            for t in range(min(horizon_out, len(node_rows))):
                assembled[t][node] = node_rows[t]
        if not degraded and len(rows) == num_nodes:
            clean_nodes = sorted(rows)
            self._remember_rows(
                clean_nodes,
                [[rows[n][t] for n in clean_nodes] for t in range(horizon_out)],
                newest,
            )
        body_out = {
            "horizon": horizon_out,
            "num_nodes": num_nodes,
            "newest_step": newest,
            "degraded": degraded,
            "missing_nodes": null_nodes,
            "shards": shard_status,
            "prediction": assembled,
        }
        headers = {"X-Degraded": degraded} if degraded else {}
        return Response(200, body_out, headers)

    # -- health / metrics ----------------------------------------------
    def healthz(self) -> Response:
        responses = self._fan(
            list(range(self.plan.num_shards)), "GET", "/healthz"
        )
        shards: dict[str, dict] = {}
        worst = "ok"
        for shard, resp in responses.items():
            key = f"s{shard}"
            if resp is None or not isinstance(resp.body, dict):
                shards[key] = {"status": "down"}
                worst = "degraded"
                continue
            status = resp.body.get("status", "unknown")
            shards[key] = {
                "status": status,
                "warm": resp.body.get("warm"),
                "version": resp.body.get("version"),
                "newest_step": resp.body.get("newest_step"),
            }
            if status != "ok":
                worst = "degraded"
        return Response(200, {
            "status": worst,
            "num_shards": self.plan.num_shards,
            "num_nodes": self.plan.num_nodes,
            "halo_hops": self.plan.halo_hops,
            "shards": shards,
        })

    def metrics(self) -> Response:
        responses = self._fan(
            list(range(self.plan.num_shards)), "GET", "/metrics"
        )
        texts = []
        for shard in sorted(responses):
            resp = responses[shard]
            if resp is not None and isinstance(resp.body, PlainText):
                texts.append(resp.body.body)
            else:
                # Mid-restart worker: count the failed scrape and keep
                # serving the other shards' series — a partial merged
                # exposition beats a 500 to the scraper.
                self.registry.counter(
                    f'cluster/shard_scrape_failures{{shard="s{shard}"}}'
                ).inc()
        if self.slo is not None:
            self.slo.publish(self.registry)
        texts.append(render_prometheus(
            self.registry, exemplars=self.config.serve.exemplars
        ))
        merged = merge_prometheus(texts)
        return Response(200, PlainText(
            body=merged,
            content_type="text/plain; version=0.0.4; charset=utf-8",
        ))

    def traces(self, limit: int | None = None) -> Response:
        """Merged traces: the router's buffer stitched with every shard's."""
        collector = TraceCollector()
        collector.add_tracer("router", self.tracer)
        for shard in range(self.plan.num_shards):
            collector.add_source(f"s{shard}", self._shard_traces_source(shard))
        merged = collector.collect(limit=limit)
        return Response(200, {
            "traces": merged,
            "failed_sources": collector.failures,
        })

    def _shard_traces_source(self, shard: int):
        def fetch() -> list[dict]:
            response = self.clients[shard].request(
                "GET", "/traces", timeout=self.config.shard_deadline_s
            )
            if response.status != 200 or not isinstance(response.body, dict):
                raise ShardUnavailable(
                    f"shard {shard} /traces returned {response.status}"
                )
            return response.body.get("traces", [])
        return fetch

    def slo_status(self) -> Response:
        if self.slo is None:
            return Response(
                404, {"error": "SLO engine disabled; enable slo_enabled"}
            )
        self.slo.publish(self.registry)
        return Response(200, {"slo": self.slo.snapshot()})

    def profile(self) -> Response:
        """Cluster flame data: every process's collapsed stacks, prefixed."""
        sources: dict[str, str] = {}
        if self.profiler is not None:
            sources["router"] = self.profiler.collapsed()
        responses = self._fan(
            list(range(self.plan.num_shards)), "GET", "/profile"
        )
        for shard in sorted(responses):
            resp = responses[shard]
            if (
                resp is not None
                and resp.status == 200
                and isinstance(resp.body, PlainText)
            ):
                sources[f"s{shard}"] = resp.body.body
        if not sources:
            return Response(404, {
                "error": "no continuous profiler running; set profile_hz > 0"
            })
        return Response(200, PlainText(merge_collapsed(sources)))

    def shards(self) -> Response:
        return Response(200, {
            "plan": self.plan.to_json_dict(),
            "clients": [
                client.describe() if hasattr(client, "describe") else {}
                for client in self.clients
            ],
            "breakers": [
                None if b is None else b.snapshot() for b in self.breakers
            ],
        })

    # -- dispatch ------------------------------------------------------
    #: dispatched span-free: tracing the trace/metric scrapes would
    #: pollute the very buffers they read (the router samples at the
    #: configured rate on every serving request).
    _UNTRACED_ROUTES = frozenset({"/metrics", "/traces", "/slo", "/profile", "/shards"})

    def handle(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict | None = None,
    ) -> Response:
        parsed = urlparse(path)
        route = parsed.path.rstrip("/") or "/"
        query = parse_qs(parsed.query)
        self.registry.counter(
            f'cluster/requests{{route="{route.lstrip("/") or "root"}"}}'
        ).inc()
        if route in self._UNTRACED_ROUTES:
            return self._route(method, route, query, body)
        parent = extract_trace_context(headers or {})
        began = time.perf_counter()
        with self.tracer.span(
            "cluster",
            parent=parent,
            attributes={"method": method, "route": route},
        ) as span:
            response = self._route(method, route, query, body)
            span.set_attribute("status", response.status)
            if response.status >= 400:
                span.status = "error"
            context = span.context
        latency_ms = (time.perf_counter() - began) * 1e3
        self.registry.histogram("cluster/latency_ms").observe(
            latency_ms, exemplar=context.trace_id if context.sampled else None
        )
        if self.slo is not None and route in ("/forecast", "/observe"):
            self.slo.record_request(
                response.status,
                latency_ms=latency_ms,
                degraded=bool(response.headers.get("X-Degraded")),
            )
        return response

    def _route(
        self,
        method: str,
        route: str,
        query: dict,
        body: bytes | None,
    ) -> Response:
        try:
            if method == "POST" and route == "/observe":
                try:
                    payload = json.loads(body or b"")
                except json.JSONDecodeError as error:
                    return Response(400, {"error": f"invalid JSON body: {error}"})
                if not isinstance(payload, dict):
                    return Response(
                        400, {"error": "request body must be a JSON object"}
                    )
                if "values" in payload:
                    values = np.asarray(
                        payload["values"], dtype=default_dtype()
                    )
                    rows = values.shape[0] if values.ndim else -1
                    if rows != self.plan.num_nodes:
                        return Response(400, {
                            "error": "full-network observations need "
                            f"{self.plan.num_nodes} rows, got {rows}"
                        })
                return self.observe(payload, body or b"{}")
            if method == "GET" and route == "/forecast":
                horizon = query.get("horizon")
                horizon = int(horizon[0]) if horizon else None
                node_q = query.get("node") or query.get("nodes")
                if node_q:
                    try:
                        node = int(node_q[0].split(",")[0])
                    except ValueError:
                        return Response(
                            400, {"error": f"bad node id {node_q[0]!r}"}
                        )
                    return self.forecast_node(node, horizon)
                return self.forecast_all(horizon)
            if method == "GET" and route == "/healthz":
                return self.healthz()
            if method == "GET" and route == "/metrics":
                return self.metrics()
            if method == "GET" and route == "/traces":
                limit = query.get("limit")
                return self.traces(int(limit[0]) if limit else None)
            if method == "GET" and route == "/slo":
                return self.slo_status()
            if method == "GET" and route == "/profile":
                return self.profile()
            if method == "GET" and route == "/shards":
                return self.shards()
            return Response(404, {"error": f"no route {method} {route}"})
        except (ValueError, KeyError, TypeError) as error:
            return Response(400, {"error": str(error)})
