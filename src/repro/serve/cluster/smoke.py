"""Cluster smoke harness: identity control + seeded chaos + tracing.

Three phases, all against a deterministic corridor-graph demo bundle:

1. **Identity** (in-process, float64 policy): the same observation
   stream is fed to a sharded :class:`~.local.LocalCluster` and a
   single-process :class:`~repro.serve.http.ServeApp`; their full-network
   forecasts must agree to ``identity_tol`` (default 1e-6). Float64
   makes the check meaningful: shard-local forwards slice the full
   graph's Chebyshev basis, which regroups BLAS accumulations —
   bit-for-bit under float64 at these magnitudes, not under float32.
2. **Chaos** (real worker processes by default): drive closed-loop
   load through the router, kill one seeded-random shard mid-run, keep
   driving, then restart it warmed from a replica snapshot. Aggregate
   availability (2xx responses, degraded included) must stay above
   ``availability_floor``.
3. **Trace** (same worker mode as chaos): with ``trace_sample=1.0``,
   kill one shard of a three-shard cluster and issue a single
   scatter-gather forecast. The router's merged ``/traces`` must hold
   ONE trace whose spans cover the router service plus at least two
   shard worker services, including a halo-failover ``shard_call`` hop;
   the critical-path analyzer must attribute the trace to a dominant
   phase.

Returns a JSON-ready report; ``report["passed"]`` gates CI.
"""

from __future__ import annotations

import json
import os
import re
import tempfile

import numpy as np

from ...autodiff import dtype_policy
from ...graphs import shard_quality
from ...telemetry import critical_path, format_critical_path
from ..config import ServeConfig
from .config import ClusterConfig
from .demo import corridor_adjacency, make_demo_bundle
from .local import LocalCluster, build_plan
from .process import ClusterSupervisor

__all__ = ["run_cluster_smoke"]

_SHARD_SERVICE = re.compile(r"^s\d+$")


def _drive_stream(handle, values_stream) -> list:
    """POST each (step, values) through an app's ``handle``; return acks."""
    acks = []
    for step, values in values_stream:
        body = json.dumps({
            "step": int(step),
            "values": np.asarray(values).tolist(),
        }).encode()
        response = handle("POST", "/observe", body, None)
        acks.append(response.status)
    return acks


def _make_stream(num_nodes: int, steps: int, seed: int):
    """Deterministic synthetic traffic stream shared by both sides."""
    rng = np.random.default_rng(seed)
    base = 60.0 + 5.0 * np.sin(
        np.linspace(0.0, 2.0 * np.pi, num_nodes)
    )
    for step in range(steps):
        values = base + rng.normal(0.0, 2.0, size=num_nodes)
        yield step, values.reshape(num_nodes, 1)


def _identity_phase(
    workdir: str,
    num_nodes: int,
    num_shards: int,
    model_name: str,
    steps: int,
    seed: int,
    tol: float,
) -> dict:
    from ..http import ServeApp

    with dtype_policy("float64"):
        bundle = make_demo_bundle(
            os.path.join(workdir, "identity_bundle.npz"),
            num_nodes=num_nodes,
            model_name=model_name,
            seed=seed,
        )
        config = ClusterConfig(num_shards=num_shards)
        single = ServeApp(bundle)
        single.pool.start()
        try:
            with LocalCluster(bundle, config=config) as cluster:
                stream = list(_make_stream(num_nodes, steps, seed))
                single_acks = _drive_stream(single.handle, stream)
                cluster_acks = _drive_stream(cluster.handle, stream)
                single_resp = single.handle("GET", "/forecast", None, None)
                cluster_resp = cluster.handle("GET", "/forecast", None, None)
                plan_stats = shard_quality(
                    cluster.plan, corridor_adjacency(num_nodes)
                )
        finally:
            single.pool.stop()
    ok = (
        single_resp.status == 200
        and cluster_resp.status == 200
        and not cluster_resp.body.get("degraded")
    )
    max_diff = float("inf")
    if ok:
        lhs = np.asarray(single_resp.body["prediction"], dtype=np.float64)
        rhs = np.asarray(cluster_resp.body["prediction"], dtype=np.float64)
        max_diff = (
            float(np.max(np.abs(lhs - rhs)))
            if lhs.shape == rhs.shape else float("inf")
        )
    return {
        "steps": steps,
        "dtype": "float64",
        "tol": tol,
        "single_status": single_resp.status,
        "cluster_status": cluster_resp.status,
        "observe_ok": (
            all(s == 200 for s in single_acks)
            and all(s == 200 for s in cluster_acks)
        ),
        "max_abs_diff": max_diff,
        "identical": ok and max_diff <= tol,
        "plan_quality": plan_stats,
    }


def _availability(reports: list) -> tuple[dict, float]:
    total = {"requests": 0, "ok": 0, "degraded": 0, "rejected": 0,
             "client_errors": 0, "server_errors": 0, "crashes": 0}
    for rep in reports:
        for key in total:
            total[key] += getattr(rep, key)
    # ``degraded`` is a subset of ``ok`` (degraded answers are 200s).
    served = total["ok"]
    availability = served / total["requests"] if total["requests"] else 0.0
    return total, availability


def _chaos_phase(
    workdir: str,
    num_nodes: int,
    num_shards: int,
    model_name: str,
    seed: int,
    processes: bool,
    requests_per_phase: int,
) -> dict:
    from ..loadgen import run_cluster_load

    bundle_path = os.path.join(workdir, "chaos_bundle.npz")
    bundle = make_demo_bundle(
        bundle_path, num_nodes=num_nodes, model_name=model_name, seed=seed
    )
    config = ClusterConfig(num_shards=num_shards)
    plan = build_plan(bundle, config)
    rng = np.random.default_rng(seed)
    victim = int(rng.integers(num_shards))

    def load(handle, phase_seed, start_step):
        return run_cluster_load(
            handle,
            num_nodes=num_nodes,
            num_features=1,
            mode="closed",
            num_clients=2,
            requests_per_client=requests_per_phase // 2,
            seed=phase_seed,
            start_step=start_step,
        )

    phases = []
    report: dict = {
        "mode": "processes" if processes else "local",
        "victim": victim,
        "warmed": None,
    }
    if processes:
        with ClusterSupervisor(bundle_path, plan, config=config) as sup:
            _drive_stream(sup.handle, _make_stream(num_nodes, 6, seed))
            phases.append(load(sup.handle, seed + 1, 6))
            sup.kill_shard(victim)
            phases.append(load(sup.handle, seed + 2, 200))
            restart = sup.restart_shard(victim, warm=True)
            report["warmed"] = restart.get("warmed_from")
            sup.wait_healthy(timeout_s=10.0)
            phases.append(load(sup.handle, seed + 3, 400))
            report["healthz_after"] = sup.router.healthz().body
    else:
        with LocalCluster(bundle, config=config, plan=plan) as cluster:
            _drive_stream(cluster.handle, _make_stream(num_nodes, 6, seed))
            phases.append(load(cluster.handle, seed + 1, 6))
            cluster.kill(victim)
            phases.append(load(cluster.handle, seed + 2, 200))
            cluster.clients[victim].down = False
            report["warmed"] = cluster.warm(victim)
            cluster.router.retarget(victim, cluster.clients[victim])
            phases.append(load(cluster.handle, seed + 3, 400))
            report["healthz_after"] = cluster.router.healthz().body
    totals, availability = _availability(phases)
    report["phases"] = [
        {k: getattr(p, k) for k in (
            "requests", "ok", "degraded", "rejected",
            "client_errors", "server_errors", "crashes", "availability",
        )}
        for p in phases
    ]
    report["totals"] = totals
    report["availability"] = availability
    report["degraded_seen"] = any(p.degraded > 0 for p in phases)
    return report


def _trace_services(trace: dict) -> set:
    return {
        span.get("service")
        for span in trace.get("spans", [])
        if span.get("service")
    }


def _has_failover_hop(trace: dict) -> bool:
    return any(
        span.get("name") == "shard_call"
        and span.get("attributes", {}).get("failover")
        for span in trace.get("spans", [])
    )


def _trace_phase(
    workdir: str,
    num_nodes: int,
    model_name: str,
    seed: int,
    processes: bool,
    steps: int = 24,
) -> dict:
    """One request, one merged cross-process trace, one critical path."""
    bundle_path = os.path.join(workdir, "trace_bundle.npz")
    bundle = make_demo_bundle(
        bundle_path, num_nodes=num_nodes, model_name=model_name, seed=seed
    )
    # Three shards so that with one killed, a single scatter-gather
    # trace still touches two live worker processes plus the failover
    # leg pulling the victim's boundary rows from a replica's halo.
    config = ClusterConfig(
        num_shards=3, serve=ServeConfig(trace_sample=1.0)
    )
    plan = build_plan(bundle, config)
    rng = np.random.default_rng(seed)
    victim = int(rng.integers(3))

    def drive(handle, kill):
        _drive_stream(handle, _make_stream(num_nodes, steps, seed))
        kill()
        forecast = handle("GET", "/forecast", None, None)
        traces_resp = handle("GET", "/traces", None, None)
        return forecast, traces_resp

    if processes:
        with ClusterSupervisor(bundle_path, plan, config=config) as sup:
            forecast, traces_resp = drive(
                sup.handle, lambda: sup.kill_shard(victim)
            )
    else:
        with LocalCluster(bundle, config=config, plan=plan) as cluster:
            forecast, traces_resp = drive(
                cluster.handle, lambda: cluster.kill(victim)
            )

    report: dict = {
        "victim": victim,
        "mode": "processes" if processes else "local",
        "forecast_status": forecast.status,
        "forecast_degraded": (
            forecast.body.get("degraded")
            if isinstance(forecast.body, dict) else None
        ),
        "failed_sources": (
            traces_resp.body.get("failed_sources", [])
            if isinstance(traces_resp.body, dict) else []
        ),
        "merged": False,
        "failover_hop": False,
        "dominant_phase": None,
    }
    traces = (
        traces_resp.body.get("traces", [])
        if isinstance(traces_resp.body, dict) else []
    )
    report["num_traces"] = len(traces)
    for trace in traces:
        services = _trace_services(trace)
        shard_services = {s for s in services if _SHARD_SERVICE.match(s)}
        if (
            "router" not in services
            or len(shard_services) < 2
            or not _has_failover_hop(trace)
        ):
            continue
        path = critical_path(trace)
        report.update({
            "merged": True,
            "failover_hop": True,
            "trace_id": trace.get("trace_id"),
            "services": sorted(services),
            "num_spans": len(trace.get("spans", [])),
            "dominant_phase": path["dominant_phase"],
            "phases_ms": path["phases"],
            "critical_path": format_critical_path(trace),
        })
        break
    return report


def run_cluster_smoke(
    workdir: str | None = None,
    num_nodes: int = 48,
    num_shards: int = 2,
    model_name: str = "GCN-LSTM",
    steps: int = 24,
    seed: int = 0,
    identity_tol: float = 1e-6,
    chaos: bool = True,
    processes: bool = True,
    availability_floor: float = 0.99,
    requests_per_phase: int = 60,
    trace: bool | None = None,
) -> dict:
    """Run the identity + chaos + trace smoke; ``report["passed"]`` gates CI."""
    if trace is None:
        trace = chaos  # the trace phase kills a shard; identity-only skips it
    owned_dir = None
    if workdir is None:
        owned_dir = tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-")
        workdir = owned_dir.name
    try:
        report: dict = {
            "num_nodes": num_nodes,
            "num_shards": num_shards,
            "model_name": model_name,
            "seed": seed,
        }
        report["identity"] = _identity_phase(
            workdir, num_nodes, num_shards, model_name, steps, seed,
            identity_tol,
        )
        if chaos:
            report["chaos"] = _chaos_phase(
                workdir, num_nodes, num_shards, model_name, seed,
                processes, requests_per_phase,
            )
        if trace:
            report["trace"] = _trace_phase(
                workdir, num_nodes, model_name, seed, processes,
            )
        checks = {
            "identity_within_tol": report["identity"]["identical"],
            "observations_accepted": report["identity"]["observe_ok"],
        }
        if chaos:
            checks["availability_floor"] = (
                report["chaos"]["availability"] >= availability_floor
            )
            checks["no_server_errors_after_recovery"] = (
                report["chaos"]["phases"][-1]["server_errors"] == 0
            )
            checks["shard_warmed_from_replica"] = bool(
                report["chaos"]["warmed"] is not None
                and report["chaos"]["warmed"] is not False
            )
        if trace:
            checks["merged_trace_spans_processes"] = report["trace"]["merged"]
            checks["trace_failover_hop"] = report["trace"]["failover_hop"]
            checks["trace_critical_path"] = (
                report["trace"]["dominant_phase"] is not None
            )
        report["availability_floor"] = availability_floor
        report["checks"] = checks
        report["passed"] = all(checks.values())
        return report
    finally:
        if owned_dir is not None:
            owned_dir.cleanup()
