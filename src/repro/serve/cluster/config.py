"""Cluster topology configuration."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace

from ...errors import ConfigError
from ..config import ServeConfig

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and routing knobs for the sharded serving cluster.

    ``halo_hops=None`` derives the halo from the bundle's model (the
    spatial receptive field of one forward pass, or full replication
    when that is unbounded). ``serve`` configures every shard's inner
    engine; ``host``/``port`` are the router's bind address.
    """

    num_shards: int = 2
    halo_hops: int | None = None
    num_regions: int | None = None
    load_factor: float = 1.25
    salt: str = ""
    host: str = "127.0.0.1"
    port: int = 0
    #: wall-clock budget for one fan-out request to one shard
    shard_deadline_s: float = 2.0
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self):
        if self.num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.halo_hops is not None and self.halo_hops < 0:
            raise ConfigError(f"halo_hops must be >= 0, got {self.halo_hops}")
        if self.shard_deadline_s <= 0:
            raise ConfigError(
                f"shard_deadline_s must be positive, got {self.shard_deadline_s}"
            )
        if self.load_factor < 1.0:
            raise ConfigError(f"load_factor must be >= 1, got {self.load_factor}")

    def with_overrides(self, **overrides) -> "ClusterConfig":
        return replace(self, **overrides)

    def to_json_dict(self) -> dict:
        payload = asdict(self)
        payload["serve"] = self.serve.to_json_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterConfig":
        payload = dict(payload)
        serve = payload.pop("serve", None)
        if isinstance(serve, dict):
            payload["serve"] = ServeConfig.from_dict(serve)
        elif isinstance(serve, ServeConfig):
            payload["serve"] = serve
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown cluster config keys {sorted(unknown)}")
        return cls(**payload)
