"""Sub-graph model bundles: the exactness core of the sharded cluster.

A shard serves forecasts for its *owned* nodes using a model sliced to
its retained nodes (owned + halo). For the one-conv-per-timestep family
(FC-LSTM / FC-GCN / GCN-LSTM) the slice is **exact**: every parameter is
node-count independent, and the only N-dependent state — the Chebyshev
basis — is replaced with row/column slices of the *full* graph's
precomputed basis. Recomputing the basis on the sub-adjacency would
change the spectral operator (the scaled Laplacian bakes in global
degrees and the global max eigenvalue), so slicing is load-bearing, not
an optimisation. With a halo of at least ``cheb_order - 1`` hops, the
forecast rows at owned nodes match the full-graph model to float
round-off; halo rows are inexact and only served as degraded failover.

Models whose spatial receptive field grows per missing step (the
imputation family feeds spatial estimates back into missing entries) or
whose parameters are node-count dependent (GRU-D, Graph WaveNet's
learned adjacency) report ``spatial_hops() = None`` and require full
replication (every shard retains the whole graph) to stay exact.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ...autodiff import ChebBasis, Tensor, dtype_policy
from ...datasets import ZScoreScaler
from ...errors import ConfigError, ShapeMismatchError
from ...graphs import HeterogeneousGraphSet
from ...models.recurrent_imputation import RecurrentImputationForecaster
from ...models.spatiotemporal import SpatioTemporalForecaster
from ...nn.graph import AdaptiveGraphConv, ChebConv, GraphConv
from ..artifact import ModelBundle, _RebuildContext

__all__ = [
    "spatial_hops",
    "coupling_adjacency",
    "make_shard_bundle",
    "translate_snapshot",
]


def _conv_hops(model) -> int | None:
    """Hops mixed by one application of the model's graph operators."""
    hops = 0
    for module in model.modules():
        if isinstance(module, AdaptiveGraphConv):
            return None  # learned adjacency: no fixed locality
        if isinstance(module, ChebConv):
            hops = max(hops, module.order - 1)
        elif isinstance(module, GraphConv):
            hops = max(hops, 1)
    return hops


def spatial_hops(model) -> int | None:
    """Spatial receptive field of one forward pass, in graph hops.

    ``None`` means unbounded (or unknown): the model is only exactly
    shardable with full replication. The recurrent imputation family
    is unbounded whenever it mixes space at all, because per-step
    estimates — which already saw the neighbourhood — are fed back into
    missing entries, compounding the reach by ``K - 1`` hops per missing
    step. Unknown model classes are treated conservatively.
    """
    hops = _conv_hops(model)
    if hops is None:
        return None
    if isinstance(model, SpatioTemporalForecaster):
        return hops  # one conv per timestep on raw inputs, no feedback
    if isinstance(model, RecurrentImputationForecaster):
        return 0 if hops == 0 else None
    return 0 if hops == 0 else None


def coupling_adjacency(bundle: ModelBundle) -> np.ndarray:
    """Union edge support the shard planner must respect.

    For heterogeneous models the temporal graphs couple nodes the
    geographic adjacency does not; the halo has to cover every edge any
    operator can propagate along.
    """
    support = (np.abs(bundle.adjacency) > 0).astype(np.float64)
    if bundle.graph_set is not None:
        support += np.abs(bundle.graph_set.geographic) > 0
        for temporal in bundle.graph_set.temporal:
            support += np.abs(temporal) > 0
    return (support > 0).astype(np.float64)


def _check_retained(retained, num_nodes: int) -> np.ndarray:
    ix = np.asarray(sorted(int(v) for v in retained), dtype=int)
    if ix.size == 0:
        raise ConfigError("a shard must retain at least one node")
    if ix[0] < 0 or ix[-1] >= num_nodes:
        raise ConfigError(
            f"retained nodes must lie in [0, {num_nodes}), got {ix[0]}..{ix[-1]}"
        )
    if np.unique(ix).size != ix.size:
        raise ConfigError("retained node list contains duplicates")
    return ix


def make_shard_bundle(bundle: ModelBundle, retained) -> ModelBundle:
    """Slice ``bundle`` down to the given sorted global node ids.

    Returns the bundle itself when the slice covers every node (full
    replication). Raises :class:`ConfigError` when the model has
    node-count-dependent parameters and therefore cannot be sliced.
    """
    n = bundle.num_nodes
    ix = _check_retained(retained, n)
    if ix.size == n:
        return bundle

    sub_adjacency = bundle.adjacency[np.ix_(ix, ix)]
    sub_graph_set = None
    if bundle.graph_set is not None:
        gs = bundle.graph_set
        sub_graph_set = HeterogeneousGraphSet(
            geographic=gs.geographic[np.ix_(ix, ix)],
            temporal=[t[np.ix_(ix, ix)] for t in gs.temporal],
            partition=gs.partition,
            membership_mode=gs.membership_mode,
            membership_temperature=gs.membership_temperature,
        )
    from ...experiments.registry import NEURAL_MODELS

    # build the sub-model under the PARENT's parameter dtype, not the
    # ambient policy — slicing a float64 bundle in a float32 process
    # must not downcast the weights (it would break shard exactness)
    parent_dtype = str(
        next(iter(bundle.model.parameters())).data.dtype
    )

    ctx = _RebuildContext(
        data_config=replace(bundle.data_config, num_nodes=int(ix.size)),
        model_config=bundle.model_config,
        num_nodes=int(ix.size),
        num_features=bundle.num_features,
        adjacency=sub_adjacency,
        graph_set=sub_graph_set,
    )
    with dtype_policy(parent_dtype):
        sub_model = NEURAL_MODELS[bundle.model_name](ctx)
    state = bundle.model.state_dict()
    for name, param in sub_model.named_parameters():
        ref = state.get(name)
        if ref is not None and tuple(ref.shape) != tuple(param.data.shape):
            raise ConfigError(
                f"model {bundle.model_name!r} is not node-shardable: "
                f"parameter {name} is node-count dependent "
                f"(full graph {tuple(ref.shape)}, sub-graph "
                f"{tuple(param.data.shape)}); shard it with full replication"
            )
    try:
        sub_model.load_state_dict(state)
    except ShapeMismatchError as error:  # e.g. non-parameter buffers
        raise ConfigError(
            f"model {bundle.model_name!r} is not node-shardable: {error}"
        ) from error

    # Replace every fixed graph operator with a row/column slice of the
    # FULL graph's operator (see module docstring: recomputing on the
    # sub-adjacency would change the spectral basis).
    full_chebs = [m for m in bundle.model.modules() if isinstance(m, ChebConv)]
    sub_chebs = [m for m in sub_model.modules() if isinstance(m, ChebConv)]
    for full_conv, sub_conv in zip(full_chebs, sub_chebs):
        basis = full_conv._basis.forward_basis
        if full_conv.sparse:
            basis = np.asarray(basis.todense())
        stack = np.ascontiguousarray(basis).reshape(full_conv.order, n, n)
        sub_conv._basis = ChebBasis(stack[:, ix][:, :, ix], sparse=False)
        sub_conv.num_nodes = int(ix.size)
        sub_conv.sparse = False
    full_gconvs = [m for m in bundle.model.modules() if isinstance(m, GraphConv)]
    sub_gconvs = [m for m in sub_model.modules() if isinstance(m, GraphConv)]
    for full_conv, sub_conv in zip(full_gconvs, sub_gconvs):
        sub_conv._propagation = Tensor(full_conv._propagation.data[np.ix_(ix, ix)])
        sub_conv.num_nodes = int(ix.size)

    scaler = bundle.scaler
    if scaler.per_node and scaler.mean_ is not None:
        sub_scaler = ZScoreScaler(per_node=True)
        sub_scaler.mean_ = scaler.mean_[..., ix, :]
        sub_scaler.std_ = scaler.std_[..., ix, :]
        scaler = sub_scaler

    header = dict(bundle.header)
    header["shard"] = {
        "retained_nodes": [int(v) for v in ix],
        "parent_num_nodes": n,
    }
    return ModelBundle(
        model=sub_model,
        scaler=scaler,
        model_name=bundle.model_name,
        data_config=ctx.data_config,
        model_config=bundle.model_config,
        adjacency=sub_adjacency,
        graph_set=sub_graph_set,
        header=header,
    )


def translate_snapshot(state: dict, src_nodes, dst_nodes) -> dict:
    """Re-key a :meth:`StateStore.snapshot` between shard node layouts.

    ``src_nodes`` are the global ids behind the snapshot's rows (in row
    order); the result is a snapshot for a store over ``dst_nodes``.
    Nodes the source never held restore cold (zero mask, never seen) —
    a warmed-from-replica shard is exact on the intersection and merely
    cold, not wrong, on the rest.
    """
    src_index = {int(g): i for i, g in enumerate(src_nodes)}
    dst = [int(g) for g in dst_nodes]
    values = np.asarray(state["values"], dtype=np.float64)
    mask = np.asarray(state["mask"], dtype=np.float64)
    length, _, num_features = values.shape
    out_values = np.zeros((length, len(dst), num_features))
    out_mask = np.zeros_like(out_values)
    src_last = state["last_seen"]
    src_seen = state["seen_ever"]
    cold_last = int(state["start_step"]) - 1
    last_seen: list[int] = []
    seen_ever: list[bool] = []
    for j, node in enumerate(dst):
        i = src_index.get(node)
        if i is None:
            last_seen.append(cold_last)
            seen_ever.append(False)
            continue
        out_values[:, j] = values[:, i]
        out_mask[:, j] = mask[:, i]
        last_seen.append(int(src_last[i]))
        seen_ever.append(bool(src_seen[i]))
    out = dict(state)
    out.update(
        num_nodes=len(dst),
        values=out_values.tolist(),
        mask=out_mask.tolist(),
        last_seen=last_seen,
        seen_ever=seen_ever,
    )
    return out
