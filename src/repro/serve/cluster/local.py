"""In-process cluster: every shard in this process, no sockets.

The tier-1 test surface and the identity control. Shards are real
:class:`~.shard.ShardApp` instances behind
:class:`~.transport.LocalShardClient` wrappers, so the router exercises
the exact production fan-out/scatter-gather/failover paths — only the
transport is swapped. ``kill``/``revive``/``warm`` simulate worker
crashes and snapshot-warmed restarts without processes.
"""

from __future__ import annotations

import json

from ...errors import ConfigError, StateError
from ...graphs import ShardPlan, plan_shards
from ...telemetry import MetricRegistry
from ..artifact import ModelBundle
from .config import ClusterConfig
from .router import ClusterRouter
from .shard import ShardApp
from .sharding import coupling_adjacency, spatial_hops
from .transport import LocalShardClient, ShardUnavailable

__all__ = ["LocalCluster", "resolve_halo_hops", "build_plan"]


def resolve_halo_hops(bundle: ModelBundle, halo_hops: int | None) -> int:
    """The halo the bundle's model needs, unless explicitly overridden.

    ``None`` (auto) picks the model's per-forward receptive field; an
    unbounded field means full replication (halo = graph diameter,
    approximated by ``num_nodes``).
    """
    if halo_hops is not None:
        return int(halo_hops)
    hops = spatial_hops(bundle.model)
    if hops is None:
        return int(bundle.num_nodes)  # BFS saturates: full replication
    return int(hops)


def build_plan(bundle: ModelBundle, config: ClusterConfig) -> ShardPlan:
    """Shard plan for a bundle under a cluster config (halo auto-derived)."""
    return plan_shards(
        coupling_adjacency(bundle),
        config.num_shards,
        halo_hops=resolve_halo_hops(bundle, config.halo_hops),
        num_regions=config.num_regions,
        load_factor=config.load_factor,
        salt=config.salt,
    )


class LocalCluster:
    """A full sharded topology living in one process."""

    def __init__(
        self,
        bundle: ModelBundle,
        config: ClusterConfig | None = None,
        plan: ShardPlan | None = None,
    ):
        self.config = config if config is not None else ClusterConfig()
        self.bundle = bundle
        self.plan = plan if plan is not None else build_plan(bundle, self.config)
        if self.plan.num_shards != self.config.num_shards and config is not None:
            raise ConfigError(
                f"plan has {self.plan.num_shards} shards, config wants "
                f"{self.config.num_shards}"
            )
        self.apps = [
            ShardApp(
                bundle, self.plan, shard,
                config=self.config.serve,
                registry=MetricRegistry(),
            )
            for shard in range(self.plan.num_shards)
        ]
        self.clients = [LocalShardClient(app) for app in self.apps]
        self.router = ClusterRouter(
            self.plan, self.clients, config=self.config,
            registry=MetricRegistry(),
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "LocalCluster":
        for app in self.apps:
            app.start()
        return self

    def stop(self) -> None:
        self.router.close()
        for app in self.apps:
            app.stop()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def handle(self, method, path, body, headers=None):
        return self.router.handle(method, path, body, headers)

    # -- chaos hooks ---------------------------------------------------
    def kill(self, shard: int) -> None:
        """Simulate a dead worker: its client refuses every request."""
        self.clients[shard].down = True

    def revive(self, shard: int, warm: bool = True) -> None:
        """Bring a killed worker back, optionally snapshot-warmed."""
        self.clients[shard].down = False
        if warm:
            self.warm(shard)
        # Re-register with the router so its breaker starts closed, as
        # a real restart (new port, retarget) would.
        self.router.retarget(shard, self.clients[shard])

    def warm(self, shard: int) -> bool:
        """Warm ``shard`` from the first live peer that answers.

        Returns True when a replica snapshot was replayed into the
        shard's store (the production restart path, minus sockets).
        """
        for peer in self.plan.replicas_of(shard):
            if self.clients[peer].down:
                continue
            try:
                snap = self.clients[peer].request("GET", "/shard/snapshot")
            except (StateError, ShardUnavailable):
                continue
            if snap.status != 200:
                continue
            body = json.dumps({
                "nodes": snap.body["nodes"],
                "state": snap.body["state"],
            }).encode()
            restored = self.clients[shard].request(
                "POST", "/shard/restore", body=body
            )
            if restored.status == 200:
                return True
        return False
