"""Demo bundles for cluster benchmarks, smoke tests and quickstarts.

The paper's synthetic PeMS adjacency is a thresholded Gaussian kernel
over random coordinates — at the default epsilon it is *dense* (mean
degree over half the graph), so any two shards' 2-hop halos cover the
whole network and sharding saves nothing. Real road networks are
corridors: each sensor couples to a handful of up/downstream neighbours.
:func:`corridor_adjacency` builds that sparse banded graph, and
:func:`make_demo_bundle` trains nothing — it initialises a GCN-LSTM
(seeded, deterministic), fits the scaler on synthetic traffic, and
exports a real bundle through the production exporter, which is all the
cluster needs to measure routing, sharding and failover.
"""

from __future__ import annotations

import numpy as np

from ...experiments.config import DataConfig, ModelConfig
from ...experiments.registry import NEURAL_MODELS
from ..artifact import ModelBundle, _RebuildContext, export_bundle, load_bundle

__all__ = ["corridor_adjacency", "make_demo_bundle"]


def corridor_adjacency(num_nodes: int, width: int = 2) -> np.ndarray:
    """Sparse banded road-corridor graph: edges to the ±1..±width neighbours.

    Edge weight decays with hop offset (``1/offset``), mimicking the
    distance-kernel weighting of the real PeMS adjacency while keeping
    the graph sparse enough that shard halos stay thin.
    """
    if num_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {num_nodes}")
    adjacency = np.zeros((num_nodes, num_nodes))
    for offset in range(1, min(width, num_nodes - 1) + 1):
        weight = 1.0 / offset
        for i in range(num_nodes - offset):
            adjacency[i, i + offset] = adjacency[i + offset, i] = weight
    return adjacency


def make_demo_bundle(
    path,
    num_nodes: int = 64,
    model_name: str = "GCN-LSTM",
    input_length: int = 12,
    output_length: int = 6,
    embed_dim: int = 16,
    hidden_dim: int = 32,
    corridor_width: int = 2,
    seed: int = 0,
) -> ModelBundle:
    """Export a corridor-graph demo bundle to ``path`` and load it back.

    Going through :func:`~repro.serve.artifact.export_bundle` +
    :func:`~repro.serve.artifact.load_bundle` keeps the demo on the
    production serialisation path (worker processes load the same file
    from disk).
    """
    rng = np.random.default_rng(seed)
    data_config = DataConfig(
        num_nodes=num_nodes,
        input_length=input_length,
        output_length=output_length,
        seed=seed,
    )
    model_config = ModelConfig(
        embed_dim=embed_dim, hidden_dim=hidden_dim, seed=seed
    )
    adjacency = corridor_adjacency(num_nodes, width=corridor_width)
    ctx = _RebuildContext(
        data_config=data_config,
        model_config=model_config,
        num_nodes=num_nodes,
        num_features=1,
        adjacency=adjacency,
        graph_set=None,
    )
    model = NEURAL_MODELS[model_name](ctx)
    # Fitted scaler over plausible traffic speeds (mph-ish): the export
    # path requires fitted statistics, not a trained model.
    from ...datasets import ZScoreScaler

    history = rng.normal(60.0, 8.0, size=(input_length * 20, num_nodes, 1))
    ctx.scaler = ZScoreScaler().fit(history)
    export_bundle(model, model_name, ctx, path)
    return load_bundle(path)
