"""Worker processes and the cluster supervisor.

Each worker is a real OS process (spawn start method — no forked locks)
that loads the bundle from disk, builds its :class:`~.shard.ShardApp`,
binds an ephemeral port and reports it back over a pipe. The
:class:`ClusterSupervisor` owns the worker lifecycle — start, kill (for
chaos), restart with snapshot warm-up from a live replica — and exposes
a :class:`~.router.ClusterRouter` wired to the workers over HTTP.
"""

from __future__ import annotations

import json
import multiprocessing
import time

from ...errors import ServeError
from ...graphs import ShardPlan
from ..http import bind_http
from .config import ClusterConfig
from .router import ClusterRouter
from .transport import HTTPShardClient, ShardUnavailable

__all__ = ["ClusterSupervisor", "shard_worker_main"]


def shard_worker_main(
    bundle_path: str,
    plan_payload: dict,
    shard: int,
    serve_payload: dict,
    conn,
) -> None:
    """Entry point of one shard worker process (spawn-safe, top level)."""
    from ..artifact import load_bundle
    from ..config import ServeConfig
    from .shard import ShardApp

    try:
        plan = ShardPlan.from_json_dict(plan_payload)
        bundle = load_bundle(bundle_path)
        config = ServeConfig.from_dict(serve_payload)
        app = ShardApp(bundle, plan, shard, config=config)
        server = bind_http(app, "127.0.0.1", 0)
        app.start()
    except Exception as error:  # surface boot failures to the supervisor
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        raise
    conn.send(("ready", server.server_address[1]))
    conn.close()
    server.serve_forever()


class ClusterSupervisor:
    """Spawn, watch, kill and restart the shard worker fleet."""

    def __init__(
        self,
        bundle_path: str,
        plan: ShardPlan,
        config: ClusterConfig | None = None,
        boot_timeout_s: float = 60.0,
    ):
        self.bundle_path = str(bundle_path)
        self.plan = plan
        self.config = config if config is not None else ClusterConfig(
            num_shards=plan.num_shards
        )
        self.boot_timeout_s = boot_timeout_s
        self._ctx = multiprocessing.get_context("spawn")
        self.processes: list = [None] * plan.num_shards
        self.ports: list[int | None] = [None] * plan.num_shards
        self.router: ClusterRouter | None = None

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, shard: int) -> int:
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(
                self.bundle_path,
                self.plan.to_json_dict(),
                shard,
                self.config.serve.to_json_dict(),
                child,
            ),
            daemon=True,
        )
        process.start()
        child.close()
        if not parent.poll(self.boot_timeout_s):
            process.terminate()
            raise ServeError(f"shard {shard} worker did not boot in time")
        kind, value = parent.recv()
        parent.close()
        if kind != "ready":
            process.join(timeout=5.0)
            raise ServeError(f"shard {shard} worker failed to boot: {value}")
        self.processes[shard] = process
        self.ports[shard] = int(value)
        return int(value)

    def start(self) -> "ClusterSupervisor":
        for shard in range(self.plan.num_shards):
            self._spawn(shard)
        clients = [
            HTTPShardClient(
                "127.0.0.1", port,
                default_timeout_s=self.config.shard_deadline_s,
            )
            for port in self.ports
        ]
        self.router = ClusterRouter(self.plan, clients, config=self.config)
        return self

    def stop(self) -> None:
        if self.router is not None:
            self.router.close()
        for shard, process in enumerate(self.processes):
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            self.processes[shard] = None

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def handle(self, method, path, body, headers=None):
        assert self.router is not None, "supervisor not started"
        return self.router.handle(method, path, body, headers)

    # -- chaos ---------------------------------------------------------
    def kill_shard(self, shard: int) -> None:
        """Hard-kill one worker (SIGTERM), leaving its entry dead."""
        process = self.processes[shard]
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
        self.processes[shard] = None

    def restart_shard(self, shard: int, warm: bool = True) -> dict:
        """Respawn a killed worker; optionally warm it from a replica.

        Warm-up is the failover primitive end-to-end: fetch a live
        holder's ``/shard/snapshot`` over HTTP, post it to the fresh
        worker's ``/shard/restore`` (which translates node layouts),
        and only then retarget the router at the new port.
        """
        port = self._spawn(shard)
        client = HTTPShardClient(
            "127.0.0.1", port, default_timeout_s=self.config.shard_deadline_s
        )
        report: dict = {"shard": shard, "port": port, "warmed_from": None}
        if warm and self.router is not None:
            for peer in self.plan.replicas_of(shard):
                if self.processes[peer] is None:
                    continue
                try:
                    snap = self.router.clients[peer].request(
                        "GET", "/shard/snapshot"
                    )
                    if snap.status != 200:
                        continue
                    body = json.dumps({
                        "nodes": snap.body["nodes"],
                        "state": snap.body["state"],
                    }).encode()
                    restored = client.request("POST", "/shard/restore", body=body)
                    if restored.status == 200:
                        report["warmed_from"] = peer
                        report["version"] = restored.body.get("version")
                        break
                except ShardUnavailable:
                    continue
        if self.router is not None:
            self.router.retarget(shard, client)
        return report

    def wait_healthy(self, timeout_s: float = 10.0) -> bool:
        """Poll the aggregate /healthz until every shard answers."""
        assert self.router is not None
        end = time.monotonic() + timeout_s
        while time.monotonic() < end:
            response = self.router.healthz()
            shards = response.body.get("shards", {})
            if all(v.get("status") != "down" for v in shards.values()):
                return True
            time.sleep(0.1)
        return False
