"""Shard clients: how the router reaches a shard.

Two interchangeable implementations of ``request(method, path, body,
timeout, headers)``: an in-process wrapper around a
:class:`~.shard.ShardApp` (tier-1 tests, the identity control) and a
stdlib HTTP client for real worker processes. ``headers`` carries the
router's ``traceparent`` across the hop, so a merged trace stitches the
router span to the shard's spans on both transports. Transport failures
surface as :class:`ShardUnavailable` so the router's failover path has
one error type to catch regardless of transport.
"""

from __future__ import annotations

import http.client
import json
import socket

from ...errors import ServeError
from ..http import PlainText, Response

__all__ = ["ShardUnavailable", "LocalShardClient", "HTTPShardClient"]


class ShardUnavailable(ServeError):
    """The shard could not be reached (down, timed out, refused)."""


class LocalShardClient:
    """In-process client over a :class:`~.shard.ShardApp`.

    ``down = True`` simulates a dead worker (tests and the local chaos
    harness); requests then raise :class:`ShardUnavailable` exactly like
    a refused socket would.
    """

    def __init__(self, app):
        self.app = app
        self.down = False

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        timeout: float | None = None,
        headers: dict | None = None,
    ) -> Response:
        if self.down:
            raise ShardUnavailable(f"shard {self.app.shard} is down")
        return self.app.handle(method, path, body, headers)

    def describe(self) -> dict:
        return {"transport": "local", "shard": self.app.shard, "down": self.down}


class HTTPShardClient:
    """Stdlib HTTP/1.1 client for one shard worker."""

    def __init__(self, host: str, port: int, default_timeout_s: float = 5.0):
        self.host = host
        self.port = int(port)
        self.default_timeout_s = default_timeout_s

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        timeout: float | None = None,
        headers: dict | None = None,
    ) -> Response:
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.default_timeout_s,
        )
        try:
            send_headers = {"Content-Type": "application/json"} if body else {}
            if headers:
                send_headers.update(headers)
            conn.request(method, path, body=body, headers=send_headers)
            raw = conn.getresponse()
            payload = raw.read()
            content_type = raw.headers.get("Content-Type", "")
            response_headers = {
                k: v for k, v in raw.headers.items()
                if k not in ("Content-Type", "Content-Length")
            }
            if "application/json" in content_type:
                parsed = json.loads(payload or b"{}")
            else:
                parsed = PlainText(
                    body=payload.decode("utf-8"), content_type=content_type
                )
            return Response(raw.status, parsed, response_headers)
        except (OSError, socket.timeout, http.client.HTTPException) as error:
            raise ShardUnavailable(
                f"shard at {self.host}:{self.port} unreachable: {error}"
            ) from error
        finally:
            conn.close()

    def describe(self) -> dict:
        return {"transport": "http", "host": self.host, "port": self.port}
