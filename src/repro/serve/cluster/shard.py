"""One shard of the serving cluster: a sliced engine behind global ids.

A :class:`ShardApp` wraps an :class:`~repro.serve.fleet.EnginePool` over
the shard's sliced bundle (see :mod:`.sharding`) and speaks the same
``handle(method, path, body, headers)`` surface as
:class:`~repro.serve.http.ServeApp` — so :func:`~repro.serve.http.
bind_http` serves it over a socket unchanged. All node addressing is
**global**: the shard translates to its local row indices at the edge,
returns 404 with ownership hints for nodes it does not retain, and
serves ``/shard/snapshot`` + ``/shard/restore`` so a restarted peer can
warm from it over the wire.
"""

from __future__ import annotations

import json
from urllib.parse import parse_qs, urlparse

import numpy as np

from ...autodiff import default_dtype
from ...errors import ConfigError, Overloaded, ServeError, StateError
from ...graphs import ShardPlan
from ...telemetry import MetricRegistry, extract_trace_context
from ...telemetry.trace import Tracer
from ..artifact import ModelBundle
from ..config import DEFAULT_TENANT, ServeConfig
from ..fleet import EnginePool
from ..http import Response, ServeApp
from .sharding import make_shard_bundle, translate_snapshot

__all__ = ["ShardApp"]


class ShardApp:
    """The request surface of one worker shard."""

    def __init__(
        self,
        bundle: ModelBundle,
        plan: ShardPlan,
        shard: int,
        config: ServeConfig | None = None,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        if not 0 <= shard < plan.num_shards:
            raise ConfigError(
                f"shard {shard} outside plan with {plan.num_shards} shards"
            )
        if plan.num_nodes != bundle.num_nodes:
            raise ConfigError(
                f"plan covers {plan.num_nodes} nodes, bundle has {bundle.num_nodes}"
            )
        self.plan = plan
        self.shard = int(shard)
        self.config = config if config is not None else ServeConfig()
        self.registry = registry if registry is not None else MetricRegistry()
        if tracer is None:
            # Service-labelled so the router's merged /traces can say
            # which process each span ran in.
            tracer = Tracer(
                sample_rate=self.config.trace_sample, service=f"s{self.shard}"
            )
        self.tracer = tracer
        self.owned = plan.nodes_of(shard)
        self.retained = plan.retained_of(shard)
        self._local = {int(g): i for i, g in enumerate(self.retained)}
        self._owned_local = np.asarray(
            [self._local[int(g)] for g in self.owned], dtype=int
        )
        self.bundle = make_shard_bundle(bundle, self.retained)
        pool = EnginePool(registry=self.registry, tracer=tracer)
        pool.add_tenant(
            DEFAULT_TENANT,
            self.bundle,
            config=self.config,
            # Per-shard series labels: the router's merged /metrics view
            # relies on these to keep shard series disjoint.
            labels={"shard": f"s{self.shard}"},
            engine_name=f"shard{self.shard}",
        )
        self.inner = ServeApp(pool=pool, config=self.config)
        self.pool = pool

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ShardApp":
        self.pool.start()
        return self

    def stop(self) -> None:
        self.pool.stop()
        self.inner.close()

    def __enter__(self) -> "ShardApp":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def store(self):
        return self.inner.store

    @property
    def engine(self):
        return self.inner.engine

    # -- helpers -------------------------------------------------------
    def _not_held(self, node: int) -> Response:
        """404 with a shard-map hint: who does hold this node."""
        body: dict = {
            "error": f"node {node} is not held by shard {self.shard}",
            "shard": self.shard,
            "num_nodes": self.plan.num_nodes,
        }
        if 0 <= node < self.plan.num_nodes:
            body["owner"] = self.plan.owner(node)
            body["holders"] = list(self.plan.holders_of(node))
        else:
            body["error"] = (
                f"node {node} outside the sensor graph [0, {self.plan.num_nodes})"
            )
        return Response(404, body)

    def shard_info(self) -> Response:
        return Response(200, {
            "shard": self.shard,
            "num_shards": self.plan.num_shards,
            "halo_hops": self.plan.halo_hops,
            "owned": list(self.owned),
            "halo": list(self.plan.halo_of(self.shard)),
            "model": self.bundle.model_name,
            "warm": self.store.warm,
            "version": self.store.version,
        })

    def snapshot(self) -> Response:
        return Response(200, {
            "shard": self.shard,
            "nodes": list(self.retained),
            "state": self.store.snapshot(),
        })

    def restore(self, payload: dict) -> Response:
        nodes = payload.get("nodes")
        state = payload.get("state")
        if nodes is None or state is None:
            return Response(
                400, {"error": "restore body needs 'nodes' and 'state'"}
            )
        translated = translate_snapshot(state, nodes, self.retained)
        self.store.restore(translated)
        return Response(200, {
            "restored": True,
            "shard": self.shard,
            "version": self.store.version,
            "newest_step": self.store.newest_step,
        })

    # -- observe/forecast with global-id translation -------------------
    def _observe(self, body: bytes | None, headers: dict | None) -> Response:
        payload = self.inner._parse_json(body)
        if isinstance(payload, Response):
            return payload
        if "node" in payload:
            node = int(payload["node"])
            local = self._local.get(node)
            if local is None:
                return self._not_held(node)
            payload = dict(payload, node=local)
        elif "values" in payload:
            values = np.asarray(payload["values"], dtype=default_dtype())
            if values.ndim == 1:
                values = values[:, None]
            if values.shape[0] != self.plan.num_nodes:
                return Response(400, {
                    "error": f"cluster observations are global: expected "
                    f"{self.plan.num_nodes} rows, got {values.shape[0]}"
                })
            keep = np.asarray(self.retained, dtype=int)
            payload = dict(payload, values=values[keep].tolist())
            mask = payload.get("mask")
            if mask is not None:
                mask = np.asarray(mask, dtype=default_dtype())
                if mask.ndim == 1:
                    mask = mask[:, None]
                if mask.shape[0] != self.plan.num_nodes:
                    return Response(400, {
                        "error": f"mask must have {self.plan.num_nodes} rows"
                    })
                payload["mask"] = mask[keep].tolist()
        return self.inner.handle(
            "POST", "/observe", json.dumps(payload).encode(), headers
        )

    def _forecast(self, query: dict) -> Response:
        horizon = query.get("horizon")
        horizon = int(horizon[0]) if horizon else None
        nodes_q = query.get("nodes") or query.get("node")
        if nodes_q:
            requested = [int(v) for v in nodes_q[0].split(",") if v != ""]
        elif query.get("scope", ["owned"])[0] == "retained":
            requested = [int(g) for g in self.retained]
        else:
            requested = [int(g) for g in self.owned]
        local: list[int] = []
        for node in requested:
            row = self._local.get(node)
            if row is None:
                return self._not_held(node)
            local.append(row)
        runtime = self.inner._runtime(DEFAULT_TENANT)
        try:
            result = self.pool.forecast(DEFAULT_TENANT, horizon=horizon)
        except Overloaded as error:
            return Response(
                429, {"error": str(error)}, self.inner._retry_after(runtime, error)
            )
        except (StateError, ValueError) as error:
            return Response(400, {"error": str(error)})
        except ServeError as error:
            self.registry.counter("serve/unavailable_responses").inc()
            return Response(
                503,
                {"error": str(error), "cause": type(error).__name__},
                self.inner._retry_after(runtime, error),
            )
        rows = np.asarray(local, dtype=int)
        prediction = np.asarray(result.prediction)[:, rows, :]
        headers = {"X-Degraded": result.degraded} if result.degraded else {}
        return Response(200, {
            "shard": self.shard,
            "nodes": requested,
            "horizon": result.horizon,
            "version": result.version,
            "newest_step": result.newest_step,
            "cached": result.cached,
            "degraded": result.degraded,
            "prediction": prediction.tolist(),
        }, headers)

    # -- dispatch ------------------------------------------------------
    #: handled span-free so the router's observability fan-outs do not
    #: pollute the shard's trace buffer (matches ServeApp's set, plus
    #: the snapshot/restore plumbing).
    _UNTRACED = frozenset({"metrics", "traces", "slo", "profile", "info",
                           "snapshot", "restore"})

    def handle(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict | None = None,
    ) -> Response:
        parsed = urlparse(path)
        route = parsed.path.rstrip("/") or "/"
        if route.rsplit("/", 1)[-1] in self._UNTRACED:
            return self._handle(method, route, parsed.query, body, headers)
        # Extract the router's traceparent here so the shard-level span
        # joins the cluster trace; the inner ServeApp span then nests
        # under this one via the in-process contextvar.
        parent = extract_trace_context(headers or {})
        with self.tracer.span(
            "shard",
            parent=parent,
            attributes={"shard": f"s{self.shard}", "method": method,
                        "route": route},
        ) as span:
            response = self._handle(method, route, parsed.query, body, headers)
            span.set_attribute("status", response.status)
            if response.status >= 400:
                span.status = "error"
            return response

    def _handle(
        self,
        method: str,
        route: str,
        query_string: str,
        body: bytes | None,
        headers: dict | None,
    ) -> Response:
        query = parse_qs(query_string)
        try:
            if method == "GET" and route == "/shard/info":
                return self.shard_info()
            if method == "GET" and route == "/shard/snapshot":
                return self.snapshot()
            if method == "POST" and route == "/shard/restore":
                payload = self.inner._parse_json(body)
                if isinstance(payload, Response):
                    return payload
                return self.restore(payload)
            if method == "POST" and route == "/observe":
                return self._observe(body, headers)
            if method == "GET" and route == "/forecast":
                return self._forecast(query)
        except StateError as error:
            return Response(400, {"error": str(error)})
        full_path = route + (f"?{query_string}" if query_string else "")
        if method == "GET" and route == "/healthz":
            response = self.inner.handle(method, full_path, body, headers)
            if response.status == 200 and isinstance(response.body, dict):
                body_out = dict(response.body)
                body_out["shard"] = {
                    "shard": self.shard,
                    "owned": len(self.owned),
                    "retained": len(self.retained),
                }
                return Response(response.status, body_out, response.headers)
            return response
        return self.inner.handle(method, full_path, body, headers)
