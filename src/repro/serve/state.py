"""Per-sensor streaming state for online forecasting.

Offline experiments slice complete arrays into windows; a live deployment
instead receives sensor readings one at a time, *with gaps*. The
:class:`StateStore` is the bridge: a ring buffer over the last
``input_length`` time slots of the whole network that

* accepts full-network or per-sensor observations keyed by an absolute
  integer time step (e.g. the 5-minute slot index since the feed epoch);
* tolerates out-of-order arrivals within the retained window and rejects
  (and counts) anything older;
* marks never-observed entries missing exactly like the offline pipeline
  (:mod:`repro.datasets.missing` semantics: value 0, mask 0), so a model
  trained on corrupted windows sees the same input distribution online;
* derives the time-since-last-observation deltas that GRU-D-style decay
  models consume, matching :func:`repro.models.grud.compute_deltas`
  step-for-step.

Values are stored in **original units**; scaling is the engine's job
(the fitted scaler travels with the model bundle).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..autodiff import default_dtype
from ..errors import StateError
from ..models.grud import compute_deltas
from ..telemetry import MetricRegistry, get_registry

__all__ = ["StateStore", "StateWindow"]


@dataclass(frozen=True)
class StateWindow:
    """An immutable snapshot of the store, model-ready.

    ``x`` is zero-filled at missing entries, ``m`` is the observation
    mask, ``steps_of_day`` the time-of-day index per slot and ``delta``
    the per-entry steps-since-last-observation (GRU-D convention: the
    oldest slot has delta 0). ``version`` identifies the store state the
    snapshot was taken at — it keys the engine's forecast cache.
    """

    x: np.ndarray  # (L, N, D) observed history, zeros where missing
    m: np.ndarray  # (L, N, D) observation mask
    steps_of_day: np.ndarray  # (L,)
    delta: np.ndarray  # (L, N, D)
    newest_step: int  # absolute step of the last (most recent) slot
    version: int

    @property
    def input_length(self) -> int:
        return self.x.shape[0]


class StateStore:
    """Ring buffer of the last ``input_length`` network observations.

    Parameters
    ----------
    num_nodes, num_features:
        Network dimensions, matching the trained model.
    input_length:
        Window length ``L`` the model consumes (the paper's 12 steps).
    steps_per_day:
        Calendar resolution (drives the temporal-graph interval weights).
    start_step:
        Absolute step the feed starts at; slots before the first
        observation are missing (cold start).
    registry:
        Metric registry the ``serve/observe_duplicates`` counter lands
        in (default: the process-wide registry).
    """

    def __init__(
        self,
        num_nodes: int,
        num_features: int,
        input_length: int,
        steps_per_day: int = 288,
        start_step: int = 0,
        registry: MetricRegistry | None = None,
    ):
        if input_length < 1:
            raise StateError(f"input_length must be >= 1, got {input_length}")
        if steps_per_day < 1:
            raise StateError(f"steps_per_day must be >= 1, got {steps_per_day}")
        self.num_nodes = num_nodes
        self.num_features = num_features
        self.input_length = input_length
        self.steps_per_day = steps_per_day
        # Ring storage: slot for absolute step t lives at row t % L.
        self._values = np.zeros((input_length, num_nodes, num_features),
                                dtype=default_dtype())
        self._mask = np.zeros((input_length, num_nodes, num_features),
                              dtype=default_dtype())
        # Newest absolute step currently represented in the ring. Slots
        # (newest-L, newest] are live; anything older has been evicted.
        self._newest = start_step - 1
        self._start_step = start_step
        self._version = 0
        self._observations = 0
        self._stale_dropped = 0
        self._cold_resets = 0
        self._duplicates = 0
        self._registry = registry if registry is not None else get_registry()
        # Per-sensor recency for the quality monitors: the absolute step
        # of each sensor's newest accepted reading (None until first).
        self._last_seen = np.full(num_nodes, start_step - 1, dtype=np.int64)
        self._seen_ever = np.zeros(num_nodes, dtype=bool)
        # Observation feed and forecast dispatcher run on different
        # threads; the lock keeps snapshots consistent with updates.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter, bumped once per accepted observation."""
        return self._version

    @property
    def newest_step(self) -> int:
        """Absolute step of the most recent ring slot (-1 offset start)."""
        return self._newest

    @property
    def observations(self) -> int:
        """Accepted observation count (full-network and per-sensor alike)."""
        return self._observations

    @property
    def stale_dropped(self) -> int:
        """Observations rejected for falling behind the retained window."""
        return self._stale_dropped

    @property
    def cold_resets(self) -> int:
        """Times a feed gap wiped the whole ring (restart-sized outage)."""
        return self._cold_resets

    @property
    def duplicates(self) -> int:
        """Exact (step, entries, values) re-deliveries absorbed idempotently."""
        return self._duplicates

    @property
    def warm(self) -> bool:
        """True once every slot of the window has been advanced past.

        A cold store still serves forecasts — the leading slots are
        simply masked missing, which the missing-value models handle by
        design — but callers may prefer to gate traffic on warm-up.
        """
        return self._newest - self._start_step + 1 >= self.input_length

    # ------------------------------------------------------------------
    def _advance_to(self, step: int) -> None:
        """Roll the ring forward so ``step`` is the newest slot.

        Every slot entering the window starts fully missing — a silent
        sensor is a gap, exactly like the offline corruption masks.
        """
        gap = step - self._newest
        if gap >= self.input_length:
            if self._observations > 0:
                self._cold_resets += 1
            self._values[:] = 0.0
            self._mask[:] = 0.0
        else:
            for s in range(self._newest + 1, step + 1):
                row = s % self.input_length
                self._values[row] = 0.0
                self._mask[row] = 0.0
        self._newest = step

    def observe(
        self,
        step: int,
        values: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> bool:
        """Ingest a full-network reading for absolute ``step``.

        ``values`` is ``(N, D)``; ``mask`` (same shape, default all-ones)
        marks which entries are real observations — unmasked entries are
        left untouched, so partial readings merge with earlier arrivals
        for the same step. Returns ``False`` (and counts the drop) when
        ``step`` has already left the retained window.

        Re-delivery of an observation whose entries are all already
        recorded *with identical values* is idempotent: it is accepted
        (``True``) but bumps neither the version nor the observation
        count, and lands in the ``serve/observe_duplicates`` counter —
        so at-least-once producers cannot thrash the forecast cache.
        """
        values = np.asarray(values, dtype=default_dtype())
        if values.shape != (self.num_nodes, self.num_features):
            raise StateError(
                f"values must be {(self.num_nodes, self.num_features)}, "
                f"got {values.shape}"
            )
        if mask is None:
            mask = np.ones_like(values)
        else:
            mask = np.asarray(mask, dtype=default_dtype())
            if mask.shape != values.shape:
                raise StateError(
                    f"mask shape {mask.shape} != values shape {values.shape}"
                )
        with self._lock:
            if step <= self._newest - self.input_length:
                self._stale_dropped += 1
                return False
            row = step % self.input_length
            observed = mask > 0
            if (
                step <= self._newest
                and observed.any()
                and not (observed & (self._mask[row] == 0)).any()
                and np.array_equal(self._values[row][observed], values[observed])
            ):
                self._duplicates += 1
                self._registry.counter("serve/observe_duplicates").inc()
                return True
            if step > self._newest:
                self._advance_to(step)
            self._values[row][observed] = values[observed]
            self._mask[row][observed] = 1.0
            nodes_observed = observed.any(axis=1)
            self._last_seen[nodes_observed] = np.maximum(
                self._last_seen[nodes_observed], step
            )
            self._seen_ever |= nodes_observed
            self._version += 1
            self._observations += 1
            return True

    def observe_sensor(
        self, step: int, node: int, features: np.ndarray | float
    ) -> bool:
        """Ingest one sensor's reading (the streaming per-sensor path)."""
        if not 0 <= node < self.num_nodes:
            raise StateError(f"node {node} out of range 0..{self.num_nodes - 1}")
        values = np.zeros((self.num_nodes, self.num_features),
                          dtype=default_dtype())
        mask = np.zeros_like(values)
        features = np.asarray(features, dtype=default_dtype()).reshape(-1)
        if features.shape != (self.num_features,):
            raise StateError(
                f"expected {self.num_features} features, got {features.shape[0]}"
            )
        values[node] = features
        mask[node] = 1.0
        return self.observe(step, values, mask)

    # ------------------------------------------------------------------
    def window(self) -> StateWindow:
        """Snapshot the ring as a chronologically ordered model window."""
        with self._lock:
            newest = self._newest
            steps = np.arange(newest - self.input_length + 1, newest + 1)
            rows = steps % self.input_length
            x = self._values[rows].copy()
            m = self._mask[rows].copy()
            version = self._version
        # Entries from before the feed started are plain cold-start gaps.
        delta = compute_deltas(m[None])[0]
        return StateWindow(
            x=x,
            m=m,
            steps_of_day=steps % self.steps_per_day,
            delta=delta,
            newest_step=int(newest),
            version=version,
        )

    def sensor_lag(self) -> np.ndarray:
        """Steps since each sensor's last accepted reading ``(N,)``.

        Never-observed sensors report the time since the feed started,
        so a cold sensor and a freshly dead one rank the same way.
        """
        with self._lock:
            lag = self._newest - self._last_seen
            lag = np.where(self._seen_ever, lag, self._newest - self._start_step + 1)
        return np.maximum(lag, 0).astype(np.int64)

    def sensor_summary(self) -> dict:
        """JSON-ready per-sensor recency plus the drop/reset counters."""
        lag = self.sensor_lag()
        with self._lock:
            summary = {
                "last_seen_step": [
                    int(s) if ever else None
                    for s, ever in zip(self._last_seen, self._seen_ever)
                ],
                "stale_dropped": self._stale_dropped,
                "cold_resets": self._cold_resets,
                "observations": self._observations,
                "duplicates": self._duplicates,
            }
        summary["lag_steps"] = [int(v) for v in lag]
        return summary

    # ------------------------------------------------------------------
    #: snapshot payload format; bump when the schema changes.
    SNAPSHOT_FORMAT = 1

    def snapshot(self) -> dict:
        """JSON-ready dump of the full ring state (failover primitive).

        The payload is versioned and dtype-policy aware: values are
        serialized as plain lists along with the dtype they were held
        in, and :meth:`restore` casts them into the receiving process's
        policy dtype — a float64 snapshot restores cleanly into a
        float32 store (with the usual precision loss) and vice versa.
        Rows are ordered oldest → newest.
        """
        with self._lock:
            steps = np.arange(self._newest - self.input_length + 1, self._newest + 1)
            rows = steps % self.input_length
            return {
                "format_version": self.SNAPSHOT_FORMAT,
                "dtype": str(np.dtype(default_dtype())),
                "num_nodes": self.num_nodes,
                "num_features": self.num_features,
                "input_length": self.input_length,
                "steps_per_day": self.steps_per_day,
                "start_step": int(self._start_step),
                "newest_step": int(self._newest),
                "version": int(self._version),
                "counters": {
                    "observations": self._observations,
                    "stale_dropped": self._stale_dropped,
                    "cold_resets": self._cold_resets,
                    "duplicates": self._duplicates,
                },
                "values": self._values[rows].tolist(),
                "mask": self._mask[rows].tolist(),
                "last_seen": [int(s) for s in self._last_seen],
                "seen_ever": [bool(b) for b in self._seen_ever],
            }

    def restore(self, payload: dict) -> None:
        """Load a :meth:`snapshot` payload, replacing the ring in place.

        Dimensions must match the store exactly; the payload dtype may
        differ from the active policy (values are cast). The store
        version after a restore is strictly greater than both its own
        previous version and the snapshot's, so every forecast-cache
        entry keyed on older state is invalidated. Out-of-order
        observations for steps still inside the restored window merge
        normally afterwards.
        """
        fmt = payload.get("format_version")
        if fmt != self.SNAPSHOT_FORMAT:
            raise StateError(
                f"unsupported snapshot format {fmt!r} (expected {self.SNAPSHOT_FORMAT})"
            )
        for field in ("num_nodes", "num_features", "input_length", "steps_per_day"):
            if int(payload[field]) != getattr(self, field):
                raise StateError(
                    f"snapshot {field}={payload[field]} does not match "
                    f"store {field}={getattr(self, field)}"
                )
        values = np.asarray(payload["values"], dtype=default_dtype())
        mask = np.asarray(payload["mask"], dtype=default_dtype())
        shape = (self.input_length, self.num_nodes, self.num_features)
        if values.shape != shape or mask.shape != shape:
            raise StateError(
                f"snapshot arrays must be {shape}, got {values.shape}/{mask.shape}"
            )
        newest = int(payload["newest_step"])
        with self._lock:
            steps = np.arange(newest - self.input_length + 1, newest + 1)
            rows = steps % self.input_length
            self._values[rows] = values
            self._mask[rows] = mask
            self._newest = newest
            self._start_step = int(payload["start_step"])
            counters = payload.get("counters", {})
            self._observations = int(counters.get("observations", 0))
            self._stale_dropped = int(counters.get("stale_dropped", 0))
            self._cold_resets = int(counters.get("cold_resets", 0))
            self._duplicates = int(counters.get("duplicates", 0))
            self._last_seen = np.asarray(payload["last_seen"], dtype=np.int64)
            self._seen_ever = np.asarray(payload["seen_ever"], dtype=bool)
            self._version = max(self._version, int(payload["version"])) + 1

    def load_history(
        self, data: np.ndarray, mask: np.ndarray | None = None,
        end_step: int | None = None,
    ) -> None:
        """Bulk-prime the store from offline arrays ``(T, N, D)``.

        The last ``input_length`` rows land in the ring with the final
        row at ``end_step`` (default: ``start + T - 1``). Used to warm a
        server from the tail of a recorded feed before going live.
        """
        data = np.asarray(data, dtype=default_dtype())
        if data.ndim != 3 or data.shape[1:] != (self.num_nodes, self.num_features):
            raise StateError(
                f"history must be (T, {self.num_nodes}, {self.num_features}), "
                f"got {data.shape}"
            )
        if mask is None:
            mask = np.ones_like(data)
        total = data.shape[0]
        if end_step is None:
            end_step = self._start_step + total - 1
        first = max(0, total - self.input_length)
        for offset in range(first, total):
            self.observe(end_step - (total - 1 - offset), data[offset], mask[offset])
