"""Traced-plan runtime for the forecast engine's hot path.

:class:`PlanRuntime` sits between :class:`~repro.serve.engine.
ForecastEngine` and :mod:`repro.autodiff.plan`. For every distinct
``(input shapes, dtypes, signature)`` the model's forward can take, it
walks one key through three states:

1. **compile** — the first request traces ``model.plan_forward`` and
   compiles an :class:`~repro.autodiff.ExecutionPlan`. The traced run
   computes on the base arrays, so its output *is* the answer: compiling
   costs one ordinary forward plus lowering.
2. **validate** — the second request runs both the replay and the eager
   forward and requires bitwise equality. A mismatch (data-dependent
   control flow the signature failed to capture) permanently demotes the
   key to eager.
3. **ready** — every later request replays the plan: zero Tensor
   allocation, zero graph construction.

Anything that goes wrong — the model does not implement planning,
tracing raises :class:`~repro.autodiff.PlanUnsupported`, validation
fails — parks that key on the eager path forever and bumps
``serve/plan_fallbacks``; serving never degrades, it only stops
accelerating.

Metrics (labelled like every other serve series): counters
``serve/plan_cache_hits`` / ``serve/plan_cache_misses`` /
``serve/plan_fallbacks``, histogram ``serve/plan_compile_seconds`` and
the per-mode forward counter ``serve/engine_exec_mode`` with a ``mode``
label. Compilation runs inside a ``plan.compile`` span.
"""

from __future__ import annotations

import threading

import numpy as np

from ..autodiff import PlanUnsupported, inference_mode, trace
from ..models.base import NeuralForecaster
from ..telemetry import MetricRegistry, Tracer, label_block

__all__ = ["PlanRuntime"]

#: plans cached per engine; keys beyond this evict the oldest entry
_MAX_PLANS = 8


class _Entry:
    """State machine for one plan key."""

    __slots__ = ("state", "plan")

    def __init__(self):
        self.state = "compile"  # "compile" | "validate" | "ready" | "eager"
        self.plan = None


class PlanRuntime:
    """Per-engine cache of compiled execution plans.

    Not thread-safe on its own: the engine calls :meth:`predict` under
    its forward lock, which also keeps the zero-copy replay output alive
    until it is consumed.
    """

    def __init__(
        self,
        model: NeuralForecaster,
        registry: MetricRegistry,
        tracer: Tracer,
        labels: dict[str, str] | None = None,
        max_plans: int = _MAX_PLANS,
    ):
        self.model = model
        self.registry = registry
        self.tracer = tracer
        self.labels = dict(labels) if labels else {}
        self.max_plans = max_plans
        self._entries: dict[tuple, _Entry] = {}
        self._lock = threading.Lock()
        # Set permanently once plan_inputs returns None: the model does
        # not support planning, so skip the prologue on every request.
        # Plan support must be declared on the model's *class*: wrapper
        # models (chaos injectors, canary fault shims) intercept
        # ``__call__`` but delegate attribute access to the wrapped
        # model, and planning through the delegated ``plan_forward``
        # would silently route around the wrapper.
        self._unsupported = (
            getattr(type(model), "plan_inputs", None) is None
            or getattr(type(model), "plan_forward", None) is None
        )

    def _m(self, base: str, **extra: str) -> str:
        if not self.labels and not extra:
            return base
        return base + label_block({**self.labels, **extra})

    def _count(self, base: str, **extra: str) -> None:
        self.registry.counter(self._m(base, **extra)).inc()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready plan-cache state for operators."""
        with self._lock:
            states = [entry.state for entry in self._entries.values()]
        return {
            "supported": not self._unsupported,
            "plans": len(states),
            "ready": states.count("ready"),
            "eager_keys": states.count("eager"),
        }

    # ------------------------------------------------------------------
    def predict(
        self, x: np.ndarray, m: np.ndarray, steps_of_day: np.ndarray
    ) -> np.ndarray | None:
        """The scaled prediction via the plan path, or ``None`` for eager.

        Must be called under the engine's forward lock: with a ready
        plan the returned array aliases the arena (``copy=False``) and
        is only valid until the next replay.
        """
        if self._unsupported:
            self._count("serve/engine_exec_mode", mode="eager")
            return None
        split = self.model.plan_inputs(x, m, steps_of_day)
        if split is None:
            self._unsupported = True
            self._count("serve/engine_exec_mode", mode="eager")
            return None
        inputs, signature = split
        key = (
            tuple(
                (name, value.shape, str(value.dtype))
                for name, value in sorted(inputs.items())
            ),
            signature,
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry()
                if len(self._entries) >= self.max_plans:
                    evicted = next(iter(self._entries))
                    del self._entries[evicted]
                self._entries[key] = entry

        if entry.state == "eager":
            self._count("serve/engine_exec_mode", mode="eager")
            return None
        if entry.state == "compile":
            self._count("serve/plan_cache_misses")
            return self._compile(entry, inputs)
        self._count("serve/plan_cache_hits")
        if entry.state == "validate":
            return self._validate(entry, inputs)
        self._count("serve/engine_exec_mode", mode="planned")
        return entry.plan.replay(inputs, copy=False)

    # ------------------------------------------------------------------
    def _compile(self, entry: _Entry, inputs: dict[str, np.ndarray]):
        """Trace + compile; the traced run's output is this answer."""
        with self.tracer.span(
            "plan.compile", attributes={"model": type(self.model).__name__}
        ) as span:
            try:
                plan, output = trace(self.model.plan_forward, inputs)
            except PlanUnsupported as error:
                span.set_attribute("unsupported", str(error))
                entry.state = "eager"
                self._count("serve/plan_fallbacks")
                self._count("serve/engine_exec_mode", mode="eager")
                return None
            span.set_attribute("steps", plan.stats.steps)
            span.set_attribute("arena_bytes", plan.stats.arena_bytes)
        self.registry.histogram(self._m("serve/plan_compile_seconds")).observe(
            plan.stats.compile_seconds
        )
        entry.plan = plan
        entry.state = "validate"
        self._count("serve/engine_exec_mode", mode="traced")
        return output

    def _validate(self, entry: _Entry, inputs: dict[str, np.ndarray]):
        """Warm check: one replay must match the eager forward bitwise.

        This is the guard against data-dependent control flow the
        model's plan signature failed to capture — the one hazard no
        tracer can see.
        """
        replayed = entry.plan.replay(inputs, copy=True)
        with inference_mode():
            eager = np.asarray(self.model.plan_forward(**inputs))
        if replayed.dtype == eager.dtype and np.array_equal(
            replayed, eager, equal_nan=True
        ):
            entry.state = "ready"
            self._count("serve/engine_exec_mode", mode="planned")
            return replayed
        entry.plan = None
        entry.state = "eager"
        self._count("serve/plan_fallbacks")
        self._count("serve/engine_exec_mode", mode="eager")
        return eager
