"""Multi-tenant engine pool with shadow and canary rollouts.

The single-model serving stack (one :class:`~repro.serve.engine.
ForecastEngine` over one :class:`~repro.serve.state.StateStore`) grows
into a **fleet**: an :class:`EnginePool` holds one isolated runtime per
tenant — store, engine, quality monitor, token-bucket quota — keyed in
a registry by ``(tenant, bundle-id, version)``, and two rollout
mechanisms move a tenant from one bundle to the next without a restart:

* **shadow** — a candidate bundle receives a mirrored fraction of live
  forecast traffic *off the request path* (a background worker replays
  the request against the candidate and records the absolute divergence
  between the two answers in a per-tenant histogram). Live latency is
  unaffected: the live answer is returned before the mirror is even
  enqueued, and a full mirror queue drops the sample rather than block.
* **canary** — a candidate bundle takes a staged fraction of live
  traffic (1% → 10% → 50% → 100% by default). Each stage must serve
  ``stage_requests`` clean answers to advance; surviving the last stage
  promotes the candidate to primary (bumping the tenant's version).
  Rollback is automatic when the candidate's circuit breaker opens,
  its :class:`~repro.telemetry.QualityMonitor` verdict degrades, or its
  failure ratio crosses the configured ceiling — live traffic is never
  failed by a sick candidate: the stable engine answers instead.

Quotas reuse the :class:`~repro.reliability.retry.RetryBudget` token-
bucket mechanics: ``quota_rps`` refills, ``quota_burst`` caps, and an
empty bucket raises :class:`~repro.errors.QuotaExceeded`, which the
HTTP layer maps to ``429`` with ``Retry-After``.

Candidate runtimes share the primary tenant's store when the bundle
shapes agree (same nodes/features/window), so live and candidate
answer from byte-identical state; a shape-changing candidate gets its
own store fed by mirrored observations.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError, QuotaExceeded, ServeError
from ..reliability.retry import RetryBudget
from ..telemetry import (
    BurnRule,
    MetricRegistry,
    Objective,
    QualityMonitor,
    SLOTracker,
    Tracer,
    get_registry,
    get_tracer,
    label_block,
)
from .artifact import ModelBundle, load_bundle
from .config import (
    DEFAULT_TENANT,
    CanaryConfig,
    FleetConfig,
    ServeConfig,
    ShadowConfig,
)
from .engine import Forecast, ForecastEngine
from .state import StateStore

__all__ = ["EnginePool", "TenantQuota", "build_pool"]

#: divergence histogram buckets (absolute units of the forecast target)
DIVERGENCE_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0)


class _NullMetric:
    """Sink for fleet metrics of legacy unlabeled tenants (no series)."""

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class TenantQuota:
    """A per-tenant request rate limit on token-bucket mechanics.

    Thin wrapper over :class:`~repro.reliability.retry.RetryBudget`:
    ``rate_per_s`` tokens refill per second up to ``burst``; each
    forecast request spends one. An empty bucket means the tenant is
    over quota.
    """

    def __init__(self, rate_per_s: float, burst: float, clock=None):
        kwargs = {} if clock is None else {"clock": clock}
        self._budget = RetryBudget(rate_per_s=rate_per_s, burst=burst, **kwargs)

    def try_acquire(self) -> bool:
        return self._budget.try_spend()

    @property
    def retry_after_s(self) -> float:
        """Seconds until one token refills — the 429 Retry-After hint."""
        return max(1.0 / self._budget.rate_per_s, 0.001)

    def snapshot(self) -> dict:
        return {
            "rate_per_s": self._budget.rate_per_s,
            "burst": self._budget.burst,
            "tokens": round(self._budget.tokens, 3),
            "granted": self._budget.spent,
            "rejected": self._budget.denied,
        }


@dataclass
class _CandidateRuntime:
    """A candidate bundle attached to a tenant (shadow or canary)."""

    bundle: ModelBundle
    store: StateStore
    engine: ForecastEngine
    shares_store: bool
    monitor: QualityMonitor | None = None


@dataclass
class _ShadowState:
    config: ShadowConfig
    runtime: _CandidateRuntime
    rng: np.random.Generator
    lock: threading.Lock = field(default_factory=threading.Lock)
    mirrored: int = 0
    dropped: int = 0
    errors: int = 0
    compared: int = 0
    divergence_sum: float = 0.0
    divergence_max: float = 0.0

    def snapshot(self) -> dict:
        with self.lock:
            mean = self.divergence_sum / self.compared if self.compared else 0.0
            return {
                "bundle": self.config.bundle,
                "mirror_fraction": self.config.mirror_fraction,
                "mirrored": self.mirrored,
                "dropped": self.dropped,
                "errors": self.errors,
                "compared": self.compared,
                "divergence_mean_abs": mean,
                "divergence_max_abs": self.divergence_max,
            }


#: canary lifecycle states
CANARY_RUNNING = "running"
CANARY_PROMOTED = "promoted"
CANARY_ROLLED_BACK = "rolled_back"


@dataclass
class _CanaryState:
    config: CanaryConfig
    runtime: _CandidateRuntime
    rng: np.random.Generator
    lock: threading.Lock = field(default_factory=threading.Lock)
    state: str = CANARY_RUNNING
    stage_index: int = 0
    stage_successes: int = 0
    stage_failures: int = 0
    total_successes: int = 0
    total_failures: int = 0
    reason: str | None = None
    slo: SLOTracker | None = None

    @property
    def weight(self) -> float:
        if self.state == CANARY_PROMOTED:
            return 1.0
        if self.state == CANARY_ROLLED_BACK:
            return 0.0
        return self.config.stages[self.stage_index]

    def snapshot(self) -> dict:
        with self.lock:
            return {
                "bundle": self.config.bundle,
                "state": self.state,
                "stage_index": self.stage_index,
                "stages": list(self.config.stages),
                "weight": self.weight,
                "stage_successes": self.stage_successes,
                "stage_failures": self.stage_failures,
                "total_successes": self.total_successes,
                "total_failures": self.total_failures,
                "reason": self.reason,
                "slo": self.slo.snapshot() if self.slo is not None else None,
            }


@dataclass
class _TenantRuntime:
    """Everything one tenant owns inside the pool."""

    name: str
    bundle: ModelBundle
    bundle_ref: str
    config: ServeConfig
    store: StateStore
    engine: ForecastEngine
    monitor: QualityMonitor
    quota: TenantQuota | None
    labels: dict[str, str]
    version: int = 1
    shadow: _ShadowState | None = None
    canary: _CanaryState | None = None
    lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def bundle_id(self) -> str:
        return self.bundle.model_name

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.name, self.bundle_id, self.version)


class EnginePool:
    """A registry of per-tenant forecast engines with rollout mechanics.

    Each tenant added via :meth:`add_tenant` gets an isolated
    :class:`StateStore`, :class:`ForecastEngine` and
    :class:`QualityMonitor`; engines are registered under
    ``(tenant, bundle-id, version)``. :meth:`observe` and
    :meth:`forecast` are the tenant-routed equivalents of the single-
    engine calls, adding quota enforcement, canary routing and shadow
    mirroring. The pool is a context manager: entering starts every
    engine's micro-batch dispatcher plus the shadow worker.
    """

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._tenants: dict[str, _TenantRuntime] = {}
        self._engines: dict[tuple[str, str, int], ForecastEngine] = {}
        self._lock = threading.Lock()
        self._shadow_queue: "queue.Queue[tuple[str, int, Forecast] | None]" = (
            queue.Queue(maxsize=64)
        )
        self._shadow_worker: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Metric helpers (always tenant-labelled; values escaped)
    # ------------------------------------------------------------------
    def _fleet_labels(self, tenant: str) -> dict | None:
        """``{"tenant": name}`` — or ``None`` for a legacy unlabeled tenant.

        Single-tenant compat pools register their one tenant with empty
        labels; their scrape output must stay byte-identical to the
        pre-fleet stack, so no ``fleet/*`` series are emitted for them.
        """
        runtime = self._tenants.get(tenant)
        if runtime is not None and not runtime.labels:
            return None
        return {"tenant": tenant}

    def _counter(self, base: str, tenant: str):
        labels = self._fleet_labels(tenant)
        if labels is None:
            return _NULL_METRIC
        return self.registry.counter(base + label_block(labels))

    def _gauge(self, base: str, tenant: str):
        labels = self._fleet_labels(tenant)
        if labels is None:
            return _NULL_METRIC
        return self.registry.gauge(base + label_block(labels))

    def _divergence_histogram(self, tenant: str):
        labels = self._fleet_labels(tenant)
        if labels is None:
            return _NULL_METRIC
        return self.registry.histogram(
            "fleet/shadow_divergence" + label_block(labels),
            buckets=DIVERGENCE_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------
    def add_tenant(
        self,
        name: str,
        bundle: ModelBundle,
        config: ServeConfig | None = None,
        quota_rps: float = 0.0,
        quota_burst: float = 10.0,
        bundle_ref: str = "<in-memory>",
        labels: dict[str, str] | None = None,
        engine_name: str | None = None,
        store: StateStore | None = None,
        engine: ForecastEngine | None = None,
        monitor: QualityMonitor | None = None,
        quota_clock=None,
    ) -> "_TenantRuntime":
        """Register a tenant and build (or adopt) its runtime.

        ``labels`` defaults to ``{"tenant": name}``; pass ``{}`` to keep
        the unlabelled single-engine metric names (the legacy
        ``ServeApp`` compatibility path). ``store``/``engine``/
        ``monitor`` allow adopting pre-built components; anything not
        supplied is created from the bundle and ``config``.
        """
        with self._lock:
            if name in self._tenants:
                raise ConfigError(f"tenant {name!r} already registered")
        config = config if config is not None else ServeConfig()
        labels = {"tenant": name} if labels is None else dict(labels)
        if engine_name is None:
            engine_name = f"model:{name}" if labels else "model"
        if store is None:
            store = bundle.make_store(registry=self.registry)
        if engine is None:
            engine = ForecastEngine(
                model=bundle.model,
                scaler=bundle.scaler,
                store=store,
                max_batch_size=config.max_batch_size,
                max_wait_s=config.max_wait_s,
                cache_size=config.cache_size,
                registry=self.registry,
                tracer=self.tracer,
                policy=config.resilience,
                labels=labels,
                name=engine_name,
                plan=config.plan_enabled,
                cache_token=bundle.fingerprint,
            )
        if monitor is None:
            monitor = QualityMonitor(
                num_nodes=bundle.num_nodes,
                train_mean=bundle.scaler.mean_,
                train_std=bundle.scaler.std_,
                thresholds=config.quality,
                registry=self.registry,
                labels=labels,
            )
        quota = (
            TenantQuota(quota_rps, quota_burst, clock=quota_clock)
            if quota_rps > 0
            else None
        )
        runtime = _TenantRuntime(
            name=name,
            bundle=bundle,
            bundle_ref=bundle_ref,
            config=config,
            store=store,
            engine=engine,
            monitor=monitor,
            quota=quota,
            labels=labels,
        )
        with self._lock:
            if name in self._tenants:
                raise ConfigError(f"tenant {name!r} already registered")
            self._tenants[name] = runtime
            self._engines[runtime.key] = engine
        return runtime

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def runtime(self, name: str) -> _TenantRuntime:
        try:
            return self._tenants[name]
        except KeyError:
            raise ConfigError(f"no tenant named {name!r} in the pool") from None

    def engines(self) -> dict[tuple[str, str, int], ForecastEngine]:
        """The live registry view: ``(tenant, bundle-id, version) → engine``."""
        with self._lock:
            return dict(self._engines)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EnginePool":
        for runtime in list(self._tenants.values()):
            runtime.engine.start()
        if self._shadow_worker is None or not self._shadow_worker.is_alive():
            self._shadow_worker = threading.Thread(
                target=self._shadow_loop, name="fleet-shadow", daemon=True
            )
            self._shadow_worker.start()
        return self

    def stop(self) -> None:
        if self._shadow_worker is not None and self._shadow_worker.is_alive():
            self._shadow_queue.put(None)
            self._shadow_worker.join()
        self._shadow_worker = None
        for runtime in list(self._tenants.values()):
            runtime.engine.stop()
            for candidate in (runtime.shadow, runtime.canary):
                if candidate is not None:
                    candidate.runtime.engine.stop()

    def __enter__(self) -> "EnginePool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Observation path
    # ------------------------------------------------------------------
    def observe(self, tenant: str, step: int, values, mask=None) -> bool:
        """Feed one full reading into the tenant's store (and mirrors)."""
        runtime = self.runtime(tenant)
        accepted = runtime.store.observe(step, values, mask)
        self._mirror_observe(runtime, "observe", step, values, mask)
        return accepted

    def observe_sensor(self, tenant: str, step: int, node: int, features) -> bool:
        """Feed one per-sensor reading into the tenant's store (and mirrors)."""
        runtime = self.runtime(tenant)
        accepted = runtime.store.observe_sensor(step, node, features)
        self._mirror_observe(runtime, "observe_sensor", step, node, features)
        return accepted

    def _mirror_observe(self, runtime: _TenantRuntime, method: str, *args) -> None:
        """Keep candidate stores warm when they cannot share the primary."""
        for candidate in (runtime.shadow, runtime.canary):
            if candidate is None or candidate.runtime.shares_store:
                continue
            try:
                getattr(candidate.runtime.store, method)(*args)
            except ServeError:
                pass  # a candidate with incompatible shapes skips the reading

    # ------------------------------------------------------------------
    # Forecast path
    # ------------------------------------------------------------------
    def forecast(
        self, tenant: str, horizon: int | None = None, timeout: float | None = 30.0
    ) -> Forecast:
        """Answer one tenant request: quota → canary routing → shadow mirror."""
        runtime = self.runtime(tenant)
        self._counter("fleet/requests", tenant).inc()
        if runtime.quota is not None and not runtime.quota.try_acquire():
            self._counter("fleet/quota_rejected", tenant).inc()
            raise QuotaExceeded(
                f"tenant {tenant!r} is over its request quota "
                f"({runtime.quota.snapshot()['rate_per_s']:g} req/s)"
            )

        canary = runtime.canary
        routed_to_candidate = False
        if canary is not None and canary.state == CANARY_RUNNING:
            with canary.lock:
                routed_to_candidate = (
                    canary.state == CANARY_RUNNING
                    and canary.rng.random() < canary.weight
                )

        if routed_to_candidate:
            result = self._forecast_candidate(runtime, canary, horizon, timeout)
        else:
            result = runtime.engine.forecast(horizon=horizon, timeout=timeout)
            if canary is not None and canary.state == CANARY_RUNNING:
                self._check_canary_health(runtime, canary)

        shadow = runtime.shadow
        if shadow is not None:
            with shadow.lock:
                mirror = shadow.rng.random() < shadow.config.mirror_fraction
            if mirror:
                self._enqueue_shadow(runtime, result)
        return result

    def _forecast_candidate(
        self,
        runtime: _TenantRuntime,
        canary: _CanaryState,
        horizon: int | None,
        timeout: float | None,
    ) -> Forecast:
        """Serve one canary-routed request; the stable engine backstops.

        A candidate failure (or degraded answer) is recorded against the
        rollout and the request is re-answered by the stable engine, so
        a sick canary can never fail live traffic.
        """
        self._counter("fleet/canary_requests", runtime.name).inc()
        try:
            result = canary.runtime.engine.forecast(horizon=horizon, timeout=timeout)
            ok = result.degraded is None
        except QuotaExceeded:
            raise
        except Exception:
            ok = False
            result = None
        self._record_canary(runtime, canary, ok)
        self._check_canary_health(runtime, canary)
        if result is None or result.degraded is not None:
            return runtime.engine.forecast(horizon=horizon, timeout=timeout)
        return result

    # ------------------------------------------------------------------
    # Canary rollout
    # ------------------------------------------------------------------
    def start_canary(
        self,
        tenant: str,
        config: CanaryConfig,
        bundle: ModelBundle | None = None,
        model=None,
        store: StateStore | None = None,
    ) -> dict:
        """Begin a staged rollout of a candidate bundle for ``tenant``.

        ``bundle`` defaults to loading ``config.bundle`` from disk.
        ``model``/``store`` override the candidate's components (tests
        and the chaos harness wrap them in fault injectors).
        """
        runtime = self.runtime(tenant)
        with runtime.lock:
            if runtime.canary is not None and runtime.canary.state == CANARY_RUNNING:
                raise ConfigError(f"tenant {tenant!r} already has a running canary")
            if runtime.shadow is not None:
                raise ConfigError(
                    f"tenant {tenant!r} has a shadow deployment; stop it before "
                    "starting a canary"
                )
            candidate = self._make_candidate(
                runtime, config.bundle, bundle, model, store, role="canary",
                with_monitor=True,
            )
            slo = None
            if config.slo_target is not None:
                # Canary-scale windows (seconds, not hours): a rollout
                # decision cannot wait for the serving SLO's 1h window.
                slo = SLOTracker(
                    Objective(
                        name=f"canary:{tenant}",
                        target=config.slo_target,
                        kind="availability",
                        description="canary candidate availability",
                    ),
                    rules=(
                        BurnRule(
                            "canary",
                            short_s=config.slo_fast_s,
                            long_s=config.slo_slow_s,
                            burn_threshold=config.slo_burn_threshold,
                            min_events=max(1, config.min_failure_samples),
                        ),
                    ),
                )
            canary = _CanaryState(
                config=config,
                runtime=candidate,
                rng=np.random.default_rng(config.seed),
                slo=slo,
            )
            runtime.canary = canary
        if runtime.engine.running:
            candidate.engine.start()
        self._publish_canary(runtime.name, canary)
        return canary.snapshot()

    def _record_canary(
        self, runtime: _TenantRuntime, canary: _CanaryState, ok: bool
    ) -> None:
        promote = False
        with canary.lock:
            if canary.state != CANARY_RUNNING:
                return
            if canary.slo is not None:
                canary.slo.record(ok)
            if ok:
                canary.stage_successes += 1
                canary.total_successes += 1
            else:
                canary.stage_failures += 1
                canary.total_failures += 1
                self._counter("fleet/canary_failures", runtime.name).inc()
            config = canary.config
            stage_total = canary.stage_successes + canary.stage_failures
            if (
                stage_total >= config.min_failure_samples
                and stage_total > 0
                and canary.stage_failures / stage_total > config.max_failure_ratio
            ):
                self._rollback_locked(
                    runtime, canary,
                    f"failure ratio {canary.stage_failures}/{stage_total} exceeded "
                    f"{config.max_failure_ratio:g}",
                )
                return
            if canary.stage_successes >= config.stage_requests:
                if canary.stage_index + 1 < len(config.stages):
                    canary.stage_index += 1
                    canary.stage_successes = 0
                    canary.stage_failures = 0
                else:
                    promote = True
        if promote:
            self._promote(runtime, canary)
        self._publish_canary(runtime.name, canary)

    def _check_canary_health(
        self, runtime: _TenantRuntime, canary: _CanaryState
    ) -> None:
        """SLO-burn, breaker and quality rollback triggers, per request."""
        with canary.lock:
            if canary.state != CANARY_RUNNING:
                return
            # SLO burn first, so the rollback reason cites the budget
            # burn even when the breaker trips in the same window.
            if canary.slo is not None and canary.slo.burning():
                burns = canary.slo.active_burns()
                rate = burns[0]["burn_short"] if burns else 0.0
                self._rollback_locked(
                    runtime, canary,
                    f"candidate SLO burn: error-budget burn rate {rate:.1f}x "
                    f"crossed {canary.config.slo_burn_threshold:g}x "
                    f"(target {canary.config.slo_target:g})",
                )
                # Publish now: the canary stops recording after rollback,
                # so this is the scrape that lands the burn-event counter
                # and burning gauge in the registry.
                self._publish_canary(runtime.name, canary)
                return
            breaker = canary.runtime.engine.breaker
            if breaker is not None and breaker.state == "open":
                self._rollback_locked(
                    runtime, canary, "candidate circuit breaker opened"
                )
                return
            monitor = canary.runtime.monitor
            if monitor is not None and canary.runtime.store.warm:
                report = monitor.update(
                    canary.runtime.store.window(), store=canary.runtime.store
                )
                if report.degraded:
                    self._rollback_locked(
                        runtime, canary,
                        "candidate quality degraded: " + "; ".join(report.reasons[:3]),
                    )
                    return
        self._publish_canary(runtime.name, canary)

    def _rollback_locked(
        self, runtime: _TenantRuntime, canary: _CanaryState, reason: str
    ) -> None:
        """Mark the canary rolled back (``canary.lock`` already held)."""
        canary.state = CANARY_ROLLED_BACK
        canary.reason = reason
        self._counter("fleet/rollbacks", runtime.name).inc()

    def rollback_canary(self, tenant: str, reason: str = "manual rollback") -> dict:
        """Operator-initiated rollback via ``POST /rollouts``."""
        runtime = self.runtime(tenant)
        canary = runtime.canary
        if canary is None:
            raise ConfigError(f"tenant {tenant!r} has no canary rollout")
        with canary.lock:
            if canary.state == CANARY_RUNNING:
                self._rollback_locked(runtime, canary, reason)
        self._publish_canary(tenant, canary)
        return canary.snapshot()

    def _promote(self, runtime: _TenantRuntime, canary: _CanaryState) -> None:
        """Swap the candidate in as the tenant's primary runtime."""
        with runtime.lock, canary.lock:
            if canary.state != CANARY_RUNNING:
                return
            canary.state = CANARY_PROMOTED
            canary.reason = "served every stage cleanly"
            old_engine = runtime.engine
            candidate = canary.runtime
            with self._lock:
                self._engines.pop(runtime.key, None)
                runtime.bundle = candidate.bundle
                runtime.bundle_ref = canary.config.bundle
                runtime.store = candidate.store
                runtime.engine = candidate.engine
                if candidate.monitor is not None:
                    runtime.monitor = candidate.monitor
                runtime.version += 1
                self._engines[runtime.key] = runtime.engine
        self._counter("fleet/promotions", runtime.name).inc()
        if old_engine.running:
            runtime.engine.start()
        old_engine.stop()

    def promote_canary(self, tenant: str) -> dict:
        """Operator-initiated immediate promotion via ``POST /rollouts``."""
        runtime = self.runtime(tenant)
        canary = runtime.canary
        if canary is None:
            raise ConfigError(f"tenant {tenant!r} has no canary rollout")
        self._promote(runtime, canary)
        self._publish_canary(tenant, canary)
        return canary.snapshot()

    def _publish_canary(self, tenant: str, canary: _CanaryState) -> None:
        self._gauge("fleet/canary_weight", tenant).set(canary.weight)
        self._gauge("fleet/canary_stage", tenant).set(float(canary.stage_index))
        if canary.slo is not None:
            labels = self._fleet_labels(tenant)
            if labels is not None:
                canary.slo.publish(self.registry, labels=label_block(labels))

    # ------------------------------------------------------------------
    # Shadow deployment
    # ------------------------------------------------------------------
    def start_shadow(
        self,
        tenant: str,
        config: ShadowConfig,
        bundle: ModelBundle | None = None,
        model=None,
        store: StateStore | None = None,
    ) -> dict:
        """Mirror a fraction of ``tenant``'s traffic to a candidate bundle."""
        runtime = self.runtime(tenant)
        with runtime.lock:
            if runtime.shadow is not None:
                raise ConfigError(f"tenant {tenant!r} already has a shadow deployment")
            candidate = self._make_candidate(
                runtime, config.bundle, bundle, model, store, role="shadow",
                with_monitor=False,
            )
            runtime.shadow = _ShadowState(
                config=config,
                runtime=candidate,
                rng=np.random.default_rng(config.seed),
            )
        return runtime.shadow.snapshot()

    def stop_shadow(self, tenant: str) -> dict:
        runtime = self.runtime(tenant)
        with runtime.lock:
            shadow = runtime.shadow
            if shadow is None:
                raise ConfigError(f"tenant {tenant!r} has no shadow deployment")
            runtime.shadow = None
        shadow.runtime.engine.stop()
        return shadow.snapshot()

    def _enqueue_shadow(self, runtime: _TenantRuntime, live: Forecast) -> None:
        """Queue one mirror replay; never blocks the live request."""
        shadow = runtime.shadow
        if shadow is None:
            return
        try:
            # Capture the live request's span context here, on the
            # request thread — the contextvar does not cross into the
            # shadow worker, so the mirror span re-parents explicitly.
            self._shadow_queue.put_nowait(
                (runtime.name, live.horizon, live, Tracer.current_context())
            )
        except queue.Full:
            with shadow.lock:
                shadow.dropped += 1
            self._counter("fleet/shadow_dropped", runtime.name).inc()

    def _shadow_loop(self) -> None:
        while True:
            item = self._shadow_queue.get()
            try:
                if item is None:
                    return
                self._mirror_one(*item)
            finally:
                self._shadow_queue.task_done()

    def _mirror_one(
        self, tenant: str, horizon: int, live: Forecast, parent=None
    ) -> None:
        try:
            runtime = self._tenants[tenant]
        except KeyError:
            return
        shadow = runtime.shadow
        if shadow is None:
            return
        self._counter("fleet/shadow_mirrored", tenant).inc()
        with shadow.lock:
            shadow.mirrored += 1
        try:
            with self.tracer.span(
                "shadow_mirror",
                parent=parent,
                attributes={"tenant": tenant, "role": "shadow"},
            ):
                mirrored = shadow.runtime.engine.forecast(
                    horizon=horizon, timeout=None
                )
        except Exception:
            with shadow.lock:
                shadow.errors += 1
            self._counter("fleet/shadow_errors", tenant).inc()
            return
        if mirrored.prediction.shape != live.prediction.shape:
            with shadow.lock:
                shadow.errors += 1
            self._counter("fleet/shadow_errors", tenant).inc()
            return
        divergence = float(
            np.mean(np.abs(mirrored.prediction - live.prediction))
        )
        with shadow.lock:
            shadow.compared += 1
            shadow.divergence_sum += divergence
            shadow.divergence_max = max(shadow.divergence_max, divergence)
        self._divergence_histogram(tenant).observe(divergence)

    def drain_shadow(self, timeout: float = 5.0) -> bool:
        """Block until queued *and in-flight* mirror work is done.

        Returns ``True`` once the shadow worker is idle, ``False`` on
        timeout (mirror work still running).
        """
        import time as _time

        deadline = _time.monotonic() + timeout
        while _time.monotonic() < deadline:
            with self._shadow_queue.all_tasks_done:
                if self._shadow_queue.unfinished_tasks == 0:
                    return True
            _time.sleep(0.005)
        return False

    # ------------------------------------------------------------------
    # Candidate construction
    # ------------------------------------------------------------------
    def _make_candidate(
        self,
        runtime: _TenantRuntime,
        bundle_ref: str,
        bundle: ModelBundle | None,
        model,
        store: StateStore | None,
        role: str,
        with_monitor: bool,
    ) -> _CandidateRuntime:
        if bundle is None:
            bundle = load_bundle(bundle_ref)
        candidate_model = model if model is not None else bundle.model
        shares_store = store is None and (
            bundle.num_nodes == runtime.store.num_nodes
            and bundle.num_features == runtime.store.num_features
            and bundle.input_length == runtime.store.input_length
        )
        if store is None:
            store = runtime.store if shares_store else bundle.make_store(
                registry=self.registry
            )
        else:
            shares_store = store is runtime.store
        labels = {**runtime.labels, "role": role}
        engine = ForecastEngine(
            model=candidate_model,
            scaler=bundle.scaler,
            store=store,
            max_batch_size=runtime.config.max_batch_size,
            max_wait_s=runtime.config.max_wait_s,
            cache_size=runtime.config.cache_size,
            registry=self.registry,
            tracer=self.tracer,
            policy=runtime.config.resilience,
            labels=labels,
            name=f"{role}:{runtime.name}",
            plan=runtime.config.plan_enabled,
            cache_token=bundle.fingerprint,
        )
        monitor = None
        if with_monitor:
            monitor = QualityMonitor(
                num_nodes=bundle.num_nodes,
                train_mean=bundle.scaler.mean_,
                train_std=bundle.scaler.std_,
                thresholds=runtime.config.quality,
                registry=self.registry,
                labels=labels,
            )
        return _CandidateRuntime(
            bundle=bundle,
            store=store,
            engine=engine,
            shares_store=shares_store,
            monitor=monitor,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def tenant_snapshot(self, name: str) -> dict:
        runtime = self.runtime(name)
        return {
            "tenant": runtime.name,
            "bundle_id": runtime.bundle_id,
            "bundle": runtime.bundle_ref,
            "version": runtime.version,
            "model": runtime.bundle.model_name,
            "warm": runtime.store.warm,
            "state_version": runtime.store.version,
            "newest_step": runtime.store.newest_step,
            "queue_depth": runtime.engine.queue_depth,
            "quota": runtime.quota.snapshot() if runtime.quota else None,
            "shadow": runtime.shadow is not None,
            "canary": (
                runtime.canary.state if runtime.canary is not None else None
            ),
        }

    def tenants_snapshot(self) -> dict:
        return {name: self.tenant_snapshot(name) for name in self.tenants()}

    def canary_slo_snapshots(self) -> dict:
        """Per-tenant canary SLO tracker snapshots for ``GET /slo``."""
        out: dict = {}
        for name in self.tenants():
            runtime = self.runtime(name)
            canary = runtime.canary
            if canary is not None and canary.slo is not None:
                out[name] = {
                    "state": canary.state,
                    "reason": canary.reason,
                    "slo": canary.slo.snapshot(),
                }
        return out

    def rollouts_snapshot(self) -> dict:
        out: dict = {}
        for name in self.tenants():
            runtime = self.runtime(name)
            entry: dict = {}
            if runtime.shadow is not None:
                entry["shadow"] = runtime.shadow.snapshot()
            if runtime.canary is not None:
                entry["canary"] = runtime.canary.snapshot()
            if entry:
                entry["version"] = runtime.version
                out[name] = entry
        return out


def build_pool(
    fleet: FleetConfig,
    base_dir: str | None = None,
    registry: MetricRegistry | None = None,
    tracer: Tracer | None = None,
    bundles: dict[str, ModelBundle] | None = None,
) -> EnginePool:
    """Materialise an :class:`EnginePool` from a :class:`FleetConfig`.

    ``bundles`` optionally maps bundle refs to pre-loaded bundles (the
    manifest loader and tests use it); anything missing is loaded from
    disk, resolving relative paths against ``base_dir``.
    """
    import os

    bundles = dict(bundles) if bundles else {}

    def resolve(ref: str) -> ModelBundle:
        if ref in bundles:
            return bundles[ref]
        path = ref
        if base_dir is not None and not os.path.isabs(path):
            path = os.path.join(base_dir, path)
        bundles[ref] = load_bundle(path)
        return bundles[ref]

    pool = EnginePool(registry=registry, tracer=tracer)
    for tenant in fleet.tenants:
        config = tenant.config if tenant.config is not None else fleet.default
        pool.add_tenant(
            tenant.name,
            resolve(tenant.bundle),
            config=config,
            quota_rps=tenant.quota_rps,
            quota_burst=tenant.quota_burst,
            bundle_ref=tenant.bundle,
        )
        if tenant.shadow is not None:
            pool.start_shadow(
                tenant.name, tenant.shadow, bundle=resolve(tenant.shadow.bundle)
            )
        if tenant.canary is not None:
            pool.start_canary(
                tenant.name, tenant.canary, bundle=resolve(tenant.canary.bundle)
            )
    # The default tenant of a single-tenant fleet keeps today's
    # unlabelled metric names only when built through ServeApp's legacy
    # constructor; manifest-built pools always label by tenant.
    return pool
