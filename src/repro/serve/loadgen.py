"""Closed-loop load generation against a :class:`ForecastEngine`.

Each simulated client alternates *observe one sensor → request one
forecast*, so consecutive requests see fresh state versions (forecasts
cannot all collapse into the LRU cache) and concurrent clients give the
dispatcher real fusion opportunities. The generator drives the engine
directly — no HTTP in the measured path — so the numbers isolate the
serving core: batching, no-grad forwards, cache, locks.

:func:`compare_batched_sequential` runs the same workload twice, against
a micro-batching engine and a ``max_batch_size=1`` baseline, which is
the committed ``BENCH_serve_latency`` comparison.

:func:`run_chaos_soak` is the availability harness: it wraps a bundle's
model and store in the seeded fault injectors from
:mod:`repro.reliability.chaos`, drives the full :class:`ServeApp`
request path (status codes, headers and all, minus sockets) with
concurrent clients, and reports availability, degradation tagging and
crash counts — the numbers the chaos-smoke CI job gates on.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..reliability import ChaosModel, ChaosStore, FaultPlan, ResiliencePolicy
from ..telemetry import MetricRegistry
from .artifact import ModelBundle
from .config import ServeConfig
from .engine import ForecastEngine

__all__ = [
    "LoadReport",
    "run_load",
    "compare_batched_sequential",
    "SoakReport",
    "make_chaos_app",
    "run_chaos_soak",
    "run_fleet_smoke",
    "run_slo_smoke",
    "open_loop_arrivals",
    "zipf_node_sampler",
    "ClusterLoadReport",
    "run_cluster_load",
]


@dataclass
class LoadReport:
    """Aggregate result of one closed-loop run."""

    mode: str  # "batched" | "sequential"
    num_clients: int
    requests: int
    errors: int
    duration_s: float
    throughput_rps: float
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    forwards: int
    batches: int
    mean_batch_size: float
    cache_hits: int
    cache_hit_ratio: float

    def to_json_dict(self) -> dict:
        return asdict(self)


def run_load(
    engine: ForecastEngine,
    mode: str,
    num_clients: int = 8,
    requests_per_client: int = 40,
    horizon: int | None = None,
    seed: int = 0,
    value_scale: float = 60.0,
) -> LoadReport:
    """Drive ``engine`` with ``num_clients`` closed-loop client threads.

    Each client owns a disjoint set of sensors it feeds round-robin with
    synthetic readings at advancing steps, requesting a forecast after
    every observation. Latencies are wall-clock per forecast call.
    """
    store = engine.store
    latencies: list[list[float]] = [[] for _ in range(num_clients)]
    errors = [0] * num_clients
    next_step = [store.newest_step + 1]
    step_lock = threading.Lock()
    start_barrier = threading.Barrier(num_clients + 1)

    def client(idx: int) -> None:
        rng = np.random.default_rng(seed + idx)
        start_barrier.wait()
        for _ in range(requests_per_client):
            with step_lock:
                step = next_step[0]
                next_step[0] += 1
            node = int(rng.integers(store.num_nodes))
            features = rng.normal(value_scale, 5.0, size=store.num_features)
            store.observe_sensor(step, node, features)
            begin = time.perf_counter()
            try:
                engine.forecast(horizon=horizon)
            except Exception:
                errors[idx] += 1
                continue
            latencies[idx].append((time.perf_counter() - begin) * 1e3)

    threads = [
        threading.Thread(target=client, args=(idx,), daemon=True)
        for idx in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - begin

    flat = np.array([ms for per_client in latencies for ms in per_client])
    total = int(flat.size)
    registry = engine.registry
    batches = int(registry.counter("serve/batches").value)
    batch_hist = registry.histogram("serve/batch_size")
    cache_hits = int(registry.counter("serve/cache_hits").value)
    answered = int(registry.counter("serve/requests").value)
    return LoadReport(
        mode=mode,
        num_clients=num_clients,
        requests=total,
        errors=int(sum(errors)),
        duration_s=float(duration),
        throughput_rps=float(total / duration) if duration > 0 else 0.0,
        latency_ms_mean=float(flat.mean()) if total else 0.0,
        latency_ms_p50=float(np.percentile(flat, 50)) if total else 0.0,
        latency_ms_p95=float(np.percentile(flat, 95)) if total else 0.0,
        latency_ms_p99=float(np.percentile(flat, 99)) if total else 0.0,
        forwards=int(registry.counter("serve/forwards").value),
        batches=batches,
        mean_batch_size=float(batch_hist.mean),
        cache_hits=cache_hits,
        cache_hit_ratio=float(cache_hits / answered) if answered else 0.0,
    )


def compare_batched_sequential(
    bundle: ModelBundle,
    num_clients: int = 8,
    requests_per_client: int = 40,
    max_batch_size: int = 8,
    max_wait_s: float = 0.005,
    seed: int = 0,
    plan: bool = True,
) -> dict:
    """The headline serving benchmark: micro-batched vs sequential.

    Both runs use identical fresh stores and workloads; the sequential
    baseline is the same engine restricted to ``max_batch_size=1`` (one
    forward per request, same threading and cache). ``plan=False`` pins
    both engines to the eager forward, isolating the micro-batching
    effect from traced-plan acceleration. Returns a dict of two
    :class:`LoadReport` payloads plus the throughput ratio.
    """
    reports = {}
    for mode, batch_size, wait in (
        ("sequential", 1, 0.0),
        ("batched", max_batch_size, max_wait_s),
    ):
        engine = ForecastEngine(
            model=bundle.model,
            scaler=bundle.scaler,
            store=bundle.make_store(),
            max_batch_size=batch_size,
            max_wait_s=wait,
            registry=MetricRegistry(),  # isolate counters per run
            plan=plan,
        )
        with engine:
            reports[mode] = run_load(
                engine,
                mode=mode,
                num_clients=num_clients,
                requests_per_client=requests_per_client,
                seed=seed,
            )
    ratio = (
        reports["batched"].throughput_rps / reports["sequential"].throughput_rps
        if reports["sequential"].throughput_rps > 0
        else 0.0
    )
    return {
        "sequential": reports["sequential"].to_json_dict(),
        "batched": reports["batched"].to_json_dict(),
        "batched_over_sequential_throughput": float(ratio),
    }


# ----------------------------------------------------------------------
# Chaos soak
# ----------------------------------------------------------------------
@dataclass
class SoakReport:
    """Outcome of one chaos soak: availability, tagging, crash count."""

    requests: int  # total requests issued (observe + forecast)
    forecasts: int
    ok: int  # 2xx responses
    degraded: int  # 200s answered by a fallback rung
    rejected: int  # 429s (load shedding / saturation)
    client_errors: int  # other 4xx
    server_errors: int  # 5xx
    crashes: int  # exceptions escaping the request path
    untagged_degraded: int  # degraded 200s missing header or body tag
    availability: float  # non-5xx share of all responses
    duration_s: float
    fault_plan: dict = field(default_factory=dict)
    injected: dict = field(default_factory=dict)
    fallback: dict = field(default_factory=dict)
    #: sensor-drop scenario JSON ({"pattern", "name", "seed", "params"})
    #: when the plan used a named MissingPattern — the same scenario the
    #: offline gauntlet consumes, so a soak reproduces by name + seed.
    scenario: dict | None = None

    def to_json_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        lines = [
            f"chaos soak: {self.requests} requests "
            f"({self.forecasts} forecasts) in {self.duration_s:.2f}s",
            f"  availability       {self.availability:.2%} "
            f"({self.server_errors} server errors, {self.crashes} crashes)",
            f"  degraded answers   {self.degraded} "
            f"({self.untagged_degraded} missing tags)",
            f"  rejected (backoff) {self.rejected}   "
            f"client errors {self.client_errors}",
            f"  injected faults    {json.dumps(self.injected, sort_keys=True)}",
            f"  fallback rungs     {json.dumps(self.fallback, sort_keys=True)}",
        ]
        if self.scenario:
            lines.append(
                f"  drop scenario      {self.scenario.get('name')} "
                f"({self.scenario.get('pattern')}, seed {self.scenario.get('seed')})"
            )
        return "\n".join(lines)


def make_chaos_app(
    bundle: ModelBundle,
    plan: FaultPlan,
    config: ServeConfig | None = None,
    registry: MetricRegistry | None = None,
):
    """A :class:`ServeApp` whose model and store misbehave per ``plan``.

    Returns ``(app, injector)`` — the injector exposes the fault counts
    for the soak report. The wrappers sit at the two seams the engine
    trusts (model forward, observation path); everything else is the
    production request path.
    """
    from .http import ServeApp  # here to avoid a module-import cycle

    config = config if config is not None else ServeConfig()
    registry = registry if registry is not None else MetricRegistry()
    injector = plan.injector()
    store = ChaosStore(bundle.make_store(registry=registry), injector)
    engine = ForecastEngine(
        model=ChaosModel(bundle.model, injector),
        scaler=bundle.scaler,
        store=store,
        max_batch_size=config.max_batch_size,
        max_wait_s=config.max_wait_s,
        cache_size=config.cache_size,
        registry=registry,
        policy=config.resilience,
    )
    app = ServeApp(
        bundle, store=store, engine=engine, registry=registry, config=config
    )
    return app, injector


def run_chaos_soak(
    app,
    num_clients: int = 4,
    requests_per_client: int = 50,
    seed: int = 0,
    value_scale: float = 60.0,
    injector=None,
) -> SoakReport:
    """Soak ``app`` with concurrent clients while faults fire.

    Each client alternates ``POST /observe`` (one sensor reading) with
    ``GET /forecast`` through ``app.handle`` — the full routing, error
    mapping and header path, minus sockets. Asserting on the report:
    ``crashes`` must be 0 and ``availability`` at target; every degraded
    200 must carry both the ``X-Degraded`` header and the body field
    (``untagged_degraded`` counts violations).
    """
    store = app.store
    counts = [
        {
            "requests": 0, "forecasts": 0, "ok": 0, "degraded": 0,
            "rejected": 0, "client_errors": 0, "server_errors": 0,
            "crashes": 0, "untagged_degraded": 0,
        }
        for _ in range(num_clients)
    ]
    next_step = [store.newest_step + 1]
    step_lock = threading.Lock()
    start_barrier = threading.Barrier(num_clients + 1)

    def tally(c: dict, response, is_forecast: bool) -> None:
        c["requests"] += 1
        status = response.status
        if status >= 500:
            c["server_errors"] += 1
        elif status == 429:
            c["rejected"] += 1
        elif status >= 400:
            c["client_errors"] += 1
        else:
            c["ok"] += 1
            if is_forecast:
                degraded = response.body.get("degraded")
                if degraded:
                    c["degraded"] += 1
                    if response.headers.get("X-Degraded") != degraded:
                        c["untagged_degraded"] += 1
                elif response.headers.get("X-Degraded"):
                    c["untagged_degraded"] += 1

    def client(idx: int) -> None:
        c = counts[idx]
        rng = np.random.default_rng(seed + idx)
        start_barrier.wait()
        for _ in range(requests_per_client):
            with step_lock:
                step = next_step[0]
                next_step[0] += 1
            node = int(rng.integers(store.num_nodes))
            features = rng.normal(value_scale, 5.0, size=store.num_features)
            body = json.dumps(
                {"step": step, "node": node, "features": features.tolist()}
            ).encode()
            try:
                tally(c, app.handle("POST", "/observe", body), False)
            except Exception:
                c["requests"] += 1
                c["crashes"] += 1
            try:
                tally(c, app.handle("GET", "/forecast", None), True)
            except Exception:
                c["requests"] += 1
                c["crashes"] += 1
            c["forecasts"] += 1

    threads = [
        threading.Thread(target=client, args=(idx,), daemon=True)
        for idx in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    app.engine.start()
    start_barrier.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - begin
    app.engine.stop()

    total = {key: sum(c[key] for c in counts) for key in counts[0]}
    registry = app.registry

    def count(name: str) -> int:
        return int(registry.counter(name).value)

    answered = total["requests"]
    bad = total["server_errors"] + total["crashes"]
    return SoakReport(
        requests=answered,
        forecasts=total["forecasts"],
        ok=total["ok"],
        degraded=total["degraded"],
        rejected=total["rejected"],
        client_errors=total["client_errors"],
        server_errors=total["server_errors"],
        crashes=total["crashes"],
        untagged_degraded=total["untagged_degraded"],
        availability=float(1.0 - bad / answered) if answered else 1.0,
        duration_s=float(duration),
        fault_plan=(
            injector.plan.to_json_dict() if injector is not None else {}
        ),
        scenario=injector.plan.scenario if injector is not None else None,
        injected=injector.snapshot() if injector is not None else {},
        fallback={
            "stale": count('serve/fallback{rung="stale"}'),
            "window_mean": count('serve/fallback{rung="window_mean"}'),
            "unavailable": count("serve/unavailable"),
            "shed": count("serve/shed"),
        },
    )


# ----------------------------------------------------------------------
# Fleet smoke
# ----------------------------------------------------------------------
def run_fleet_smoke(
    bundle_a: ModelBundle,
    bundle_b: ModelBundle,
    rounds: int = 120,
    seed: int = 0,
    value_scale: float = 60.0,
    registry: MetricRegistry | None = None,
) -> dict:
    """End-to-end fleet exercise: two tenants, shadow, canary, quota.

    Boots a two-tenant pool (``alpha`` on ``bundle_a``, ``beta`` on
    ``bundle_b``) behind the full :class:`~repro.serve.http.ServeApp`
    request path and checks the rollout machinery in one pass:

    1. a shadow of ``bundle_b`` mirrors all of ``alpha``'s traffic and
       must record divergence comparisons without touching live answers;
    2. a canary of ``bundle_a`` on ``beta`` must **promote** on clean
       traffic (bumping the tenant version);
    3. a canary poisoned by a seeded :class:`~repro.reliability.chaos.
       FaultPlan` on ``alpha`` must **roll back** automatically;
    4. a quota-capped third tenant must get a 429 with ``Retry-After``;
    5. ``/metrics`` must expose per-tenant ``fleet_*`` series.

    Returns a JSON-ready report; ``report["passed"]`` gates CI.
    """
    from .config import CanaryConfig, ShadowConfig
    from .fleet import EnginePool
    from .http import ServeApp

    registry = registry if registry is not None else MetricRegistry()
    pool = EnginePool(registry=registry)
    pool.add_tenant("alpha", bundle_a, bundle_ref="bundle_a")
    pool.add_tenant("beta", bundle_b, bundle_ref="bundle_b")
    pool.add_tenant(
        "gamma", bundle_a, bundle_ref="bundle_a",
        quota_rps=0.001, quota_burst=3.0,
    )
    app = ServeApp(pool=pool)

    rng = np.random.default_rng(seed)
    next_step: dict[str, int] = {}

    def warm(tenant: str) -> None:
        runtime = pool.runtime(tenant)
        store = runtime.store
        for offset in range(store.input_length):
            values = rng.normal(
                value_scale, 5.0, size=(store.num_nodes, store.num_features)
            )
            pool.observe(tenant, offset, values)
        next_step[tenant] = store.newest_step + 1

    def drive(tenant: str, n: int) -> dict:
        counts = {"ok": 0, "rejected": 0, "server_errors": 0, "other": 0}
        runtime = pool.runtime(tenant)
        retry_after = None
        for _ in range(n):
            step = next_step[tenant]
            next_step[tenant] += 1
            values = rng.normal(
                value_scale, 5.0,
                size=(runtime.store.num_nodes, runtime.store.num_features),
            )
            body = json.dumps({"step": step, "values": values.tolist()}).encode()
            app.handle("POST", f"/t/{tenant}/observe", body)
            response = app.handle("GET", f"/t/{tenant}/forecast", None)
            if response.status == 200:
                counts["ok"] += 1
            elif response.status == 429:
                counts["rejected"] += 1
                retry_after = response.headers.get("Retry-After")
            elif response.status >= 500:
                counts["server_errors"] += 1
            else:
                counts["other"] += 1
        counts["retry_after"] = retry_after
        return counts

    report: dict = {"rounds": rounds, "seed": seed}
    with pool:
        for tenant in ("alpha", "beta", "gamma"):
            warm(tenant)

        # 1+2: shadow on alpha while beta's clean canary promotes.
        pool.start_shadow(
            "alpha", ShadowConfig(bundle="bundle_b", mirror_fraction=1.0),
            bundle=bundle_b,
        )
        pool.start_canary(
            "beta",
            CanaryConfig(
                bundle="bundle_a", stages=(0.5, 1.0), stage_requests=5,
                max_failure_ratio=0.5, min_failure_samples=10, seed=seed,
            ),
            bundle=bundle_a,
        )
        report["alpha_traffic"] = drive("alpha", rounds)
        report["beta_traffic"] = drive("beta", rounds)
        pool.drain_shadow()
        report["shadow"] = pool.stop_shadow("alpha")
        beta = pool.runtime("beta")
        report["canary_clean"] = (
            beta.canary.snapshot() if beta.canary is not None else None
        )
        report["beta_version"] = beta.version

        # 3: chaos canary on alpha must roll back, not fail live traffic.
        plan = FaultPlan(seed=seed, error_rate=0.7, corrupt_rate=0.3)
        injector = plan.injector()
        pool.start_canary(
            "alpha",
            CanaryConfig(
                bundle="bundle_b", stages=(0.5, 1.0), stage_requests=50,
                max_failure_ratio=0.2, min_failure_samples=5, seed=seed,
            ),
            bundle=bundle_b,
            model=ChaosModel(bundle_b.model, injector),
        )
        report["alpha_chaos_traffic"] = drive("alpha", rounds)
        alpha = pool.runtime("alpha")
        report["canary_chaos"] = (
            alpha.canary.snapshot() if alpha.canary is not None else None
        )
        report["chaos_injected"] = injector.snapshot()

        # 4: quota exhaustion returns 429 + Retry-After.
        report["gamma_traffic"] = drive("gamma", 8)

        # 5: per-tenant series in the exposition.
        metrics = app.handle("GET", "/metrics", None).body.body
        needed_series = [
            'repro_fleet_requests_total{tenant="alpha"}',
            'repro_fleet_requests_total{tenant="beta"}',
            'repro_fleet_shadow_mirrored_total{tenant="alpha"}',
            'repro_fleet_rollbacks_total{tenant="alpha"}',
            'repro_fleet_promotions_total{tenant="beta"}',
            'repro_fleet_quota_rejected_total{tenant="gamma"}',
        ]
        report["missing_series"] = [s for s in needed_series if s not in metrics]

    checks = {
        "shadow_compared": report["shadow"]["compared"] > 0,
        "canary_promoted": (
            report["canary_clean"] is not None
            and report["canary_clean"]["state"] == "promoted"
            and report["beta_version"] > 1
        ),
        "canary_rolled_back": (
            report["canary_chaos"] is not None
            and report["canary_chaos"]["state"] == "rolled_back"
        ),
        "live_traffic_survived_chaos": (
            report["alpha_chaos_traffic"]["server_errors"] == 0
        ),
        "quota_429_with_retry_after": (
            report["gamma_traffic"]["rejected"] > 0
            and report["gamma_traffic"]["retry_after"] is not None
        ),
        "per_tenant_metrics": not report["missing_series"],
    }
    report["checks"] = checks
    report["passed"] = all(checks.values())
    return report


# ----------------------------------------------------------------------
# SLO smoke
# ----------------------------------------------------------------------
def run_slo_smoke(
    bundle: ModelBundle,
    rounds: int = 30,
    seed: int = 0,
    value_scale: float = 60.0,
    registry: MetricRegistry | None = None,
) -> dict:
    """Seeded-fault SLO exercise: a burn event fires, clears, and gates a canary.

    Drives the full :class:`~repro.serve.http.ServeApp` request path in
    four phases against a single labelled tenant whose model sits behind
    a seeded :class:`~repro.reliability.chaos.FaultInjector`:

    1. **healthy** — clean traffic; nothing may burn;
    2. **fault** — the injector's plan is swapped to a high error rate,
       so forecasts fall back to degraded answers and a burn event must
       fire (visible on ``GET /slo`` and as ``repro_slo_*`` series on
       ``/metrics``);
    3. **recovery** — the benign plan is restored and the clock jumps
       past the short window, so the event must resolve;
    4. **canary gate** — a canary rollout whose candidate model errors
       must be rolled back by the SLO-burn gate (the failure-*ratio*
       threshold is set so high it cannot be the trigger), with the
       rollback reason citing the burn and the ``canary:alpha`` tracker
       series landing on ``/metrics``.

    The app-level SLO engine runs on an injected clock with compressed
    windows (60s/600s), so phases 1–3 are deterministic and take no wall
    time; the canary tracker uses its production defaults on the real
    clock, which the request loop outruns by orders of magnitude.

    Returns a JSON-ready report; ``report["passed"]`` gates CI.
    """
    from ..telemetry.slo import BurnRule, SLOEngine, default_serving_objectives
    from .config import CanaryConfig
    from .fleet import EnginePool
    from .http import ServeApp

    registry = registry if registry is not None else MetricRegistry()

    # Injectable clock: requests are stamped by hand, and "waiting out"
    # the short window is a single assignment, not a real 60s sleep.
    clock = [0.0]
    slo = SLOEngine(
        default_serving_objectives(),
        rules=(
            BurnRule(
                "fast", short_s=60.0, long_s=600.0,
                burn_threshold=2.0, min_events=10,
            ),
        ),
        clock=lambda: clock[0],
        bucket_s=5.0,
    )

    # Benign plan first; swapping ``injector.plan`` mid-run toggles the
    # fault without rebuilding the engine (the injector re-reads it per
    # decision).
    injector = FaultPlan(seed=seed).injector()
    # Breaker off for the live tenant: its open window is real seconds,
    # which would keep recovery-phase answers degraded long after the
    # fault plan is restored. The smoke tests SLO window math, and the
    # clock it controls is the SLO engine's — not the breaker's.
    config = ServeConfig(
        resilience=ResiliencePolicy(breaker=False),
    )
    store = ChaosStore(bundle.make_store(registry=registry), injector)
    pool = EnginePool(registry=registry)
    engine = ForecastEngine(
        model=ChaosModel(bundle.model, injector),
        scaler=bundle.scaler,
        store=store,
        max_batch_size=config.max_batch_size,
        max_wait_s=config.max_wait_s,
        cache_size=config.cache_size,
        registry=registry,
        policy=config.resilience,
        labels={"tenant": "alpha"},
        name="model:alpha",
    )
    pool.add_tenant(
        "alpha", bundle, config=config, bundle_ref="bundle_a",
        store=store, engine=engine,
    )
    app = ServeApp(pool=pool, slo=slo)

    rng = np.random.default_rng(seed)
    runtime = pool.runtime("alpha")
    next_step = [0]

    def drive(n: int, tick_s: float = 2.0) -> dict:
        counts = {"ok": 0, "degraded": 0, "rejected": 0, "server_errors": 0}
        for _ in range(n):
            clock[0] += tick_s
            step = next_step[0]
            next_step[0] += 1
            values = rng.normal(
                value_scale, 5.0,
                size=(runtime.store.num_nodes, runtime.store.num_features),
            )
            body = json.dumps({"step": step, "values": values.tolist()}).encode()
            app.handle("POST", "/t/alpha/observe", body)
            response = app.handle("GET", "/t/alpha/forecast", None)
            if response.status == 200:
                counts["ok"] += 1
                if response.headers.get("X-Degraded"):
                    counts["degraded"] += 1
            elif response.status == 429:
                counts["rejected"] += 1
            elif response.status >= 500:
                counts["server_errors"] += 1
        return counts

    def series_value(text: str, series: str) -> float | None:
        for line in text.splitlines():
            if line.startswith(series + " "):
                return float(line.split(" # ")[0].rsplit(" ", 1)[-1])
        return None

    report: dict = {"rounds": rounds, "seed": seed}
    with pool:
        for offset in range(runtime.store.input_length):
            values = rng.normal(
                value_scale, 5.0,
                size=(runtime.store.num_nodes, runtime.store.num_features),
            )
            pool.observe("alpha", offset, values)
        next_step[0] = runtime.store.newest_step + 1

        # 1: clean traffic leaves every objective quiet.
        report["healthy_traffic"] = drive(rounds)
        report["healthy_burning"] = slo.burning()

        # 2: seeded fault — forecasts degrade, a burn event must fire.
        injector.plan = FaultPlan(seed=seed, error_rate=0.9)
        report["fault_traffic"] = drive(rounds)
        report["burning_during_fault"] = slo.burning()
        during = app.handle("GET", "/metrics", None).body.body
        report["burning_gauges_during_fault"] = {
            name: series_value(during, f'repro_slo_burning{{slo="{name}"}}')
            for name in report["burning_during_fault"]
        }
        slo_during = app.handle("GET", "/slo", None)
        report["slo_endpoint_during_fault"] = {
            "status": slo_during.status,
            "burning": slo_during.body["slo"]["burning"],
        }

        # 3: restore the benign plan and jump past the short window —
        # the short-window burn rate collapses to 0 and the event clears.
        injector.plan = FaultPlan(seed=seed)
        clock[0] += 120.0
        report["recovery_traffic"] = drive(rounds, tick_s=1.0)
        report["burning_after_recovery"] = slo.burning()
        report["burn_events_total"] = sum(
            tracker.fired_total for tracker in slo.trackers.values()
        )
        report["resolved_events"] = sum(
            1
            for tracker in slo.trackers.values()
            for event in tracker.events
            if event["state"] == "resolved"
        )

        # 4: a canary whose candidate errors must be SLO-gated. The
        # failure-ratio trigger is parked at 0.99 so the burn gate — not
        # the ratio check — is what rolls the stage back.
        canary_injector = FaultPlan(seed=seed + 1, error_rate=0.5).injector()
        pool.start_canary(
            "alpha",
            CanaryConfig(
                bundle="bundle_b", stages=(1.0,), stage_requests=10_000,
                max_failure_ratio=0.99, min_failure_samples=5, seed=seed,
            ),
            bundle=bundle,
            model=ChaosModel(bundle.model, canary_injector),
        )
        report["canary_traffic"] = drive(rounds)
        canary = runtime.canary
        report["canary"] = canary.snapshot() if canary is not None else None

        slo_response = app.handle("GET", "/slo", None)
        report["slo_endpoint"] = {
            "status": slo_response.status,
            "burning": slo_response.body["slo"]["burning"],
            "canaries": {
                name: {"state": entry["state"], "reason": entry["reason"]}
                for name, entry in slo_response.body.get("canaries", {}).items()
            },
        }
        metrics = app.handle("GET", "/metrics", None).body.body
        report["canary_burn_events_series"] = series_value(
            metrics,
            'repro_slo_burn_events_total{slo="canary:alpha",tenant="alpha"}',
        )
        report["missing_series"] = [
            series
            for series in (
                'repro_slo_error_budget_remaining{slo="availability"}',
                'repro_slo_burning{slo="degraded_ratio"}',
                'repro_slo_burn_events_total{slo="canary:alpha",tenant="alpha"}',
            )
            if series_value(metrics, series) is None
        ]

    canary_reason = (report["canary"] or {}).get("reason") or ""
    checks = {
        "healthy_no_burn": not report["healthy_burning"],
        "burn_fired": bool(report["burning_during_fault"]),
        "burn_on_slo_endpoint": (
            report["slo_endpoint_during_fault"]["status"] == 200
            and bool(report["slo_endpoint_during_fault"]["burning"])
        ),
        "burn_gauge_on_metrics": any(
            value == 1.0
            for value in report["burning_gauges_during_fault"].values()
        ),
        "burn_cleared": (
            not report["burning_after_recovery"]
            and report["resolved_events"] >= 1
            and report["burn_events_total"] >= 1
        ),
        "canary_rolled_back_on_slo": (
            report["canary"] is not None
            and report["canary"]["state"] == "rolled_back"
            and "SLO burn" in canary_reason
        ),
        "canary_on_slo_endpoint": (
            report["slo_endpoint"]["canaries"].get("alpha", {}).get("state")
            == "rolled_back"
        ),
        "canary_burn_on_metrics": (
            report["canary_burn_events_series"] is not None
            and report["canary_burn_events_series"] >= 1.0
        ),
        "slo_series_on_metrics": not report["missing_series"],
    }
    report["checks"] = checks
    report["passed"] = all(checks.values())
    return report


# ----------------------------------------------------------------------
# Arrival processes and node popularity (cluster load generation)
# ----------------------------------------------------------------------
def open_loop_arrivals(
    rate_rps: float,
    count: int | None = None,
    duration_s: float | None = None,
    seed: int = 0,
    start: float = 0.0,
):
    """Yield absolute arrival times of a Poisson process (open loop).

    Closed-loop clients wait for each response before sending the next
    request, so a slow server quietly throttles its own load. An
    open-loop process fires at externally scheduled instants regardless
    of server progress — the standard model for independent users — so
    overload shows up as queueing rather than vanishing. Inter-arrival
    gaps are exponential with mean ``1/rate_rps``; bound the stream with
    ``count`` and/or ``duration_s``.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if count is None and duration_s is None:
        raise ValueError("bound the stream with count and/or duration_s")
    rng = np.random.default_rng(seed)
    t = float(start)
    emitted = 0
    while count is None or emitted < count:
        t += float(rng.exponential(1.0 / rate_rps))
        if duration_s is not None and t - start > duration_s:
            return
        yield t
        emitted += 1


def zipf_node_sampler(
    num_nodes: int,
    exponent: float = 1.1,
    seed: int = 0,
):
    """Zipf-skewed node popularity: returns ``sample(size=None)``.

    Rank ``r`` (1-based) carries weight ``r**-exponent``; ranks are
    mapped onto node ids through a seeded permutation so the hot nodes
    are not simply the low ids (which would all land on shard 0 under a
    contiguous partition). ``sample()`` returns one ``int`` node id;
    ``sample(k)`` an ``ndarray`` of ``k`` ids. The sampler also exposes
    ``sample.weights`` (per-node probability, id order) for tests.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    rank_weights = ranks ** -float(exponent)
    rank_weights /= rank_weights.sum()
    rng = np.random.default_rng(seed)
    node_of_rank = rng.permutation(num_nodes)
    weights = np.zeros(num_nodes)
    weights[node_of_rank] = rank_weights

    def sample(size: int | None = None):
        picked = node_of_rank[rng.choice(num_nodes, size=size, p=rank_weights)]
        return int(picked) if size is None else picked

    sample.weights = weights
    sample.node_of_rank = node_of_rank
    return sample


@dataclass
class ClusterLoadReport:
    """Aggregate result of one cluster load run (open or closed loop)."""

    mode: str  # "closed" | "open"
    num_clients: int
    requests: int
    forecasts: int
    ok: int
    degraded: int
    rejected: int
    client_errors: int
    server_errors: int
    crashes: int
    availability: float  # non-5xx, non-crash share
    duration_s: float
    throughput_rps: float
    offered_rps: float  # scheduled rate (open) or achieved rate (closed)
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    schedule_lag_ms_p99: float  # how far behind the open-loop schedule ran

    def to_json_dict(self) -> dict:
        return asdict(self)


def run_cluster_load(
    handle,
    num_nodes: int,
    num_features: int,
    mode: str = "closed",
    num_clients: int = 4,
    requests_per_client: int = 50,
    rate_rps: float = 200.0,
    zipf_exponent: float = 1.1,
    horizon: int | None = None,
    seed: int = 0,
    value_scale: float = 60.0,
    start_step: int = 0,
) -> ClusterLoadReport:
    """Drive any ``handle(method, path, body)`` endpoint with cluster load.

    ``handle`` is the in-process request surface shared by
    :class:`~repro.serve.http.ServeApp`, the shard apps and the cluster
    router (an HTTP client wrapper works too). Clients interleave
    ``POST /observe`` for a zipf-popular sensor at an advancing shared
    step with ``GET /forecast?node=<id>`` for another zipf draw —
    closed-loop (back-to-back, measures capacity) or open-loop (Poisson
    schedule at ``rate_rps`` across all clients, measures behaviour at
    a fixed offered load).
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    total_requests = num_clients * requests_per_client
    sampler = zipf_node_sampler(num_nodes, exponent=zipf_exponent, seed=seed)
    schedule = (
        list(open_loop_arrivals(rate_rps, count=total_requests, seed=seed + 1))
        if mode == "open"
        else None
    )
    cursor = [0]  # shared request index
    next_step = [start_step]
    lock = threading.Lock()
    start_barrier = threading.Barrier(num_clients + 1)
    begin_holder = [0.0]
    horizon_query = f"&horizon={horizon}" if horizon else ""

    counts = [
        {
            "requests": 0, "forecasts": 0, "ok": 0, "degraded": 0,
            "rejected": 0, "client_errors": 0, "server_errors": 0,
            "crashes": 0,
        }
        for _ in range(num_clients)
    ]
    latencies: list[list[float]] = [[] for _ in range(num_clients)]
    lags: list[list[float]] = [[] for _ in range(num_clients)]

    def tally(c: dict, response, is_forecast: bool) -> None:
        status = response.status
        if status >= 500:
            c["server_errors"] += 1
        elif status == 429:
            c["rejected"] += 1
        elif status >= 400:
            c["client_errors"] += 1
        else:
            c["ok"] += 1
            if is_forecast and response.headers.get("X-Degraded"):
                c["degraded"] += 1

    def client(idx: int) -> None:
        c = counts[idx]
        rng = np.random.default_rng(seed + 1000 + idx)
        start_barrier.wait()
        while True:
            with lock:
                i = cursor[0]
                if i >= total_requests:
                    return
                cursor[0] += 1
                is_observe = i % 2 == 0
                if is_observe:
                    step = next_step[0]
                    next_step[0] += 1
            if schedule is not None:
                target = begin_holder[0] + schedule[i]
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                lags[idx].append(
                    max(0.0, (time.perf_counter() - target)) * 1e3
                )
            node = sampler()
            issued = time.perf_counter()
            try:
                if is_observe:
                    features = rng.normal(value_scale, 5.0, size=num_features)
                    body = json.dumps(
                        {"step": step, "node": node, "features": features.tolist()}
                    ).encode()
                    tally(c, handle("POST", "/observe", body), False)
                else:
                    c["forecasts"] += 1
                    path = f"/forecast?node={node}{horizon_query}"
                    tally(c, handle("GET", path, None), True)
            except Exception:
                c["crashes"] += 1
            c["requests"] += 1
            latencies[idx].append((time.perf_counter() - issued) * 1e3)

    threads = [
        threading.Thread(target=client, args=(idx,), daemon=True)
        for idx in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    begin_holder[0] = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - begin_holder[0]

    total = {key: sum(c[key] for c in counts) for key in counts[0]}
    flat = np.array([ms for per in latencies for ms in per])
    flat_lag = np.array([ms for per in lags for ms in per])
    answered = total["requests"]
    bad = total["server_errors"] + total["crashes"]
    achieved = float(answered / duration) if duration > 0 else 0.0
    return ClusterLoadReport(
        mode=mode,
        num_clients=num_clients,
        requests=answered,
        forecasts=total["forecasts"],
        ok=total["ok"],
        degraded=total["degraded"],
        rejected=total["rejected"],
        client_errors=total["client_errors"],
        server_errors=total["server_errors"],
        crashes=total["crashes"],
        availability=float(1.0 - bad / answered) if answered else 1.0,
        duration_s=float(duration),
        throughput_rps=achieved,
        offered_rps=float(rate_rps) if mode == "open" else achieved,
        latency_ms_mean=float(flat.mean()) if flat.size else 0.0,
        latency_ms_p50=float(np.percentile(flat, 50)) if flat.size else 0.0,
        latency_ms_p95=float(np.percentile(flat, 95)) if flat.size else 0.0,
        latency_ms_p99=float(np.percentile(flat, 99)) if flat.size else 0.0,
        schedule_lag_ms_p99=(
            float(np.percentile(flat_lag, 99)) if flat_lag.size else 0.0
        ),
    )
