"""Closed-loop load generation against a :class:`ForecastEngine`.

Each simulated client alternates *observe one sensor → request one
forecast*, so consecutive requests see fresh state versions (forecasts
cannot all collapse into the LRU cache) and concurrent clients give the
dispatcher real fusion opportunities. The generator drives the engine
directly — no HTTP in the measured path — so the numbers isolate the
serving core: batching, no-grad forwards, cache, locks.

:func:`compare_batched_sequential` runs the same workload twice, against
a micro-batching engine and a ``max_batch_size=1`` baseline, which is
the committed ``BENCH_serve_latency`` comparison.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass

import numpy as np

from ..telemetry import MetricRegistry
from .artifact import ModelBundle
from .engine import ForecastEngine

__all__ = ["LoadReport", "run_load", "compare_batched_sequential"]


@dataclass
class LoadReport:
    """Aggregate result of one closed-loop run."""

    mode: str  # "batched" | "sequential"
    num_clients: int
    requests: int
    errors: int
    duration_s: float
    throughput_rps: float
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    forwards: int
    batches: int
    mean_batch_size: float
    cache_hits: int
    cache_hit_ratio: float

    def to_json_dict(self) -> dict:
        return asdict(self)


def run_load(
    engine: ForecastEngine,
    mode: str,
    num_clients: int = 8,
    requests_per_client: int = 40,
    horizon: int | None = None,
    seed: int = 0,
    value_scale: float = 60.0,
) -> LoadReport:
    """Drive ``engine`` with ``num_clients`` closed-loop client threads.

    Each client owns a disjoint set of sensors it feeds round-robin with
    synthetic readings at advancing steps, requesting a forecast after
    every observation. Latencies are wall-clock per forecast call.
    """
    store = engine.store
    latencies: list[list[float]] = [[] for _ in range(num_clients)]
    errors = [0] * num_clients
    next_step = [store.newest_step + 1]
    step_lock = threading.Lock()
    start_barrier = threading.Barrier(num_clients + 1)

    def client(idx: int) -> None:
        rng = np.random.default_rng(seed + idx)
        start_barrier.wait()
        for _ in range(requests_per_client):
            with step_lock:
                step = next_step[0]
                next_step[0] += 1
            node = int(rng.integers(store.num_nodes))
            features = rng.normal(value_scale, 5.0, size=store.num_features)
            store.observe_sensor(step, node, features)
            begin = time.perf_counter()
            try:
                engine.forecast(horizon=horizon)
            except Exception:
                errors[idx] += 1
                continue
            latencies[idx].append((time.perf_counter() - begin) * 1e3)

    threads = [
        threading.Thread(target=client, args=(idx,), daemon=True)
        for idx in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - begin

    flat = np.array([ms for per_client in latencies for ms in per_client])
    total = int(flat.size)
    registry = engine.registry
    batches = int(registry.counter("serve/batches").value)
    batch_hist = registry.histogram("serve/batch_size")
    cache_hits = int(registry.counter("serve/cache_hits").value)
    answered = int(registry.counter("serve/requests").value)
    return LoadReport(
        mode=mode,
        num_clients=num_clients,
        requests=total,
        errors=int(sum(errors)),
        duration_s=float(duration),
        throughput_rps=float(total / duration) if duration > 0 else 0.0,
        latency_ms_mean=float(flat.mean()) if total else 0.0,
        latency_ms_p50=float(np.percentile(flat, 50)) if total else 0.0,
        latency_ms_p95=float(np.percentile(flat, 95)) if total else 0.0,
        latency_ms_p99=float(np.percentile(flat, 99)) if total else 0.0,
        forwards=int(registry.counter("serve/forwards").value),
        batches=batches,
        mean_batch_size=float(batch_hist.mean),
        cache_hits=cache_hits,
        cache_hit_ratio=float(cache_hits / answered) if answered else 0.0,
    )


def compare_batched_sequential(
    bundle: ModelBundle,
    num_clients: int = 8,
    requests_per_client: int = 40,
    max_batch_size: int = 8,
    max_wait_s: float = 0.005,
    seed: int = 0,
) -> dict:
    """The headline serving benchmark: micro-batched vs sequential.

    Both runs use identical fresh stores and workloads; the sequential
    baseline is the same engine restricted to ``max_batch_size=1`` (one
    forward per request, same threading and cache). Returns a dict of two
    :class:`LoadReport` payloads plus the throughput ratio.
    """
    reports = {}
    for mode, batch_size, wait in (
        ("sequential", 1, 0.0),
        ("batched", max_batch_size, max_wait_s),
    ):
        engine = ForecastEngine(
            model=bundle.model,
            scaler=bundle.scaler,
            store=bundle.make_store(),
            max_batch_size=batch_size,
            max_wait_s=wait,
            registry=MetricRegistry(),  # isolate counters per run
        )
        with engine:
            reports[mode] = run_load(
                engine,
                mode=mode,
                num_clients=num_clients,
                requests_per_client=requests_per_client,
                seed=seed,
            )
    ratio = (
        reports["batched"].throughput_rps / reports["sequential"].throughput_rps
        if reports["sequential"].throughput_rps > 0
        else 0.0
    )
    return {
        "sequential": reports["sequential"].to_json_dict(),
        "batched": reports["batched"].to_json_dict(),
        "batched_over_sequential_throughput": float(ratio),
    }
