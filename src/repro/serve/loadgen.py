"""Closed-loop load generation against a :class:`ForecastEngine`.

Each simulated client alternates *observe one sensor → request one
forecast*, so consecutive requests see fresh state versions (forecasts
cannot all collapse into the LRU cache) and concurrent clients give the
dispatcher real fusion opportunities. The generator drives the engine
directly — no HTTP in the measured path — so the numbers isolate the
serving core: batching, no-grad forwards, cache, locks.

:func:`compare_batched_sequential` runs the same workload twice, against
a micro-batching engine and a ``max_batch_size=1`` baseline, which is
the committed ``BENCH_serve_latency`` comparison.

:func:`run_chaos_soak` is the availability harness: it wraps a bundle's
model and store in the seeded fault injectors from
:mod:`repro.reliability.chaos`, drives the full :class:`ServeApp`
request path (status codes, headers and all, minus sockets) with
concurrent clients, and reports availability, degradation tagging and
crash counts — the numbers the chaos-smoke CI job gates on.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..reliability import ChaosModel, ChaosStore, FaultPlan
from ..telemetry import MetricRegistry
from .artifact import ModelBundle
from .config import ServeConfig
from .engine import ForecastEngine

__all__ = [
    "LoadReport",
    "run_load",
    "compare_batched_sequential",
    "SoakReport",
    "make_chaos_app",
    "run_chaos_soak",
]


@dataclass
class LoadReport:
    """Aggregate result of one closed-loop run."""

    mode: str  # "batched" | "sequential"
    num_clients: int
    requests: int
    errors: int
    duration_s: float
    throughput_rps: float
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    forwards: int
    batches: int
    mean_batch_size: float
    cache_hits: int
    cache_hit_ratio: float

    def to_json_dict(self) -> dict:
        return asdict(self)


def run_load(
    engine: ForecastEngine,
    mode: str,
    num_clients: int = 8,
    requests_per_client: int = 40,
    horizon: int | None = None,
    seed: int = 0,
    value_scale: float = 60.0,
) -> LoadReport:
    """Drive ``engine`` with ``num_clients`` closed-loop client threads.

    Each client owns a disjoint set of sensors it feeds round-robin with
    synthetic readings at advancing steps, requesting a forecast after
    every observation. Latencies are wall-clock per forecast call.
    """
    store = engine.store
    latencies: list[list[float]] = [[] for _ in range(num_clients)]
    errors = [0] * num_clients
    next_step = [store.newest_step + 1]
    step_lock = threading.Lock()
    start_barrier = threading.Barrier(num_clients + 1)

    def client(idx: int) -> None:
        rng = np.random.default_rng(seed + idx)
        start_barrier.wait()
        for _ in range(requests_per_client):
            with step_lock:
                step = next_step[0]
                next_step[0] += 1
            node = int(rng.integers(store.num_nodes))
            features = rng.normal(value_scale, 5.0, size=store.num_features)
            store.observe_sensor(step, node, features)
            begin = time.perf_counter()
            try:
                engine.forecast(horizon=horizon)
            except Exception:
                errors[idx] += 1
                continue
            latencies[idx].append((time.perf_counter() - begin) * 1e3)

    threads = [
        threading.Thread(target=client, args=(idx,), daemon=True)
        for idx in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - begin

    flat = np.array([ms for per_client in latencies for ms in per_client])
    total = int(flat.size)
    registry = engine.registry
    batches = int(registry.counter("serve/batches").value)
    batch_hist = registry.histogram("serve/batch_size")
    cache_hits = int(registry.counter("serve/cache_hits").value)
    answered = int(registry.counter("serve/requests").value)
    return LoadReport(
        mode=mode,
        num_clients=num_clients,
        requests=total,
        errors=int(sum(errors)),
        duration_s=float(duration),
        throughput_rps=float(total / duration) if duration > 0 else 0.0,
        latency_ms_mean=float(flat.mean()) if total else 0.0,
        latency_ms_p50=float(np.percentile(flat, 50)) if total else 0.0,
        latency_ms_p95=float(np.percentile(flat, 95)) if total else 0.0,
        latency_ms_p99=float(np.percentile(flat, 99)) if total else 0.0,
        forwards=int(registry.counter("serve/forwards").value),
        batches=batches,
        mean_batch_size=float(batch_hist.mean),
        cache_hits=cache_hits,
        cache_hit_ratio=float(cache_hits / answered) if answered else 0.0,
    )


def compare_batched_sequential(
    bundle: ModelBundle,
    num_clients: int = 8,
    requests_per_client: int = 40,
    max_batch_size: int = 8,
    max_wait_s: float = 0.005,
    seed: int = 0,
) -> dict:
    """The headline serving benchmark: micro-batched vs sequential.

    Both runs use identical fresh stores and workloads; the sequential
    baseline is the same engine restricted to ``max_batch_size=1`` (one
    forward per request, same threading and cache). Returns a dict of two
    :class:`LoadReport` payloads plus the throughput ratio.
    """
    reports = {}
    for mode, batch_size, wait in (
        ("sequential", 1, 0.0),
        ("batched", max_batch_size, max_wait_s),
    ):
        engine = ForecastEngine(
            model=bundle.model,
            scaler=bundle.scaler,
            store=bundle.make_store(),
            max_batch_size=batch_size,
            max_wait_s=wait,
            registry=MetricRegistry(),  # isolate counters per run
        )
        with engine:
            reports[mode] = run_load(
                engine,
                mode=mode,
                num_clients=num_clients,
                requests_per_client=requests_per_client,
                seed=seed,
            )
    ratio = (
        reports["batched"].throughput_rps / reports["sequential"].throughput_rps
        if reports["sequential"].throughput_rps > 0
        else 0.0
    )
    return {
        "sequential": reports["sequential"].to_json_dict(),
        "batched": reports["batched"].to_json_dict(),
        "batched_over_sequential_throughput": float(ratio),
    }


# ----------------------------------------------------------------------
# Chaos soak
# ----------------------------------------------------------------------
@dataclass
class SoakReport:
    """Outcome of one chaos soak: availability, tagging, crash count."""

    requests: int  # total requests issued (observe + forecast)
    forecasts: int
    ok: int  # 2xx responses
    degraded: int  # 200s answered by a fallback rung
    rejected: int  # 429s (load shedding / saturation)
    client_errors: int  # other 4xx
    server_errors: int  # 5xx
    crashes: int  # exceptions escaping the request path
    untagged_degraded: int  # degraded 200s missing header or body tag
    availability: float  # non-5xx share of all responses
    duration_s: float
    fault_plan: dict = field(default_factory=dict)
    injected: dict = field(default_factory=dict)
    fallback: dict = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        lines = [
            f"chaos soak: {self.requests} requests "
            f"({self.forecasts} forecasts) in {self.duration_s:.2f}s",
            f"  availability       {self.availability:.2%} "
            f"({self.server_errors} server errors, {self.crashes} crashes)",
            f"  degraded answers   {self.degraded} "
            f"({self.untagged_degraded} missing tags)",
            f"  rejected (backoff) {self.rejected}   "
            f"client errors {self.client_errors}",
            f"  injected faults    {json.dumps(self.injected, sort_keys=True)}",
            f"  fallback rungs     {json.dumps(self.fallback, sort_keys=True)}",
        ]
        return "\n".join(lines)


def make_chaos_app(
    bundle: ModelBundle,
    plan: FaultPlan,
    config: ServeConfig | None = None,
    registry: MetricRegistry | None = None,
):
    """A :class:`ServeApp` whose model and store misbehave per ``plan``.

    Returns ``(app, injector)`` — the injector exposes the fault counts
    for the soak report. The wrappers sit at the two seams the engine
    trusts (model forward, observation path); everything else is the
    production request path.
    """
    from .http import ServeApp  # here to avoid a module-import cycle

    config = config if config is not None else ServeConfig()
    registry = registry if registry is not None else MetricRegistry()
    injector = plan.injector()
    store = ChaosStore(bundle.make_store(registry=registry), injector)
    engine = ForecastEngine(
        model=ChaosModel(bundle.model, injector),
        scaler=bundle.scaler,
        store=store,
        max_batch_size=config.max_batch_size,
        max_wait_s=config.max_wait_s,
        cache_size=config.cache_size,
        registry=registry,
        policy=config.resilience,
    )
    app = ServeApp(
        bundle, store=store, engine=engine, registry=registry, config=config
    )
    return app, injector


def run_chaos_soak(
    app,
    num_clients: int = 4,
    requests_per_client: int = 50,
    seed: int = 0,
    value_scale: float = 60.0,
    injector=None,
) -> SoakReport:
    """Soak ``app`` with concurrent clients while faults fire.

    Each client alternates ``POST /observe`` (one sensor reading) with
    ``GET /forecast`` through ``app.handle`` — the full routing, error
    mapping and header path, minus sockets. Asserting on the report:
    ``crashes`` must be 0 and ``availability`` at target; every degraded
    200 must carry both the ``X-Degraded`` header and the body field
    (``untagged_degraded`` counts violations).
    """
    store = app.store
    counts = [
        {
            "requests": 0, "forecasts": 0, "ok": 0, "degraded": 0,
            "rejected": 0, "client_errors": 0, "server_errors": 0,
            "crashes": 0, "untagged_degraded": 0,
        }
        for _ in range(num_clients)
    ]
    next_step = [store.newest_step + 1]
    step_lock = threading.Lock()
    start_barrier = threading.Barrier(num_clients + 1)

    def tally(c: dict, response, is_forecast: bool) -> None:
        c["requests"] += 1
        status = response.status
        if status >= 500:
            c["server_errors"] += 1
        elif status == 429:
            c["rejected"] += 1
        elif status >= 400:
            c["client_errors"] += 1
        else:
            c["ok"] += 1
            if is_forecast:
                degraded = response.body.get("degraded")
                if degraded:
                    c["degraded"] += 1
                    if response.headers.get("X-Degraded") != degraded:
                        c["untagged_degraded"] += 1
                elif response.headers.get("X-Degraded"):
                    c["untagged_degraded"] += 1

    def client(idx: int) -> None:
        c = counts[idx]
        rng = np.random.default_rng(seed + idx)
        start_barrier.wait()
        for _ in range(requests_per_client):
            with step_lock:
                step = next_step[0]
                next_step[0] += 1
            node = int(rng.integers(store.num_nodes))
            features = rng.normal(value_scale, 5.0, size=store.num_features)
            body = json.dumps(
                {"step": step, "node": node, "features": features.tolist()}
            ).encode()
            try:
                tally(c, app.handle("POST", "/observe", body), False)
            except Exception:
                c["requests"] += 1
                c["crashes"] += 1
            try:
                tally(c, app.handle("GET", "/forecast", None), True)
            except Exception:
                c["requests"] += 1
                c["crashes"] += 1
            c["forecasts"] += 1

    threads = [
        threading.Thread(target=client, args=(idx,), daemon=True)
        for idx in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    app.engine.start()
    start_barrier.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - begin
    app.engine.stop()

    total = {key: sum(c[key] for c in counts) for key in counts[0]}
    registry = app.registry

    def count(name: str) -> int:
        return int(registry.counter(name).value)

    answered = total["requests"]
    bad = total["server_errors"] + total["crashes"]
    return SoakReport(
        requests=answered,
        forecasts=total["forecasts"],
        ok=total["ok"],
        degraded=total["degraded"],
        rejected=total["rejected"],
        client_errors=total["client_errors"],
        server_errors=total["server_errors"],
        crashes=total["crashes"],
        untagged_degraded=total["untagged_degraded"],
        availability=float(1.0 - bad / answered) if answered else 1.0,
        duration_s=float(duration),
        fault_plan=(
            injector.plan.to_json_dict() if injector is not None else {}
        ),
        injected=injector.snapshot() if injector is not None else {},
        fallback={
            "stale": count('serve/fallback{rung="stale"}'),
            "window_mean": count('serve/fallback{rung="window_mean"}'),
            "unavailable": count("serve/unavailable"),
            "shed": count("serve/shed"),
        },
    )
