"""Stdlib HTTP front-end for the forecast engine.

A deliberately small JSON API on :class:`http.server.ThreadingHTTPServer`
(no web framework — the repo stays dependency-free):

* ``POST /observe`` — ingest a reading. Body is either a full-network
  observation ``{"step": 17, "values": [[...], ...], "mask": [[...]]}``
  (``mask`` optional) or a single sensor ``{"step": 17, "node": 3,
  "features": [61.2]}``.
* ``GET /forecast?horizon=12`` — forecast from the current state, in
  original units; micro-batched with concurrent requests.
* ``GET /healthz`` — liveness plus state summary (warm-up, version) and
  the data-quality verdict; ``status`` flips to ``"degraded"`` when any
  sensor trips a :class:`~repro.telemetry.QualityThresholds` limit.
* ``GET /metrics`` — Prometheus text exposition of the telemetry
  registry (content-type ``text/plain; version=0.0.4``); append
  ``?format=json`` (or send ``Accept: application/json``) for the
  legacy JSON snapshot.
* ``GET /traces?limit=10`` — recent finished traces from the tracer
  buffer, grouped per trace (pretty-print them with ``repro traces``).

Every request runs under an ``http <METHOD> <route>`` root span, so the
trace tree of a forecast shows HTTP → engine.forecast → queue →
batch_forward → model_forward in one place.

Threading model: each connection gets a handler thread (the stdlib
mixin); handlers funnel forecasts through the engine's batching queue
and observations through the store's lock.

Resilience surface (see ``docs/RELIABILITY.md``): endpoints return
:class:`Response` objects so degraded answers can carry ``X-Degraded``
and ``Retry-After`` headers; resilience errors map onto HTTP —
:class:`~repro.errors.Overloaded` → 429, any other
:class:`~repro.errors.ServeError` (open breaker, blown deadline, dry
fallback ladder) → 503, both with ``Retry-After``. Tuning arrives as
one :class:`~repro.serve.config.ServeConfig`; the old loose kwargs keep
working for a release behind a ``DeprecationWarning``.
"""

from __future__ import annotations

import json
import math
import threading
import warnings
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import numpy as np

from ..autodiff import default_dtype
from ..errors import CircuitOpen, Overloaded, ServeError
from ..reliability import OPEN
from ..telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    MetricRegistry,
    QualityMonitor,
    Tracer,
    get_registry,
    get_tracer,
    render_prometheus,
)
from .artifact import ModelBundle
from .config import ServeConfig
from .engine import ForecastEngine
from .state import StateStore

__all__ = ["PlainText", "Response", "ServeApp", "make_server", "run_server"]


@dataclass(frozen=True)
class PlainText:
    """A non-JSON response body; ``handle`` returns it where it would a dict."""

    body: str
    content_type: str = "text/plain; charset=utf-8"


@dataclass(frozen=True)
class Response:
    """One HTTP response: status, body and response headers.

    Replaces the old ``(status, payload)`` tuples so degraded and
    rejected responses can set ``X-Degraded`` / ``Retry-After``.
    Iterating yields ``(status, body)``, keeping ``status, payload =
    app.handle(...)`` call sites working unchanged.
    """

    status: int
    body: dict | PlainText
    headers: dict = field(default_factory=dict)

    def __iter__(self):
        return iter((self.status, self.body))


#: ServeApp kwargs that used to be loose engine tuning, now ServeConfig fields.
_LEGACY_APP_KWARGS = ("max_batch_size", "max_wait_s", "cache_size", "trace_sample")


class ServeApp:
    """Routes requests onto a bundle's store and engine.

    All tuning — batching, cache, tracing, quality thresholds and the
    resilience policy — arrives as one :class:`ServeConfig`. The old
    loose kwargs (``max_batch_size``, ``max_wait_s``, ``cache_size``,
    ``trace_sample``) are folded into a config behind a single
    ``DeprecationWarning`` for one release.
    """

    def __init__(
        self,
        bundle: ModelBundle,
        store: StateStore | None = None,
        engine: ForecastEngine | None = None,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
        quality: QualityMonitor | None = None,
        config: ServeConfig | None = None,
        **legacy,
    ):
        unknown = set(legacy) - set(_LEGACY_APP_KWARGS)
        if unknown:
            raise TypeError(
                f"ServeApp() got unexpected keyword arguments {sorted(unknown)}"
            )
        config = config if config is not None else ServeConfig()
        if legacy:
            warnings.warn(
                f"ServeApp({', '.join(sorted(legacy))}=...) kwargs are "
                "deprecated; pass a ServeConfig instead "
                "(config=ServeConfig(...))",
                DeprecationWarning,
                stacklevel=2,
            )
            config = config.with_overrides(**legacy)
        self.config = config
        self.bundle = bundle
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.store = (
            store
            if store is not None
            else bundle.make_store(registry=self.registry)
        )
        self.engine = (
            engine
            if engine is not None
            else bundle.make_engine(
                store=self.store,
                registry=self.registry,
                tracer=self.tracer,
                max_batch_size=config.max_batch_size,
                max_wait_s=config.max_wait_s,
                cache_size=config.cache_size,
                policy=config.resilience,
            )
        )
        if self.engine.store is not self.store:
            raise ValueError("engine and app must share one state store")
        # Drift is judged against the *training* scaler statistics that
        # travel with the bundle — the distribution the model was fit on.
        self.quality = (
            quality
            if quality is not None
            else QualityMonitor(
                num_nodes=self.store.num_nodes,
                train_mean=bundle.scaler.mean_,
                train_std=bundle.scaler.std_,
                thresholds=config.quality,
                registry=self.registry,
            )
        )

    # ------------------------------------------------------------------
    # Endpoint bodies: return Response objects.
    # ------------------------------------------------------------------
    def _inspect_quality(self):
        """Refresh the quality monitor from the live window (pull-based)."""
        return self.quality.update(self.store.window(), store=self.store)

    def _retry_after(self, error: BaseException | None = None) -> dict:
        """``Retry-After`` header for rejected/unavailable responses."""
        after = self.engine.policy.retry_after_s
        if isinstance(error, CircuitOpen) and self.engine.breaker is not None:
            after = max(after, self.engine.breaker.snapshot()["open_remaining_s"])
        return {"Retry-After": str(max(1, math.ceil(after)))}

    def healthz(self) -> Response:
        report = self._inspect_quality()
        reliability = self.engine.reliability_snapshot()
        requests = self.registry.counter("serve/requests").value
        reliability["fallback_hit_rate"] = (
            reliability["degraded_total"] / requests if requests else 0.0
        )
        breaker = reliability["breaker"]
        breaker_open = breaker is not None and breaker["state"] == OPEN
        return Response(200, {
            "status": "degraded" if (report.degraded or breaker_open) else "ok",
            "model": self.bundle.model_name,
            "num_nodes": self.bundle.num_nodes,
            "num_features": self.bundle.num_features,
            "input_length": self.bundle.input_length,
            "output_length": self.bundle.output_length,
            "warm": self.store.warm,
            "version": self.store.version,
            "newest_step": self.store.newest_step,
            "observations": self.store.observations,
            "quality": report.to_json_dict(),
            "sensors": self.store.sensor_summary(),
            "reliability": reliability,
        })

    def metrics(self, as_json: bool = False) -> Response:
        self._inspect_quality()
        self.engine.reliability_snapshot()  # refresh breaker/fallback metrics
        if as_json:
            return Response(200, self.registry.snapshot())
        return Response(200, PlainText(
            body=render_prometheus(self.registry),
            content_type=PROMETHEUS_CONTENT_TYPE,
        ))

    def traces(self, limit: int | None = None) -> Response:
        return Response(200, {"traces": self.tracer.traces(limit=limit)})

    def observe(self, payload: dict) -> Response:
        if self.engine.saturated:
            # Reject-with-backoff: while the forecast queue is drowning,
            # state churn (each accepted observation invalidates the
            # forecast cache) only deepens the hole.
            self.registry.counter("serve/observe_rejected").inc()
            return Response(
                429,
                {"error": "server saturated; back off and retry"},
                self._retry_after(),
            )
        if "step" not in payload:
            return Response(400, {"error": "observation needs an integer 'step'"})
        step = int(payload["step"])
        if "node" in payload:
            features = payload.get("features", payload.get("value"))
            if features is None:
                return Response(
                    400, {"error": "per-sensor observation needs 'features'"}
                )
            accepted = self.store.observe_sensor(
                step, int(payload["node"]), np.asarray(features, dtype=default_dtype())
            )
        elif "values" in payload:
            values = np.asarray(payload["values"], dtype=default_dtype())
            if values.ndim == 1 and self.store.num_features == 1:
                values = values[:, None]
            mask = payload.get("mask")
            if mask is not None:
                mask = np.asarray(mask, dtype=default_dtype())
                if mask.ndim == 1 and self.store.num_features == 1:
                    mask = mask[:, None]
            accepted = self.store.observe(step, values, mask)
        else:
            return Response(
                400, {"error": "observation needs 'values' or 'node'+'features'"}
            )
        return Response(200, {
            "accepted": accepted,
            "version": self.store.version,
            "newest_step": self.store.newest_step,
        })

    def forecast(self, horizon: int | None) -> Response:
        result = self.engine.forecast(horizon=horizon)
        headers = {"X-Degraded": result.degraded} if result.degraded else {}
        return Response(200, result.to_json_dict(), headers)

    # ------------------------------------------------------------------
    @staticmethod
    def _wants_json(query: dict, headers: dict | None) -> bool:
        fmt = query.get("format", [""])[0].lower()
        if fmt:
            return fmt == "json"
        accept = (headers or {}).get("Accept", "")
        return "application/json" in accept

    def handle(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict | None = None,
    ) -> Response:
        """Dispatch one request; exceptions become JSON error responses."""
        parsed = urlparse(path)
        route = parsed.path.rstrip("/") or "/"
        with self.tracer.span(
            "http", attributes={"method": method, "route": route}
        ) as span:
            response = self._route(method, route, parsed.query, body, headers)
            span.set_attribute("status", response.status)
            if response.status >= 400:
                span.status = "error"
            return response

    def _route(
        self,
        method: str,
        route: str,
        query_string: str,
        body: bytes | None,
        headers: dict | None,
    ) -> Response:
        query = parse_qs(query_string)
        try:
            if method == "GET" and route == "/healthz":
                return self.healthz()
            if method == "GET" and route == "/metrics":
                return self.metrics(as_json=self._wants_json(query, headers))
            if method == "GET" and route == "/traces":
                limit = query.get("limit")
                return self.traces(int(limit[0]) if limit else None)
            if method == "GET" and route == "/forecast":
                horizon = query.get("horizon")
                return self.forecast(int(horizon[0]) if horizon else None)
            if method == "POST" and route == "/observe":
                try:
                    payload = json.loads(body or b"")
                except json.JSONDecodeError as error:
                    return Response(400, {"error": f"invalid JSON body: {error}"})
                if not isinstance(payload, dict):
                    return Response(
                        400, {"error": "observation body must be a JSON object"}
                    )
                return self.observe(payload)
            return Response(404, {"error": f"no route {method} {route}"})
        except Overloaded as error:
            # Shed load: tell the client to back off, not to degrade.
            return Response(429, {"error": str(error)}, self._retry_after(error))
        # Input errors stay 400 — StateError inherits ValueError, so bad
        # client payloads land here even though it is also a ServeError.
        except (ValueError, KeyError, TypeError) as error:
            return Response(400, {"error": str(error)})
        except ServeError as error:
            # Resilience signals that survived the fallback ladder: open
            # breaker, blown deadline, dry ladder. The server is alive
            # but cannot answer — 503 with a backoff hint.
            self.registry.counter("serve/unavailable_responses").inc()
            return Response(
                503,
                {"error": str(error), "cause": type(error).__name__},
                self._retry_after(error),
            )


class _Handler(BaseHTTPRequestHandler):
    app: ServeApp  # injected via the make_server subclass
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test/CI output clean; telemetry covers observability

    def _respond(self, response: Response) -> None:
        payload = response.body
        if isinstance(payload, PlainText):
            body = payload.body.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(response.status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in response.headers.items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802
        self._respond(self.app.handle("GET", self.path, None, dict(self.headers)))

    def do_POST(self) -> None:  # noqa: N802
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length) if length else b""
        self._respond(self.app.handle("POST", self.path, body, dict(self.headers)))


def _resolve_bind(
    app: ServeApp, host: str | None, port: int | None
) -> tuple[str, int]:
    """Bind address from the app's config unless legacy args override it."""
    if host is not None or port is not None:
        warnings.warn(
            "passing host/port to make_server/run_server is deprecated; "
            "set them on ServeConfig instead",
            DeprecationWarning,
            stacklevel=3,
        )
    resolved_host = host if host is not None else app.config.host
    resolved_port = port if port is not None else app.config.port
    return resolved_host, resolved_port


def make_server(
    app: ServeApp, host: str | None = None, port: int | None = None
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for ``app``.

    The bind address comes from ``app.config`` (``port=0`` = ephemeral);
    explicit ``host``/``port`` arguments still win, with a
    ``DeprecationWarning``. The caller owns the lifecycle:
    ``serve_forever()`` to block, ``shutdown()`` + ``server_close()`` to
    stop. The engine's batching dispatcher is started here so concurrent
    handler threads fuse.
    """
    bind_host, bind_port = _resolve_bind(app, host, port)
    handler = type("BoundHandler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((bind_host, bind_port), handler)
    app.engine.start()
    return server


def run_server(
    app: ServeApp,
    host: str | None = None,
    port: int | None = None,
    ready_event: threading.Event | None = None,
) -> None:
    """Blocking entry point used by ``repro serve``.

    Prints the bound address (machine-parseable first line) before
    serving; ``ready_event`` is set once the socket is listening.
    """
    server = make_server(app, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)
    if ready_event is not None:
        ready_event.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        app.engine.stop()
