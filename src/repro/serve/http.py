"""Stdlib HTTP front-end for the forecast engine.

A deliberately small JSON API on :class:`http.server.ThreadingHTTPServer`
(no web framework — the repo stays dependency-free):

* ``POST /observe`` — ingest a reading. Body is either a full-network
  observation ``{"step": 17, "values": [[...], ...], "mask": [[...]]}``
  (``mask`` optional) or a single sensor ``{"step": 17, "node": 3,
  "features": [61.2]}``.
* ``GET /forecast?horizon=12`` — forecast from the current state, in
  original units; micro-batched with concurrent requests.
* ``GET /healthz`` — liveness plus state summary (warm-up, version) and
  the data-quality verdict; ``status`` flips to ``"degraded"`` when any
  sensor trips a :class:`~repro.telemetry.QualityThresholds` limit.
* ``GET /metrics`` — Prometheus text exposition of the telemetry
  registry (content-type ``text/plain; version=0.0.4``); append
  ``?format=json`` (or send ``Accept: application/json``) for the
  legacy JSON snapshot.
* ``GET /traces?limit=10`` — recent finished traces from the tracer
  buffer, grouped per trace (pretty-print them with ``repro traces``).

Every request runs under an ``http <METHOD> <route>`` root span, so the
trace tree of a forecast shows HTTP → engine.forecast → queue →
batch_forward → model_forward in one place.

Threading model: each connection gets a handler thread (the stdlib
mixin); handlers funnel forecasts through the engine's batching queue
and observations through the store's lock.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import numpy as np

from ..autodiff import default_dtype
from ..telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    MetricRegistry,
    QualityMonitor,
    Tracer,
    get_registry,
    get_tracer,
    render_prometheus,
)
from .artifact import ModelBundle
from .engine import ForecastEngine
from .state import StateStore

__all__ = ["PlainText", "ServeApp", "make_server", "run_server"]


@dataclass(frozen=True)
class PlainText:
    """A non-JSON response body; ``handle`` returns it where it would a dict."""

    body: str
    content_type: str = "text/plain; charset=utf-8"


class ServeApp:
    """Routes requests onto a bundle's store and engine."""

    def __init__(
        self,
        bundle: ModelBundle,
        store: StateStore | None = None,
        engine: ForecastEngine | None = None,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
        quality: QualityMonitor | None = None,
    ):
        self.bundle = bundle
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.store = store if store is not None else bundle.make_store()
        self.engine = (
            engine
            if engine is not None
            else bundle.make_engine(
                store=self.store, registry=self.registry, tracer=self.tracer
            )
        )
        if self.engine.store is not self.store:
            raise ValueError("engine and app must share one state store")
        # Drift is judged against the *training* scaler statistics that
        # travel with the bundle — the distribution the model was fit on.
        self.quality = (
            quality
            if quality is not None
            else QualityMonitor(
                num_nodes=self.store.num_nodes,
                train_mean=bundle.scaler.mean_,
                train_std=bundle.scaler.std_,
                registry=self.registry,
            )
        )

    # ------------------------------------------------------------------
    # Endpoint bodies: return (status, payload) pairs.
    # ------------------------------------------------------------------
    def _inspect_quality(self):
        """Refresh the quality monitor from the live window (pull-based)."""
        return self.quality.update(self.store.window(), store=self.store)

    def healthz(self) -> tuple[int, dict]:
        report = self._inspect_quality()
        return 200, {
            "status": "degraded" if report.degraded else "ok",
            "model": self.bundle.model_name,
            "num_nodes": self.bundle.num_nodes,
            "num_features": self.bundle.num_features,
            "input_length": self.bundle.input_length,
            "output_length": self.bundle.output_length,
            "warm": self.store.warm,
            "version": self.store.version,
            "newest_step": self.store.newest_step,
            "observations": self.store.observations,
            "quality": report.to_json_dict(),
            "sensors": self.store.sensor_summary(),
        }

    def metrics(self, as_json: bool = False) -> tuple[int, dict | PlainText]:
        self._inspect_quality()
        if as_json:
            return 200, self.registry.snapshot()
        return 200, PlainText(
            body=render_prometheus(self.registry),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )

    def traces(self, limit: int | None = None) -> tuple[int, dict]:
        return 200, {"traces": self.tracer.traces(limit=limit)}

    def observe(self, payload: dict) -> tuple[int, dict]:
        if "step" not in payload:
            return 400, {"error": "observation needs an integer 'step'"}
        step = int(payload["step"])
        if "node" in payload:
            features = payload.get("features", payload.get("value"))
            if features is None:
                return 400, {"error": "per-sensor observation needs 'features'"}
            accepted = self.store.observe_sensor(
                step, int(payload["node"]), np.asarray(features, dtype=default_dtype())
            )
        elif "values" in payload:
            values = np.asarray(payload["values"], dtype=default_dtype())
            if values.ndim == 1 and self.store.num_features == 1:
                values = values[:, None]
            mask = payload.get("mask")
            if mask is not None:
                mask = np.asarray(mask, dtype=default_dtype())
                if mask.ndim == 1 and self.store.num_features == 1:
                    mask = mask[:, None]
            accepted = self.store.observe(step, values, mask)
        else:
            return 400, {"error": "observation needs 'values' or 'node'+'features'"}
        return 200, {
            "accepted": accepted,
            "version": self.store.version,
            "newest_step": self.store.newest_step,
        }

    def forecast(self, horizon: int | None) -> tuple[int, dict]:
        result = self.engine.forecast(horizon=horizon)
        return 200, result.to_json_dict()

    # ------------------------------------------------------------------
    @staticmethod
    def _wants_json(query: dict, headers: dict | None) -> bool:
        fmt = query.get("format", [""])[0].lower()
        if fmt:
            return fmt == "json"
        accept = (headers or {}).get("Accept", "")
        return "application/json" in accept

    def handle(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict | None = None,
    ) -> tuple[int, dict | PlainText]:
        """Dispatch one request; exceptions become JSON error responses."""
        parsed = urlparse(path)
        route = parsed.path.rstrip("/") or "/"
        with self.tracer.span(
            "http", attributes={"method": method, "route": route}
        ) as span:
            status, payload = self._route(method, route, parsed.query, body, headers)
            span.set_attribute("status", status)
            if status >= 400:
                span.status = "error"
            return status, payload

    def _route(
        self,
        method: str,
        route: str,
        query_string: str,
        body: bytes | None,
        headers: dict | None,
    ) -> tuple[int, dict | PlainText]:
        query = parse_qs(query_string)
        try:
            if method == "GET" and route == "/healthz":
                return self.healthz()
            if method == "GET" and route == "/metrics":
                return self.metrics(as_json=self._wants_json(query, headers))
            if method == "GET" and route == "/traces":
                limit = query.get("limit")
                return self.traces(int(limit[0]) if limit else None)
            if method == "GET" and route == "/forecast":
                horizon = query.get("horizon")
                return self.forecast(int(horizon[0]) if horizon else None)
            if method == "POST" and route == "/observe":
                try:
                    payload = json.loads(body or b"")
                except json.JSONDecodeError as error:
                    return 400, {"error": f"invalid JSON body: {error}"}
                if not isinstance(payload, dict):
                    return 400, {"error": "observation body must be a JSON object"}
                return self.observe(payload)
            return 404, {"error": f"no route {method} {route}"}
        except (ValueError, KeyError, TypeError) as error:
            return 400, {"error": str(error)}


class _Handler(BaseHTTPRequestHandler):
    app: ServeApp  # injected via the make_server subclass
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test/CI output clean; telemetry covers observability

    def _respond(self, status: int, payload: dict | PlainText) -> None:
        if isinstance(payload, PlainText):
            body = payload.body.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802
        self._respond(*self.app.handle("GET", self.path, None, dict(self.headers)))

    def do_POST(self) -> None:  # noqa: N802
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length) if length else b""
        self._respond(*self.app.handle("POST", self.path, body, dict(self.headers)))


def make_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for ``app`` (``port=0`` = ephemeral).

    The caller owns the lifecycle: ``serve_forever()`` to block,
    ``shutdown()`` + ``server_close()`` to stop. The engine's batching
    dispatcher is started here so concurrent handler threads fuse.
    """
    handler = type("BoundHandler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    app.engine.start()
    return server


def run_server(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_event: threading.Event | None = None,
) -> None:
    """Blocking entry point used by ``repro serve``.

    Prints the bound address (machine-parseable first line) before
    serving; ``ready_event`` is set once the socket is listening.
    """
    server = make_server(app, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)
    if ready_event is not None:
        ready_event.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        app.engine.stop()
