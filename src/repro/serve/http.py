"""Stdlib HTTP front-end for the forecast engine fleet.

A deliberately small JSON API on :class:`http.server.ThreadingHTTPServer`
(no web framework — the repo stays dependency-free):

* ``POST /observe`` — ingest a reading. Body is either a full-network
  observation ``{"step": 17, "values": [[...], ...], "mask": [[...]]}``
  (``mask`` optional) or a single sensor ``{"step": 17, "node": 3,
  "features": [61.2]}``.
* ``GET /forecast?horizon=12`` — forecast from the current state, in
  original units; micro-batched with concurrent requests, quota-checked
  and canary-routed when the tenant has a rollout in flight.
* ``GET /healthz`` — liveness plus state summary (warm-up, version) and
  the data-quality verdict; ``status`` flips to ``"degraded"`` when any
  sensor trips a :class:`~repro.telemetry.QualityThresholds` limit.
* ``GET /metrics`` — Prometheus text exposition of the telemetry
  registry (content-type ``text/plain; version=0.0.4``); append
  ``?format=json`` (or send ``Accept: application/json``) for the
  legacy JSON snapshot. Fleet series carry a ``tenant`` label.
* ``GET /traces?limit=10`` — recent finished traces from the tracer
  buffer, grouped per trace (pretty-print them with ``repro traces``).
* ``GET /slo`` — the SLO engine's snapshot: per-objective burn rates,
  error-budget remaining, active and recent burn events, plus any
  in-flight canary's SLO tracker (render with ``repro slo``).
* ``GET /profile`` — the continuous profiler's collapsed-stack flame
  data (``?format=json`` for the full snapshot); 404 while
  ``profile_hz`` is 0.
* ``GET /tenants`` — one summary per tenant: bundle, version, warm-up,
  quota counters.
* ``GET /rollouts`` — live shadow/canary state per tenant;
  ``POST /rollouts`` with ``{"tenant": ..., "action": "rollback" |
  "promote"}`` drives a rollout by hand.

**Tenant routing.** Requests address a tenant three ways, most specific
first: a ``/t/<tenant>/...`` path prefix, an ``X-Tenant`` header, or a
``?tenant=`` query parameter. With none of the three the request lands
on the ``default`` tenant (a single-tenant pool's only tenant is the
implicit default). Unknown tenants are a 404.

Every request runs under an ``http <METHOD> <route>`` root span, so the
trace tree of a forecast shows HTTP → engine.forecast → queue →
batch_forward → model_forward in one place.

Threading model: each connection gets a handler thread (the stdlib
mixin); handlers funnel forecasts through the pool's routing and each
engine's batching queue, and observations through the store's lock.

Resilience surface (see ``docs/RELIABILITY.md``): endpoints return
:class:`Response` objects so degraded answers can carry ``X-Degraded``
and ``Retry-After`` headers; resilience errors map onto HTTP —
:class:`~repro.errors.QuotaExceeded` and any other
:class:`~repro.errors.Overloaded` → 429, any other
:class:`~repro.errors.ServeError` (open breaker, blown deadline, dry
fallback ladder) → 503, all with ``Retry-After``. Tuning arrives as one
:class:`~repro.serve.config.ServeConfig` per tenant; the pre-fleet
loose kwargs were removed in this release and now raise
:class:`TypeError` with a migration hint.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import numpy as np

from ..autodiff import default_dtype
from ..errors import (
    CircuitOpen,
    ConfigError,
    DataError,
    Overloaded,
    QuotaExceeded,
    ServeError,
    StateError,
)
from ..reliability import OPEN
from ..telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    ContinuousProfiler,
    MetricRegistry,
    QualityMonitor,
    SLOEngine,
    Tracer,
    default_serving_objectives,
    extract_trace_context,
    get_registry,
    get_tracer,
    render_prometheus,
)
from .artifact import ModelBundle
from .config import DEFAULT_TENANT, ServeConfig
from .engine import ForecastEngine
from .fleet import EnginePool
from .state import StateStore

__all__ = ["PlainText", "Response", "ServeApp", "bind_http", "make_server", "run_server"]


@dataclass(frozen=True)
class PlainText:
    """A non-JSON response body; ``handle`` returns it where it would a dict."""

    body: str
    content_type: str = "text/plain; charset=utf-8"


@dataclass(frozen=True)
class Response:
    """One HTTP response: status, body and response headers.

    Replaced the old ``(status, payload)`` tuples so degraded and
    rejected responses can set ``X-Degraded`` / ``Retry-After``. The
    transitional tuple unpacking is gone: read ``response.status`` and
    ``response.body``.
    """

    status: int
    body: dict | PlainText
    headers: dict = field(default_factory=dict)

    def __iter__(self):
        raise TypeError(
            "Response is no longer iterable; unpack via response.status "
            "and response.body instead of 'status, payload = ...'"
        )


#: ServeApp kwargs that were loose engine tuning, removed in the fleet release.
_REMOVED_APP_KWARGS = ("max_batch_size", "max_wait_s", "cache_size", "trace_sample")


class ServeApp:
    """Routes requests onto a pool of per-tenant stores and engines.

    Two construction paths:

    * ``ServeApp(bundle, config=ServeConfig(...))`` — the single-model
      setup: builds a one-tenant :class:`~repro.serve.fleet.EnginePool`
      whose ``default`` tenant keeps the unlabelled metric names, so
      responses and ``/metrics`` are byte-identical to the pre-fleet
      server.
    * ``ServeApp(pool=pool)`` — adopt a pre-built multi-tenant pool
      (see :func:`~repro.serve.fleet.build_pool`).

    The pre-fleet loose kwargs (``max_batch_size``, ``max_wait_s``,
    ``cache_size``, ``trace_sample``) were removed in this release and
    raise :class:`TypeError`; fold them into a
    :class:`~repro.serve.config.ServeConfig`.
    """

    def __init__(
        self,
        bundle: ModelBundle | None = None,
        store: StateStore | None = None,
        engine: ForecastEngine | None = None,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
        quality: QualityMonitor | None = None,
        config: ServeConfig | None = None,
        pool: EnginePool | None = None,
        slo: SLOEngine | None = None,
        **removed,
    ):
        if removed:
            bad = sorted(set(removed) & set(_REMOVED_APP_KWARGS))
            if bad:
                raise TypeError(
                    f"ServeApp() kwargs {bad} were removed; pass a ServeConfig "
                    "instead, e.g. ServeApp(bundle, config=ServeConfig("
                    f"{bad[0]}=...))"
                )
            raise TypeError(
                f"ServeApp() got unexpected keyword arguments {sorted(removed)}"
            )
        if pool is not None:
            if bundle is not None or store is not None or engine is not None:
                raise TypeError(
                    "ServeApp(pool=...) adopts the pool's runtimes; do not "
                    "also pass bundle/store/engine"
                )
            self.pool = pool
            self.registry = pool.registry
            self.tracer = pool.tracer
            self.config = config if config is not None else ServeConfig()
        else:
            if bundle is None:
                raise TypeError("ServeApp() needs a bundle or a pool")
            config = config if config is not None else ServeConfig()
            self.config = config
            self.registry = registry if registry is not None else get_registry()
            if tracer is not None:
                self.tracer = tracer
            elif config.trace_sample > 0:
                # Honour the config like ShardApp/ClusterRouter do; the
                # zero-sampled global tracer stays the default otherwise.
                self.tracer = Tracer(
                    sample_rate=config.trace_sample,
                    export_path=config.trace_export,
                    service="serve",
                )
            else:
                self.tracer = get_tracer()
            if engine is not None and store is not None and engine.store is not store:
                raise ValueError("engine and app must share one state store")
            if engine is not None and store is None:
                store = engine.store
            self.pool = EnginePool(registry=self.registry, tracer=self.tracer)
            # Empty labels + breaker name "model": the default tenant of a
            # single-bundle app keeps the pre-fleet metric series names.
            self.pool.add_tenant(
                DEFAULT_TENANT,
                bundle,
                config=config,
                labels={},
                engine_name="model",
                store=store,
                engine=engine,
                monitor=quality,
            )
        if slo is not None:
            self.slo: SLOEngine | None = slo
        elif self.config.slo_enabled:
            self.slo = SLOEngine(
                default_serving_objectives(latency_ms=self.config.slo_latency_ms)
            )
        else:
            self.slo = None
        self.profiler: ContinuousProfiler | None = None
        if self.config.profile_hz > 0:
            self.profiler = ContinuousProfiler(
                interval_s=1.0 / self.config.profile_hz, registry=self.registry
            ).start()

    def close(self) -> None:
        """Stop background observers (the continuous profiler)."""
        if self.profiler is not None:
            self.profiler.stop()

    # ------------------------------------------------------------------
    # Default-tenant aliases: the chaos soak, the load generator and the
    # single-model tests address the app as if it held one engine.
    # ------------------------------------------------------------------
    def _default_name(self) -> str | None:
        tenants = self.pool.tenants()
        if DEFAULT_TENANT in tenants:
            return DEFAULT_TENANT
        if len(tenants) == 1:
            return tenants[0]
        return None

    def _runtime(self, tenant: str):
        return self.pool.runtime(tenant)

    @property
    def bundle(self) -> ModelBundle:
        return self._runtime(self._default_name()).bundle

    @property
    def store(self) -> StateStore:
        return self._runtime(self._default_name()).store

    @property
    def engine(self) -> ForecastEngine:
        return self._runtime(self._default_name()).engine

    @property
    def quality(self) -> QualityMonitor:
        return self._runtime(self._default_name()).monitor

    # ------------------------------------------------------------------
    # Endpoint bodies: return Response objects.
    # ------------------------------------------------------------------
    def _inspect_quality(self, runtime):
        """Refresh the tenant's quality monitor from its live window."""
        report = runtime.monitor.update(runtime.store.window(), store=runtime.store)
        if self.slo is not None:
            self.slo.record_quality(report)
        return report

    def _retry_after(self, runtime, error: BaseException | None = None) -> dict:
        """``Retry-After`` header for rejected/unavailable responses."""
        engine = runtime.engine
        after = engine.policy.retry_after_s
        if isinstance(error, QuotaExceeded) and runtime.quota is not None:
            after = max(after, runtime.quota.retry_after_s)
        if isinstance(error, CircuitOpen) and engine.breaker is not None:
            after = max(after, engine.breaker.snapshot()["open_remaining_s"])
        return {"Retry-After": str(max(1, math.ceil(after)))}

    def healthz(self, tenant: str) -> Response:
        runtime = self._runtime(tenant)
        report = self._inspect_quality(runtime)
        engine = runtime.engine
        reliability = engine.reliability_snapshot()
        requests = self.registry.counter(engine._m("serve/requests")).value
        reliability["fallback_hit_rate"] = (
            reliability["degraded_total"] / requests if requests else 0.0
        )
        breaker = reliability["breaker"]
        breaker_open = breaker is not None and breaker["state"] == OPEN
        body = {
            "status": "degraded" if (report.degraded or breaker_open) else "ok",
            "model": runtime.bundle.model_name,
            "num_nodes": runtime.bundle.num_nodes,
            "num_features": runtime.bundle.num_features,
            "input_length": runtime.bundle.input_length,
            "output_length": runtime.bundle.output_length,
            "warm": runtime.store.warm,
            "version": runtime.store.version,
            "newest_step": runtime.store.newest_step,
            "observations": runtime.store.observations,
            "quality": report.to_json_dict(),
            "sensors": runtime.store.sensor_summary(),
            "reliability": reliability,
        }
        if len(self.pool) > 1:
            body["tenant"] = runtime.name
            body["tenants"] = self.pool.tenants()
        return Response(200, body)

    def metrics(
        self, as_json: bool = False, exemplars: bool | None = None
    ) -> Response:
        for name in self.pool.tenants():
            runtime = self._runtime(name)
            self._inspect_quality(runtime)
            runtime.engine.reliability_snapshot()  # refresh breaker gauges
        if self.slo is not None:
            self.slo.publish(self.registry)
        if as_json:
            return Response(200, self.registry.snapshot())
        if exemplars is None:
            exemplars = self.config.exemplars
        return Response(200, PlainText(
            body=render_prometheus(self.registry, exemplars=exemplars),
            content_type=PROMETHEUS_CONTENT_TYPE,
        ))

    def traces(self, limit: int | None = None) -> Response:
        return Response(200, {"traces": self.tracer.traces(limit=limit)})

    def slo_status(self) -> Response:
        if self.slo is None:
            return Response(
                404, {"error": "SLO engine disabled; enable slo_enabled"}
            )
        self.slo.publish(self.registry)
        body = {"slo": self.slo.snapshot()}
        canaries = self.pool.canary_slo_snapshots()
        if canaries:
            body["canaries"] = canaries
        return Response(200, body)

    def profile(self, as_json: bool = False) -> Response:
        if self.profiler is None:
            return Response(
                404, {"error": "continuous profiler off; set profile_hz > 0"}
            )
        if as_json:
            return Response(200, self.profiler.snapshot())
        return Response(200, PlainText(self.profiler.collapsed()))

    def tenants(self) -> Response:
        return Response(200, {"tenants": self.pool.tenants_snapshot()})

    def rollouts(self) -> Response:
        return Response(200, {"rollouts": self.pool.rollouts_snapshot()})

    def rollout_action(self, payload: dict) -> Response:
        tenant = payload.get("tenant")
        action = payload.get("action")
        if not tenant or action not in ("rollback", "promote"):
            return Response(400, {
                "error": "rollout action body needs 'tenant' and 'action' "
                "('rollback' or 'promote')"
            })
        if action == "rollback":
            snapshot = self.pool.rollback_canary(
                tenant, reason=payload.get("reason", "manual rollback via API")
            )
        else:
            snapshot = self.pool.promote_canary(tenant)
        return Response(200, {"tenant": tenant, "canary": snapshot})

    def observe(self, payload: dict, tenant: str) -> Response:
        runtime = self._runtime(tenant)
        if runtime.engine.saturated:
            # Reject-with-backoff: while the forecast queue is drowning,
            # state churn (each accepted observation invalidates the
            # forecast cache) only deepens the hole.
            self.registry.counter(runtime.engine._m("serve/observe_rejected")).inc()
            return Response(
                429,
                {"error": "server saturated; back off and retry"},
                self._retry_after(runtime),
            )
        if "step" not in payload:
            return Response(400, {"error": "observation needs an integer 'step'"})
        step = int(payload["step"])
        if "node" in payload:
            features = payload.get("features", payload.get("value"))
            if features is None:
                return Response(
                    400, {"error": "per-sensor observation needs 'features'"}
                )
            accepted = self.pool.observe_sensor(
                tenant, step, int(payload["node"]),
                np.asarray(features, dtype=default_dtype()),
            )
        elif "values" in payload:
            values = np.asarray(payload["values"], dtype=default_dtype())
            if values.ndim == 1 and runtime.store.num_features == 1:
                values = values[:, None]
            mask = payload.get("mask")
            if mask is not None:
                mask = np.asarray(mask, dtype=default_dtype())
                if mask.ndim == 1 and runtime.store.num_features == 1:
                    mask = mask[:, None]
            accepted = self.pool.observe(tenant, step, values, mask)
        else:
            return Response(
                400, {"error": "observation needs 'values' or 'node'+'features'"}
            )
        return Response(200, {
            "accepted": accepted,
            "version": runtime.store.version,
            "newest_step": runtime.store.newest_step,
        })

    def forecast(self, horizon: int | None, tenant: str) -> Response:
        result = self.pool.forecast(tenant, horizon=horizon)
        headers = {"X-Degraded": result.degraded} if result.degraded else {}
        return Response(200, result.to_json_dict(), headers)

    # ------------------------------------------------------------------
    @staticmethod
    def _wants_json(query: dict, headers: dict | None) -> bool:
        fmt = query.get("format", [""])[0].lower()
        if fmt:
            return fmt == "json"
        accept = (headers or {}).get("Accept", "")
        return "application/json" in accept

    def _resolve_tenant(
        self, route: str, query: dict, headers: dict | None
    ) -> tuple[str | None, str]:
        """(tenant, remaining route); path > header > query > default."""
        if route == "/t" or route.startswith("/t/"):
            parts = route.split("/", 3)  # ['', 't', tenant, rest?]
            tenant = parts[2] if len(parts) > 2 and parts[2] else None
            rest = "/" + parts[3] if len(parts) > 3 else "/"
            return tenant, rest.rstrip("/") or "/"
        header_tenant = (headers or {}).get("X-Tenant")
        if header_tenant:
            return header_tenant, route
        query_tenant = query.get("tenant", [""])[0]
        if query_tenant:
            return query_tenant, route
        return self._default_name(), route

    #: meta routes observed span-free: the router fans /metrics and
    #: /traces scrapes to every worker at sample rate 1.0, and tracing
    #: those fetches would flood the very buffers they read.
    _UNTRACED_ROUTES = frozenset({"/metrics", "/traces", "/slo", "/profile"})

    def handle(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict | None = None,
    ) -> Response:
        """Dispatch one request; exceptions become JSON error responses."""
        parsed = urlparse(path)
        route = parsed.path.rstrip("/") or "/"
        if "/" + route.rsplit("/", 1)[-1] in self._UNTRACED_ROUTES:
            return self._route(method, route, parsed.query, body, headers)
        # Parent precedence: an in-process caller (the cluster shard's
        # wrapping span) wins over a traceparent header; with neither —
        # or a malformed header — this span starts a fresh root trace.
        parent = Tracer.current_context()
        if parent is None:
            parent = extract_trace_context(headers or {})
        began = time.perf_counter()
        with self.tracer.span(
            "http",
            parent=parent,
            attributes={"method": method, "route": route},
        ) as span:
            response = self._route(method, route, parsed.query, body, headers)
            span.set_attribute("status", response.status)
            if response.status >= 400:
                span.status = "error"
        if self.slo is not None and route.split("/")[-1] in ("forecast", "observe"):
            self.slo.record_request(
                response.status,
                latency_ms=(time.perf_counter() - began) * 1e3,
                degraded=bool(response.headers.get("X-Degraded")),
            )
        return response

    def _parse_json(self, body: bytes | None) -> dict | Response:
        try:
            payload = json.loads(body or b"")
        except json.JSONDecodeError as error:
            return Response(400, {"error": f"invalid JSON body: {error}"})
        if not isinstance(payload, dict):
            return Response(400, {"error": "request body must be a JSON object"})
        return payload

    def _route(
        self,
        method: str,
        route: str,
        query_string: str,
        body: bytes | None,
        headers: dict | None,
    ) -> Response:
        query = parse_qs(query_string)
        tenant, route = self._resolve_tenant(route, query, headers)
        runtime = None
        try:
            if tenant is not None:
                try:
                    runtime = self.pool.runtime(tenant)
                except ConfigError:
                    return Response(
                        404,
                        {
                            "error": f"no tenant {tenant!r}",
                            "tenants": self.pool.tenants(),
                        },
                    )
            if method == "GET" and route == "/metrics":
                raw = query.get("exemplars", [""])[0].lower()
                exemplars = None if not raw else raw in ("1", "true", "yes", "on")
                return self.metrics(
                    as_json=self._wants_json(query, headers), exemplars=exemplars
                )
            if method == "GET" and route == "/traces":
                limit = query.get("limit")
                return self.traces(int(limit[0]) if limit else None)
            if method == "GET" and route == "/slo":
                return self.slo_status()
            if method == "GET" and route == "/profile":
                return self.profile(as_json=self._wants_json(query, headers))
            if method == "GET" and route == "/tenants":
                return self.tenants()
            if method == "GET" and route == "/rollouts":
                return self.rollouts()
            if method == "POST" and route == "/rollouts":
                payload = self._parse_json(body)
                if isinstance(payload, Response):
                    return payload
                return self.rollout_action(payload)
            if runtime is None:
                return Response(
                    404,
                    {
                        "error": "no default tenant; address one via "
                        "/t/<tenant>/..., X-Tenant or ?tenant=",
                        "tenants": self.pool.tenants(),
                    },
                )
            if method == "GET" and route == "/healthz":
                return self.healthz(tenant)
            if method == "GET" and route == "/forecast":
                horizon = query.get("horizon")
                return self.forecast(int(horizon[0]) if horizon else None, tenant)
            if method == "POST" and route == "/observe":
                payload = self._parse_json(body)
                if isinstance(payload, Response):
                    return payload
                return self.observe(payload, tenant)
            return Response(404, {"error": f"no route {method} {route}"})
        except Overloaded as error:
            # Shed load (queue saturation or quota): back off, not degrade.
            return Response(429, {"error": str(error)}, self._retry_after(
                runtime if runtime is not None else self._any_runtime(), error
            ))
        except ConfigError as error:
            # Rollout/tenant management called with a bad argument.
            return Response(400, {"error": str(error)})
        # Input errors stay 400 — StateError and DataError are typed
        # repro errors now (no stdlib bases), so they are caught by name
        # next to the stdlib trio raised by payload parsing.
        except (StateError, DataError, ValueError, KeyError, TypeError) as error:
            return Response(400, {"error": str(error)})
        except ServeError as error:
            # Resilience signals that survived the fallback ladder: open
            # breaker, blown deadline, dry ladder. The server is alive
            # but cannot answer — 503 with a backoff hint.
            self.registry.counter("serve/unavailable_responses").inc()
            return Response(
                503,
                {"error": str(error), "cause": type(error).__name__},
                self._retry_after(
                    runtime if runtime is not None else self._any_runtime(), error
                ),
            )

    def _any_runtime(self):
        """Fallback runtime for Retry-After hints on tenant-less errors."""
        return self._runtime(self.pool.tenants()[0])


class _Handler(BaseHTTPRequestHandler):
    app: ServeApp  # injected via the make_server subclass
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test/CI output clean; telemetry covers observability

    def _respond(self, response: Response) -> None:
        payload = response.body
        if isinstance(payload, PlainText):
            body = payload.body.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(response.status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in response.headers.items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802
        self._respond(self.app.handle("GET", self.path, None, dict(self.headers)))

    def do_POST(self) -> None:  # noqa: N802
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length) if length else b""
        self._respond(self.app.handle("POST", self.path, body, dict(self.headers)))


def _reject_bind_args(host, port) -> None:
    if host is not None or port is not None:
        raise TypeError(
            "make_server/run_server no longer accept host/port arguments "
            "(removed in this release); set them on the serve config: "
            "ServeApp(bundle, config=ServeConfig(host=..., port=...))"
        )


def bind_http(app, host: str, port: int) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for any ``handle``-shaped app.

    ``app`` needs only ``handle(method, path, body, headers) -> Response``
    — :class:`ServeApp`, the cluster shard servers and the cluster
    router all share this surface. Lifecycle (``serve_forever`` /
    ``shutdown`` / ``server_close``) belongs to the caller; so does
    starting whatever engines sit behind the app.
    """
    handler = type("BoundHandler", (_Handler,), {"app": app})
    return ThreadingHTTPServer((host, port), handler)


def make_server(
    app: ServeApp, host: None = None, port: None = None
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for ``app``.

    The bind address comes from ``app.config`` (``port=0`` = ephemeral).
    The caller owns the lifecycle: ``serve_forever()`` to block,
    ``shutdown()`` + ``server_close()`` to stop. The pool is started
    here so every engine's batching dispatcher and the shadow worker
    run before the first request.
    """
    _reject_bind_args(host, port)
    server = bind_http(app, app.config.host, app.config.port)
    app.pool.start()
    return server


def run_server(
    app: ServeApp,
    host: None = None,
    port: None = None,
    ready_event: threading.Event | None = None,
) -> None:
    """Blocking entry point used by ``repro serve`` and ``repro fleet``.

    Prints the bound address (machine-parseable first line) before
    serving; ``ready_event`` is set once the socket is listening.
    """
    _reject_bind_args(host, port)
    server = make_server(app)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)
    if ready_event is not None:
        ready_event.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        app.pool.stop()
        app.close()
