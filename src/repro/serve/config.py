"""One validated configuration object for the whole serving stack.

``ServeApp``'s tuning used to arrive as loose kwargs sprinkled over
``ForecastEngine``, ``make_server``, ``run_server`` and the CLI
``serve`` flags. :class:`ServeConfig` collapses all of it — batching,
cache, tracing, quality thresholds and the resilience policy — into a
single frozen dataclass with three constructors:

* ``ServeConfig(...)`` — programmatic, validated in ``__post_init__``;
* ``ServeConfig.from_env()`` — ``REPRO_SERVE_*`` environment variables
  over the defaults (containers, CI);
* ``ServeConfig.from_args(ns)`` — an ``argparse`` namespace from the
  CLI ``serve``/``chaos`` subcommands.

The multi-tenant fleet layers on top: a :class:`FleetConfig` is a base
``ServeConfig`` plus one :class:`TenantConfig` per tenant, each naming
its model bundle, an optional token-bucket quota, per-tenant resilience
overrides and optional :class:`ShadowConfig` / :class:`CanaryConfig`
rollout plans. ``FleetConfig.single()`` wraps a lone ``ServeConfig``
into a one-tenant fleet, which is how the legacy single-engine entry
points keep working unchanged.

The old loose-kwargs call styles (``make_server(app, host, port)``,
engine kwargs passed straight to ``ServeApp``) were removed in this
release; they now raise ``TypeError`` with a migration hint.
"""

from __future__ import annotations

import os
import re
from dataclasses import asdict, dataclass, field, fields, replace

from ..errors import ConfigError
from ..reliability import ResiliencePolicy
from ..telemetry import QualityThresholds

__all__ = [
    "DEFAULT_TENANT",
    "CanaryConfig",
    "FleetConfig",
    "ServeConfig",
    "ShadowConfig",
    "TenantConfig",
]

#: tenant used by every single-tenant entry point (legacy ``ServeApp``)
DEFAULT_TENANT = "default"

# Tenant names become Prometheus label values, path segments and
# manifest keys. Label values are escaped at exposition time, but paths
# and manifests want one predictable charset, so names are restricted
# up front.
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def _env_value(env, key: str, cast, default):
    raw = env.get(key)
    if raw is None:
        return default
    try:
        if cast is bool:
            return raw.strip().lower() in ("1", "true", "yes", "on")
        return cast(raw)
    except ValueError as error:
        raise ConfigError(f"cannot parse {key}={raw!r}: {error}") from error


@dataclass(frozen=True)
class ServeConfig:
    """Everything a serving process needs besides the bundle itself."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the CLI defaults to 8787 via its flag
    max_batch_size: int = 8
    max_wait_s: float = 0.002
    cache_size: int = 256
    plan_enabled: bool = True  # traced execution plans on the forward path
    trace_sample: float = 0.0
    trace_export: str | None = None
    slo_enabled: bool = True
    slo_latency_ms: float = 250.0
    profile_hz: float = 0.0  # 0 = continuous profiler off
    exemplars: bool = False  # trace-id exemplars on /metrics histograms
    quality: QualityThresholds = field(default_factory=QualityThresholds)
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)

    def __post_init__(self):
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be in 0..65535, got {self.port}")
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0:
            raise ConfigError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.cache_size < 0:
            raise ConfigError(f"cache_size must be >= 0, got {self.cache_size}")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigError(
                f"trace_sample must be in [0, 1], got {self.trace_sample}"
            )
        if self.slo_latency_ms <= 0:
            raise ConfigError(
                f"slo_latency_ms must be positive, got {self.slo_latency_ms}"
            )
        if not 0.0 <= self.profile_hz <= 1000.0:
            raise ConfigError(
                f"profile_hz must be in [0, 1000], got {self.profile_hz}"
            )
        if not isinstance(self.quality, QualityThresholds):
            raise ConfigError(
                f"quality must be a QualityThresholds, got {type(self.quality).__name__}"
            )
        if not isinstance(self.resilience, ResiliencePolicy):
            raise ConfigError(
                f"resilience must be a ResiliencePolicy, "
                f"got {type(self.resilience).__name__}"
            )

    def with_overrides(self, **changes) -> "ServeConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, env=None, prefix: str = "REPRO_SERVE_") -> "ServeConfig":
        """Defaults overridden by ``REPRO_SERVE_*`` environment variables.

        Recognised keys (suffix after the prefix): ``HOST``, ``PORT``,
        ``MAX_BATCH_SIZE``, ``MAX_WAIT_MS``, ``CACHE_SIZE``, ``PLAN``
        (bool), ``TRACE_SAMPLE``, ``TRACE_EXPORT``, ``SLO`` (bool),
        ``SLO_LATENCY_MS``, ``PROFILE_HZ``, ``EXEMPLARS`` (bool),
        ``DEADLINE_S``, ``RETRY_ATTEMPTS``, ``BREAKER`` (bool),
        ``BREAKER_OPEN_S``, ``FALLBACK`` (bool), ``MAX_QUEUE_DEPTH``.
        """
        env = os.environ if env is None else env
        base = cls()
        deadline_raw = env.get(prefix + "DEADLINE_S")
        resilience = base.resilience.with_overrides(
            deadline_s=(
                (float(deadline_raw) if deadline_raw.strip().lower() != "none" else None)
                if deadline_raw is not None
                else base.resilience.deadline_s
            ),
            retry_attempts=_env_value(
                env, prefix + "RETRY_ATTEMPTS", int, base.resilience.retry_attempts
            ),
            breaker=_env_value(env, prefix + "BREAKER", bool, base.resilience.breaker),
            breaker_open_s=_env_value(
                env, prefix + "BREAKER_OPEN_S", float, base.resilience.breaker_open_s
            ),
            fallback=_env_value(
                env, prefix + "FALLBACK", bool, base.resilience.fallback
            ),
            max_queue_depth=_env_value(
                env, prefix + "MAX_QUEUE_DEPTH", int, base.resilience.max_queue_depth
            ),
        )
        return cls(
            host=env.get(prefix + "HOST", base.host),
            port=_env_value(env, prefix + "PORT", int, base.port),
            max_batch_size=_env_value(
                env, prefix + "MAX_BATCH_SIZE", int, base.max_batch_size
            ),
            max_wait_s=_env_value(
                env, prefix + "MAX_WAIT_MS", float, base.max_wait_s * 1e3
            )
            / 1e3,
            cache_size=_env_value(env, prefix + "CACHE_SIZE", int, base.cache_size),
            plan_enabled=_env_value(env, prefix + "PLAN", bool, base.plan_enabled),
            trace_sample=_env_value(
                env, prefix + "TRACE_SAMPLE", float, base.trace_sample
            ),
            trace_export=env.get(prefix + "TRACE_EXPORT", base.trace_export),
            slo_enabled=_env_value(env, prefix + "SLO", bool, base.slo_enabled),
            slo_latency_ms=_env_value(
                env, prefix + "SLO_LATENCY_MS", float, base.slo_latency_ms
            ),
            profile_hz=_env_value(env, prefix + "PROFILE_HZ", float, base.profile_hz),
            exemplars=_env_value(env, prefix + "EXEMPLARS", bool, base.exemplars),
            resilience=resilience,
        )

    @classmethod
    def from_args(cls, args) -> "ServeConfig":
        """Build from an ``argparse`` namespace (CLI ``serve``/``chaos``).

        Only attributes present on the namespace override the defaults,
        so both subcommands can share this without carrying every flag.
        """

        def pick(name, default):
            value = getattr(args, name, None)
            return default if value is None else value

        base = cls()
        resilience = base.resilience.with_overrides(
            deadline_s=pick("deadline_s", base.resilience.deadline_s),
            retry_attempts=int(pick("retry_attempts", base.resilience.retry_attempts)),
            breaker=not getattr(args, "no_breaker", False),
            breaker_open_s=float(
                pick("breaker_open_s", base.resilience.breaker_open_s)
            ),
            fallback=not getattr(args, "no_fallback", False),
            max_queue_depth=int(
                pick("max_queue_depth", base.resilience.max_queue_depth)
            ),
        )
        return cls(
            host=pick("host", base.host),
            port=int(pick("port", base.port)),
            max_batch_size=int(pick("max_batch_size", base.max_batch_size)),
            max_wait_s=float(pick("max_wait_ms", base.max_wait_s * 1e3)) / 1e3,
            cache_size=int(pick("cache_size", base.cache_size)),
            plan_enabled=not getattr(args, "no_plan", False),
            trace_sample=float(pick("trace_sample", base.trace_sample)),
            trace_export=getattr(args, "trace_export", None),
            slo_enabled=not getattr(args, "no_slo", False),
            slo_latency_ms=float(pick("slo_latency_ms", base.slo_latency_ms)),
            profile_hz=float(pick("profile_hz", base.profile_hz)),
            exemplars=bool(getattr(args, "exemplars", False)),
            resilience=resilience,
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeConfig":
        """Build from a JSON mapping (fleet manifests).

        ``resilience`` and ``quality`` may be nested JSON objects of
        overrides; every other key maps straight onto a field. Unknown
        keys raise :class:`~repro.errors.ConfigError`.
        """
        if not isinstance(payload, dict):
            raise ConfigError(
                f"serve config must be a JSON object, got {type(payload).__name__}"
            )
        payload = dict(payload)
        kwargs = {}
        if "resilience" in payload:
            kwargs["resilience"] = ResiliencePolicy.from_dict(payload.pop("resilience"))
        if "quality" in payload:
            quality = payload.pop("quality")
            if not isinstance(quality, dict):
                raise ConfigError(
                    f"quality must be a JSON object, got {type(quality).__name__}"
                )
            kwargs["quality"] = QualityThresholds(**quality)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"unknown serve config field(s) {unknown}; "
                f"valid fields: {sorted(known)}"
            )
        kwargs.update(payload)
        return cls(**kwargs)

    def to_json_dict(self) -> dict:
        """Every field as a JSON-serialisable mapping (fleet manifests)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["quality"] = asdict(self.quality)
        out["resilience"] = self.resilience.to_json_dict()
        return out


@dataclass(frozen=True)
class ShadowConfig:
    """A shadow deployment plan for one tenant.

    ``bundle`` names the candidate bundle (manifest-relative path). A
    ``mirror_fraction`` of live forecasts is replayed against the
    candidate *off the request path*; each pair of answers feeds the
    per-tenant divergence histogram.
    """

    bundle: str
    mirror_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if not self.bundle:
            raise ConfigError("shadow bundle must be a non-empty path")
        if not 0.0 < self.mirror_fraction <= 1.0:
            raise ConfigError(
                f"mirror_fraction must be in (0, 1], got {self.mirror_fraction}"
            )

    def to_json_dict(self) -> dict:
        return {
            "bundle": self.bundle,
            "mirror_fraction": self.mirror_fraction,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class CanaryConfig:
    """A staged canary rollout plan for one tenant.

    The candidate bundle receives a ``stages[i]`` fraction of live
    traffic; after ``stage_requests`` clean candidate answers the
    rollout advances to the next stage, and past the last stage the
    candidate is promoted to primary. Rollback is automatic when the
    candidate's circuit breaker opens, its ``QualityMonitor`` verdict
    degrades, its failure ratio exceeds ``max_failure_ratio``, or its
    availability SLO burns: candidate answers feed a dedicated
    :class:`~repro.telemetry.slo.SLOTracker` with canary-scale windows
    (``slo_fast_s``/``slo_slow_s``) against ``slo_target``, and a
    sustained burn past ``slo_burn_threshold`` rolls the stage back
    (``slo_target=None`` disables the gate).
    """

    bundle: str
    stages: tuple[float, ...] = (0.01, 0.1, 0.5, 1.0)
    stage_requests: int = 50
    max_failure_ratio: float = 0.1
    min_failure_samples: int = 5
    seed: int = 0
    slo_target: float | None = 0.99
    slo_fast_s: float = 30.0
    slo_slow_s: float = 300.0
    slo_burn_threshold: float = 2.0

    def __post_init__(self):
        if not self.bundle:
            raise ConfigError("canary bundle must be a non-empty path")
        object.__setattr__(self, "stages", tuple(float(s) for s in self.stages))
        if not self.stages:
            raise ConfigError("canary needs at least one stage weight")
        for weight in self.stages:
            if not 0.0 < weight <= 1.0:
                raise ConfigError(
                    f"canary stage weights must be in (0, 1], got {weight}"
                )
        if list(self.stages) != sorted(self.stages):
            raise ConfigError(f"canary stages must be non-decreasing, got {self.stages}")
        if self.stage_requests < 1:
            raise ConfigError(
                f"stage_requests must be >= 1, got {self.stage_requests}"
            )
        if not 0.0 <= self.max_failure_ratio < 1.0:
            raise ConfigError(
                f"max_failure_ratio must be in [0, 1), got {self.max_failure_ratio}"
            )
        if self.min_failure_samples < 1:
            raise ConfigError(
                f"min_failure_samples must be >= 1, got {self.min_failure_samples}"
            )
        if self.slo_target is not None and not 0.0 < self.slo_target < 1.0:
            raise ConfigError(
                f"slo_target must be in (0, 1) or None, got {self.slo_target}"
            )
        if not 0.0 < self.slo_fast_s < self.slo_slow_s:
            raise ConfigError(
                f"need 0 < slo_fast_s < slo_slow_s, got "
                f"{self.slo_fast_s}/{self.slo_slow_s}"
            )
        if self.slo_burn_threshold <= 0:
            raise ConfigError(
                f"slo_burn_threshold must be positive, got {self.slo_burn_threshold}"
            )

    def to_json_dict(self) -> dict:
        return {
            "bundle": self.bundle,
            "stages": list(self.stages),
            "stage_requests": self.stage_requests,
            "max_failure_ratio": self.max_failure_ratio,
            "min_failure_samples": self.min_failure_samples,
            "seed": self.seed,
            "slo_target": self.slo_target,
            "slo_fast_s": self.slo_fast_s,
            "slo_slow_s": self.slo_slow_s,
            "slo_burn_threshold": self.slo_burn_threshold,
        }


@dataclass(frozen=True)
class TenantConfig:
    """One tenant of the fleet: a bundle, a quota and rollout plans.

    ``quota_rps``/``quota_burst`` parameterise the tenant's token
    bucket (0 rps disables the quota). ``config`` overrides the fleet's
    base :class:`ServeConfig` for this tenant (``None`` inherits).
    """

    name: str
    bundle: str
    quota_rps: float = 0.0
    quota_burst: float = 10.0
    config: ServeConfig | None = None
    shadow: ShadowConfig | None = None
    canary: CanaryConfig | None = None

    def __post_init__(self):
        if not _TENANT_NAME.match(self.name):
            raise ConfigError(
                f"tenant name {self.name!r} is invalid: use 1-64 characters "
                "from [A-Za-z0-9._-], starting with a letter or digit"
            )
        if not self.bundle:
            raise ConfigError(f"tenant {self.name!r} needs a bundle path")
        if self.quota_rps < 0:
            raise ConfigError(f"quota_rps must be >= 0, got {self.quota_rps}")
        if self.quota_rps > 0 and self.quota_burst < 1:
            raise ConfigError(
                f"quota_burst must be >= 1 when a quota is set, got {self.quota_burst}"
            )
        if self.config is not None and not isinstance(self.config, ServeConfig):
            raise ConfigError(
                f"tenant config must be a ServeConfig, got {type(self.config).__name__}"
            )
        if self.shadow is not None and self.canary is not None:
            raise ConfigError(
                f"tenant {self.name!r}: run shadow and canary rollouts one at a "
                "time (shadow first, then canary)"
            )

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantConfig":
        if not isinstance(payload, dict):
            raise ConfigError(
                f"tenant entry must be a JSON object, got {type(payload).__name__}"
            )
        payload = dict(payload)
        kwargs = {}
        if "config" in payload:
            kwargs["config"] = ServeConfig.from_dict(payload.pop("config"))
        if "shadow" in payload and payload["shadow"] is not None:
            kwargs["shadow"] = ShadowConfig(**payload.pop("shadow"))
        if "canary" in payload and payload["canary"] is not None:
            canary = dict(payload.pop("canary"))
            if "stages" in canary:
                canary["stages"] = tuple(canary["stages"])
            kwargs["canary"] = CanaryConfig(**canary)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"unknown tenant field(s) {unknown}; valid fields: {sorted(known)}"
            )
        kwargs.update({k: v for k, v in payload.items() if k not in kwargs})
        return cls(**kwargs)

    def to_json_dict(self) -> dict:
        out: dict = {"name": self.name, "bundle": self.bundle}
        if self.quota_rps:
            out["quota_rps"] = self.quota_rps
            out["quota_burst"] = self.quota_burst
        if self.shadow is not None:
            out["shadow"] = self.shadow.to_json_dict()
        if self.canary is not None:
            out["canary"] = self.canary.to_json_dict()
        return out


@dataclass(frozen=True)
class FleetConfig:
    """A fleet: the base serving config plus one entry per tenant."""

    default: ServeConfig = field(default_factory=ServeConfig)
    tenants: tuple[TenantConfig, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not isinstance(self.default, ServeConfig):
            raise ConfigError(
                f"default must be a ServeConfig, got {type(self.default).__name__}"
            )
        if not self.tenants:
            raise ConfigError("a fleet needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ConfigError(f"duplicate tenant name(s): {dupes}")

    @classmethod
    def single(
        cls, config: ServeConfig | None = None, bundle: str = "<in-memory>"
    ) -> "FleetConfig":
        """A one-tenant fleet wrapping the legacy single-engine setup."""
        config = config if config is not None else ServeConfig()
        return cls(
            default=config,
            tenants=(TenantConfig(name=DEFAULT_TENANT, bundle=bundle),),
        )

    def tenant(self, name: str) -> TenantConfig:
        for entry in self.tenants:
            if entry.name == name:
                return entry
        raise ConfigError(f"no tenant named {name!r} in the fleet")

    def config_for(self, name: str) -> ServeConfig:
        """The effective ServeConfig for ``name`` (tenant override or base)."""
        entry = self.tenant(name)
        return entry.config if entry.config is not None else self.default

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetConfig":
        if not isinstance(payload, dict):
            raise ConfigError(
                f"fleet manifest must be a JSON object, got {type(payload).__name__}"
            )
        default = ServeConfig.from_dict(payload.get("default", {}))
        raw_tenants = payload.get("tenants", [])
        if not isinstance(raw_tenants, list):
            raise ConfigError("fleet manifest 'tenants' must be a JSON array")
        tenants = tuple(TenantConfig.from_dict(entry) for entry in raw_tenants)
        unknown = sorted(set(payload) - {"default", "tenants", "format_version"})
        if unknown:
            raise ConfigError(f"unknown fleet manifest field(s) {unknown}")
        return cls(default=default, tenants=tenants)

    def to_json_dict(self) -> dict:
        return {
            "default": self.default.to_json_dict(),
            "tenants": [tenant.to_json_dict() for tenant in self.tenants],
        }
