"""One validated configuration object for the whole serving stack.

``ServeApp``'s tuning used to arrive as loose kwargs sprinkled over
``ForecastEngine``, ``make_server``, ``run_server`` and the CLI
``serve`` flags. :class:`ServeConfig` collapses all of it — batching,
cache, tracing, quality thresholds and the resilience policy — into a
single frozen dataclass with three constructors:

* ``ServeConfig(...)`` — programmatic, validated in ``__post_init__``;
* ``ServeConfig.from_env()`` — ``REPRO_SERVE_*`` environment variables
  over the defaults (containers, CI);
* ``ServeConfig.from_args(ns)`` — an ``argparse`` namespace from the
  CLI ``serve``/``chaos`` subcommands.

Old call styles (``make_server(app, host, port)``, engine kwargs passed
straight to ``ServeApp``) keep working behind a single
``DeprecationWarning``, mirroring the ``TrainerConfig.verbose``
deprecation from the telemetry PR.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from ..reliability import ResiliencePolicy
from ..telemetry import QualityThresholds

__all__ = ["ServeConfig"]


def _env_value(env, key: str, cast, default):
    raw = env.get(key)
    if raw is None:
        return default
    try:
        if cast is bool:
            return raw.strip().lower() in ("1", "true", "yes", "on")
        return cast(raw)
    except ValueError as error:
        raise ConfigError(f"cannot parse {key}={raw!r}: {error}") from error


@dataclass(frozen=True)
class ServeConfig:
    """Everything a serving process needs besides the bundle itself."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the CLI defaults to 8787 via its flag
    max_batch_size: int = 8
    max_wait_s: float = 0.002
    cache_size: int = 256
    trace_sample: float = 0.0
    trace_export: str | None = None
    quality: QualityThresholds = field(default_factory=QualityThresholds)
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)

    def __post_init__(self):
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be in 0..65535, got {self.port}")
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0:
            raise ConfigError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.cache_size < 0:
            raise ConfigError(f"cache_size must be >= 0, got {self.cache_size}")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigError(
                f"trace_sample must be in [0, 1], got {self.trace_sample}"
            )
        if not isinstance(self.quality, QualityThresholds):
            raise ConfigError(
                f"quality must be a QualityThresholds, got {type(self.quality).__name__}"
            )
        if not isinstance(self.resilience, ResiliencePolicy):
            raise ConfigError(
                f"resilience must be a ResiliencePolicy, "
                f"got {type(self.resilience).__name__}"
            )

    def with_overrides(self, **changes) -> "ServeConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, env=None, prefix: str = "REPRO_SERVE_") -> "ServeConfig":
        """Defaults overridden by ``REPRO_SERVE_*`` environment variables.

        Recognised keys (suffix after the prefix): ``HOST``, ``PORT``,
        ``MAX_BATCH_SIZE``, ``MAX_WAIT_MS``, ``CACHE_SIZE``,
        ``TRACE_SAMPLE``, ``TRACE_EXPORT``, ``DEADLINE_S``,
        ``RETRY_ATTEMPTS``, ``BREAKER`` (bool), ``BREAKER_OPEN_S``,
        ``FALLBACK`` (bool), ``MAX_QUEUE_DEPTH``.
        """
        env = os.environ if env is None else env
        base = cls()
        deadline_raw = env.get(prefix + "DEADLINE_S")
        resilience = base.resilience.with_overrides(
            deadline_s=(
                (float(deadline_raw) if deadline_raw.strip().lower() != "none" else None)
                if deadline_raw is not None
                else base.resilience.deadline_s
            ),
            retry_attempts=_env_value(
                env, prefix + "RETRY_ATTEMPTS", int, base.resilience.retry_attempts
            ),
            breaker=_env_value(env, prefix + "BREAKER", bool, base.resilience.breaker),
            breaker_open_s=_env_value(
                env, prefix + "BREAKER_OPEN_S", float, base.resilience.breaker_open_s
            ),
            fallback=_env_value(
                env, prefix + "FALLBACK", bool, base.resilience.fallback
            ),
            max_queue_depth=_env_value(
                env, prefix + "MAX_QUEUE_DEPTH", int, base.resilience.max_queue_depth
            ),
        )
        return cls(
            host=env.get(prefix + "HOST", base.host),
            port=_env_value(env, prefix + "PORT", int, base.port),
            max_batch_size=_env_value(
                env, prefix + "MAX_BATCH_SIZE", int, base.max_batch_size
            ),
            max_wait_s=_env_value(
                env, prefix + "MAX_WAIT_MS", float, base.max_wait_s * 1e3
            )
            / 1e3,
            cache_size=_env_value(env, prefix + "CACHE_SIZE", int, base.cache_size),
            trace_sample=_env_value(
                env, prefix + "TRACE_SAMPLE", float, base.trace_sample
            ),
            trace_export=env.get(prefix + "TRACE_EXPORT", base.trace_export),
            resilience=resilience,
        )

    @classmethod
    def from_args(cls, args) -> "ServeConfig":
        """Build from an ``argparse`` namespace (CLI ``serve``/``chaos``).

        Only attributes present on the namespace override the defaults,
        so both subcommands can share this without carrying every flag.
        """

        def pick(name, default):
            value = getattr(args, name, None)
            return default if value is None else value

        base = cls()
        resilience = base.resilience.with_overrides(
            deadline_s=pick("deadline_s", base.resilience.deadline_s),
            retry_attempts=int(pick("retry_attempts", base.resilience.retry_attempts)),
            breaker=not getattr(args, "no_breaker", False),
            breaker_open_s=float(
                pick("breaker_open_s", base.resilience.breaker_open_s)
            ),
            fallback=not getattr(args, "no_fallback", False),
            max_queue_depth=int(
                pick("max_queue_depth", base.resilience.max_queue_depth)
            ),
        )
        return cls(
            host=pick("host", base.host),
            port=int(pick("port", base.port)),
            max_batch_size=int(pick("max_batch_size", base.max_batch_size)),
            max_wait_s=float(pick("max_wait_ms", base.max_wait_s * 1e3)) / 1e3,
            cache_size=int(pick("cache_size", base.cache_size)),
            trace_sample=float(pick("trace_sample", base.trace_sample)),
            trace_export=getattr(args, "trace_export", None),
            resilience=resilience,
        )
