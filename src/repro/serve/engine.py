"""Micro-batched online forecast engine.

The engine owns the full request path from a :class:`StateStore`
snapshot to a forecast in original units:

1. **cache** — forecasts are pure in ``(state version, horizon)``; an
   LRU in front of the model answers repeats between observations;
2. **micro-batching** — concurrent requests landing within
   ``max_wait_s`` of each other (up to ``max_batch_size``) are stacked
   into one ``(B, L, N, D)`` forward pass, amortising per-call dispatch
   over the vectorised numpy kernels; identical state versions inside a
   batch are deduplicated and share one forward row;
3. **no-grad inference** — every forward runs under
   :func:`repro.autodiff.inference_mode`, so no backward graph or
   closures are allocated on the hot path.

Telemetry lands in a :class:`repro.telemetry.MetricRegistry`
(``serve/requests``, ``serve/cache_hits``, ``serve/forwards``,
``serve/batch_size``, ``serve/latency_ms``), which the HTTP
``/metrics`` endpoint snapshots.

Tracing follows each request across the micro-batcher's thread
boundary: the request's span context is captured at enqueue time, a
``queue`` span measures the wait, and the dispatcher opens one
``batch_forward`` span *parented to the head request's trace* with
links to every request trace it serves — so a single trace tree shows
HTTP → engine → queue → batch_forward → model_forward, and the batch
span names its co-riders.

Resilience (see ``docs/RELIABILITY.md``): every request carries a
:class:`~repro.reliability.Deadline` checked at batch boundaries, the
model forward sits behind a retry policy and a circuit breaker, the
request queue is bounded (load shedding instead of unbounded latency),
and failures walk a fallback ladder — last successful forecast served
stale, then a window-mean forecast computed purely from live state —
with the answering rung tagged in ``Forecast.degraded``.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass

import numpy as np

from ..autodiff import default_dtype, inference_mode
from ..datasets import ZScoreScaler
from ..errors import CircuitOpen, DeadlineExceeded, Overloaded, ServeError
from ..models.base import NeuralForecaster
from ..reliability import Deadline, Fallback, ResiliencePolicy, window_mean_forecast
from ..telemetry import MetricRegistry, Tracer, get_registry, get_tracer, label_block
from .cache import LRUCache
from .planner import PlanRuntime
from .state import StateStore, StateWindow

__all__ = ["Forecast", "ForecastEngine"]


@dataclass(frozen=True)
class Forecast:
    """One answered forecast request."""

    prediction: np.ndarray  # (horizon, N, D_out), original units
    horizon: int
    version: int  # state version the forecast was computed at
    newest_step: int  # absolute step of the last observed slot
    cached: bool  # answered from the LRU without a model forward
    degraded: str | None = None  # fallback rung that answered, None = fresh

    def to_json_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "version": self.version,
            "newest_step": self.newest_step,
            "cached": self.cached,
            "degraded": self.degraded,
            "prediction": self.prediction.tolist(),
        }


class _Request:
    __slots__ = ("window", "horizon", "future", "submitted", "ctx", "queue_span",
                 "deadline")

    def __init__(self, window: StateWindow, horizon: int, submitted: float,
                 ctx=None, queue_span=None, deadline: Deadline | None = None):
        self.window = window
        self.horizon = horizon
        self.future: "Future[Forecast]" = Future()
        self.submitted = submitted
        self.ctx = ctx  # SpanContext of the requesting trace (or None)
        self.queue_span = queue_span  # open "queue" span, ended by the dispatcher
        self.deadline = deadline  # per-request budget, checked at batch boundaries


class ForecastEngine:
    """Serves forecasts for one sensor network from streaming state.

    Parameters
    ----------
    model:
        A trained :class:`NeuralForecaster` (switched to eval mode).
    scaler:
        The fitted :class:`ZScoreScaler` from training — raw store
        values are transformed on the way in, predictions inverse-
        transformed on the way out, reproducing the offline pipeline.
    store:
        The live :class:`StateStore` (shared with the observation feed).
    max_batch_size:
        Upper bound on requests fused into one forward pass; 1 disables
        micro-batching (the sequential dispatch baseline).
    max_wait_s:
        How long the dispatcher holds the first request of a batch open
        for followers (the classic size-or-deadline queue).
    cache_size:
        LRU capacity over ``(version, horizon)`` keys; 0 disables.
    policy:
        The :class:`~repro.reliability.ResiliencePolicy` governing
        deadlines, retries, the forward circuit breaker, the fallback
        ladder and queue bounding. ``ResiliencePolicy.disabled()``
        reproduces the pre-resilience engine bit for bit.
    labels:
        Extra Prometheus labels stamped on every serve metric this
        engine emits (the fleet passes ``{"tenant": name}``). Empty
        keeps the original unlabelled series names, so a single-engine
        deployment's exposition is unchanged.
    name:
        Identity for the engine's circuit breaker (gauge label and
        snapshot ``name`` field); the pool derives one per tenant.
    plan:
        Enable traced execution plans (:mod:`repro.autodiff.plan`) on
        the forward path. Models that do not implement
        ``plan_inputs``, and any request shape the tracer cannot
        faithfully compile, fall back to the eager forward
        transparently — ``plan=False`` only exists to force the eager
        baseline (benchmarks, debugging).
    cache_token:
        Opaque identity of the served weights (the bundle fingerprint).
        Mixed into every LRU cache key so two engines serving different
        bundle versions — or one engine across a hot-swap — can never
        alias each other's cached forecasts.
    """

    def __init__(
        self,
        model: NeuralForecaster,
        scaler: ZScoreScaler,
        store: StateStore,
        max_batch_size: int = 8,
        max_wait_s: float = 0.002,
        cache_size: int = 256,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
        policy: ResiliencePolicy | None = None,
        labels: dict[str, str] | None = None,
        name: str = "model",
        plan: bool = True,
        cache_token: str | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if store.input_length != model.input_length:
            raise ValueError(
                f"store window length {store.input_length} != "
                f"model input length {model.input_length}"
            )
        self.model = model.eval()
        self.scaler = scaler
        self.store = store
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.cache = LRUCache(cache_size) if cache_size > 0 else None
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.labels = dict(labels) if labels else {}
        self.name = name
        self.cache_token = cache_token
        self.planner = (
            PlanRuntime(
                self.model, self.registry, self.tracer, labels=self.labels
            )
            if plan
            else None
        )
        self.breaker = self.policy.make_breaker(name, registry=self.registry)
        self.retry = self.policy.make_retry()
        # queue.Queue(maxsize=0) is unbounded, matching max_queue_depth=0.
        self._queue: "queue.Queue[_Request | None]" = queue.Queue(
            maxsize=self.policy.max_queue_depth
        )
        self._worker: threading.Thread | None = None
        self._forward_lock = threading.Lock()
        # Last successful full-horizon prediction, for the stale rung of
        # the fallback ladder: (version, newest_step, prediction array).
        # Written only under _forward_lock-free dispatcher code; reads
        # are racy-but-atomic tuple loads.
        self._last_good: tuple[int, int, np.ndarray] | None = None

    def _m(self, base: str, **extra: str) -> str:
        """Registry name for ``base`` with this engine's labels applied."""
        if not self.labels and not extra:
            return base
        return base + label_block({**self.labels, **extra})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ForecastEngine":
        """Spawn the batching dispatcher; requests then queue for fusion."""
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._dispatch_loop, name="forecast-engine", daemon=True
            )
            self._worker.start()
        return self

    def stop(self) -> None:
        """Drain and join the dispatcher (idempotent)."""
        if self._worker is not None and self._worker.is_alive():
            self._queue.put(None)
            self._worker.join()
        self._worker = None

    def __enter__(self) -> "ForecastEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    # ------------------------------------------------------------------
    # Resilience surface
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for batch formation (approximate)."""
        return self._queue.qsize()

    @property
    def saturated(self) -> bool:
        """True when the bounded request queue is at capacity.

        The observation path consults this to reject-with-backoff while
        the forecast path is drowning, instead of piling more state
        churn onto a struggling server.
        """
        depth = self.policy.max_queue_depth
        return depth > 0 and self._queue.qsize() >= depth

    def reliability_snapshot(self) -> dict:
        """JSON-ready resilience state for ``/healthz`` and operators."""

        def count(name: str, **extra: str) -> int:
            return int(self.registry.counter(self._m(name, **extra)).value)

        return {
            "policy": {
                "deadline_s": self.policy.deadline_s,
                "retry_attempts": self.policy.retry_attempts,
                "breaker": self.policy.breaker,
                "fallback": self.policy.fallback,
                "max_queue_depth": self.policy.max_queue_depth,
            },
            "breaker": self.breaker.snapshot() if self.breaker is not None else None,
            "queue_depth": self.queue_depth,
            "degraded_total": count("serve/degraded"),
            "fallback": {
                "stale": count("serve/fallback", rung="stale"),
                "window_mean": count("serve/fallback", rung="window_mean"),
            },
            "shed_total": count("serve/shed"),
            "deadline_expired_total": count("serve/deadline_expired"),
            "unavailable_total": count("serve/unavailable"),
            "plan": self.planner.snapshot() if self.planner is not None else None,
        }

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def forecast(
        self,
        horizon: int | None = None,
        timeout: float | None = 30.0,
        deadline: Deadline | None = None,
    ) -> Forecast:
        """Answer one forecast request (thread-safe).

        With the dispatcher running the request is queued for micro-
        batching; otherwise it is computed inline. ``horizon`` defaults
        to the model's full output length. ``deadline`` bounds the whole
        request (default: the policy's ``deadline_s`` budget); a fresh
        forecast that fails or times out degrades down the fallback
        ladder when the policy allows, with the answering rung recorded
        in ``Forecast.degraded``.
        """
        horizon = self.model.output_length if horizon is None else int(horizon)
        if not 1 <= horizon <= self.model.output_length:
            raise ValueError(
                f"horizon {horizon} out of range 1..{self.model.output_length}"
            )
        start = time.perf_counter()
        self.registry.counter(self._m("serve/requests")).inc()
        if deadline is None:
            deadline = self.policy.make_deadline()
        with self.tracer.span(
            "engine.forecast", attributes={"horizon": horizon}
        ) as span:
            window = self.store.window()
            span.set_attribute("version", window.version)
            cached = self._cache_lookup(window.version, horizon)
            if cached is not None:
                span.set_attribute("cache_hit", True)
                self.registry.counter(self._m("serve/cache_hits")).inc()
                self._observe_latency(start)
                return cached
            span.set_attribute("cache_hit", False)
            try:
                result = self._fresh(window, horizon, start, span, timeout, deadline)
            except Overloaded:
                raise  # shed load immediately; serving a fallback would hide it
            except Exception as error:
                if not self.policy.fallback:
                    raise
                result = self._degrade(window, horizon, error, span)
        self._observe_latency(start)
        return result

    def _fresh(
        self,
        window: StateWindow,
        horizon: int,
        start: float,
        span,
        timeout: float | None,
        deadline: Deadline | None,
    ) -> Forecast:
        """The fresh-forecast path: enqueue (or compute inline) and wait."""
        if deadline is not None:
            deadline.check("forecast admission")
        if self.running:
            # The dispatcher thread closes the queue span when it picks
            # the request up, measuring time spent waiting for batch
            # formation.
            queue_span = self.tracer.start_span("queue", parent=span.context)
            request = _Request(window, horizon, start, ctx=span.context,
                               queue_span=queue_span, deadline=deadline)
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                self.tracer.end_span(queue_span)
                self.registry.counter(self._m("serve/shed")).inc()
                raise Overloaded(
                    f"forecast queue full ({self.policy.max_queue_depth} pending)"
                ) from None
            wait = timeout if deadline is None else deadline.clamp(
                timeout if timeout is not None else deadline.remaining()
            )
            try:
                return request.future.result(timeout=wait)
            except _FutureTimeout:
                raise DeadlineExceeded(
                    f"forecast not answered within {wait:.3f}s"
                ) from None
        request = _Request(window, horizon, start, ctx=span.context,
                           deadline=deadline)
        return self._answer([request])[0]

    # ------------------------------------------------------------------
    # Fallback ladder
    # ------------------------------------------------------------------
    def _stale_lookup(self, horizon: int) -> Forecast | None:
        """The last successful forecast, re-served and tagged stale."""
        last = self._last_good
        if last is None:
            return None
        version, newest_step, full = last
        return Forecast(
            prediction=full[:horizon].copy(),
            horizon=horizon,
            version=version,
            newest_step=newest_step,
            cached=True,
            degraded="stale",
        )

    def _degrade(
        self, window: StateWindow, horizon: int, error: Exception, span
    ) -> Forecast:
        """Walk the fallback ladder after a fresh forecast failed.

        Rungs: the last successful forecast served stale, then a window-
        mean forecast computed from the live state snapshot. Degraded
        results never enter the LRU cache (a recovered model must not be
        shadowed by them). When every rung is dry the *original* failure
        propagates, so callers see why the model path broke.
        """

        def stale() -> Forecast:
            result = self._stale_lookup(horizon)
            if result is None:
                raise ServeError("no previous successful forecast to serve stale")
            return result

        def window_mean() -> Forecast:
            return Forecast(
                prediction=window_mean_forecast(window, horizon),
                horizon=horizon,
                version=window.version,
                newest_step=window.newest_step,
                cached=False,
                degraded="window_mean",
            )

        ladder = Fallback(
            [("stale", stale), ("window_mean", window_mean)], catch=(ServeError,)
        )
        try:
            outcome = ladder.call()
        except ServeError:
            self.registry.counter(self._m("serve/unavailable")).inc()
            span.set_attribute("degraded", "unavailable")
            raise error from None
        self.registry.counter(self._m("serve/degraded")).inc()
        self.registry.counter(self._m("serve/fallback", rung=outcome.rung)).inc()
        span.set_attribute("degraded", outcome.rung)
        span.set_attribute("degraded_cause", type(error).__name__)
        return outcome.value

    def _observe_latency(self, start: float) -> None:
        # Pin the sampled trace id as a bucket exemplar so a slow
        # histogram bucket on /metrics links straight to its trace.
        context = Tracer.current_context()
        exemplar = (
            context.trace_id if context is not None and context.sampled else None
        )
        self.registry.histogram(self._m("serve/latency_ms")).observe(
            (time.perf_counter() - start) * 1e3, exemplar=exemplar
        )

    def _cache_key(self, version: int, horizon: int) -> tuple:
        """LRU key for one forecast.

        Besides ``(version, horizon)`` the key pins the served weights
        (``cache_token``) and the active dtype policy: a hot-swapped
        bundle or a policy flip must miss, never serve the other
        configuration's numbers.
        """
        return (self.cache_token, str(np.dtype(default_dtype())), version, horizon)

    def _cache_lookup(self, version: int, horizon: int) -> Forecast | None:
        if self.cache is None:
            return None
        hit = self.cache.get(self._cache_key(version, horizon))
        if hit is None:
            return None
        return Forecast(
            prediction=hit.prediction,
            horizon=horizon,
            version=version,
            newest_step=hit.newest_step,
            cached=True,
        )

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            head = self._queue.get()
            if head is None:
                return
            batch = [head]
            deadline = time.perf_counter() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                try:
                    item = self._queue.get(
                        timeout=max(remaining, 0.0) if remaining > 0 else None,
                        block=remaining > 0,
                    )
                except queue.Empty:
                    break
                if item is None:
                    # Answer what we have, then shut down.
                    self._finish(batch)
                    return
                batch.append(item)
            self._finish(batch)

    def _finish(self, batch: list[_Request]) -> None:
        # Batch boundary: requests whose deadline expired while queueing
        # are failed here instead of riding (and slowing) the forward.
        live: list[_Request] = []
        for request in batch:
            if request.deadline is not None and request.deadline.expired:
                if request.queue_span is not None:
                    self.tracer.end_span(request.queue_span)
                self.registry.counter(self._m("serve/deadline_expired")).inc()
                request.future.set_exception(
                    DeadlineExceeded(
                        f"request spent its {request.deadline.budget_s:.3f}s "
                        "budget waiting for batch formation"
                    )
                )
            else:
                live.append(request)
        if not live:
            return
        try:
            results = self._answer(live)
        except Exception as error:  # propagate to every waiter
            for request in live:
                request.future.set_exception(error)
            return
        for request, result in zip(live, results):
            request.future.set_result(result)

    def _answer(self, batch: list[_Request]) -> list[Forecast]:
        """Run one fused forward for the batch and fan results out."""
        # Queue time ends the moment the batch starts processing.
        for request in batch:
            if request.queue_span is not None:
                self.tracer.end_span(request.queue_span)
        # The batch span adopts the head request's trace (so that trace
        # shows the full HTTP → queue → batch_forward → model path) and
        # links every request trace it serves, co-riders included.
        head_ctx = next((r.ctx for r in batch if r.ctx is not None), None)
        links = [r.ctx for r in batch if r.ctx is not None]
        with self.tracer.span(
            "batch_forward",
            parent=head_ctx,
            links=links,
            attributes={"batch_size": len(batch)},
        ) as bspan:
            # Deduplicate identical state versions: concurrent requests
            # between two observations share one forward row.
            unique: dict[int, int] = {}
            windows: list[StateWindow] = []
            for request in batch:
                if request.window.version not in unique:
                    unique[request.window.version] = len(windows)
                    windows.append(request.window)
            bspan.set_attribute("unique_versions", len(windows))
            predictions = self._guarded_predict(windows, batch)  # (U, T_out, N, D_out)

            self.registry.counter(self._m("serve/batches")).inc()
            self.registry.histogram(self._m("serve/batch_size")).observe(len(batch))

            # Remember the freshest successful full-horizon prediction —
            # it is the stale rung of the fallback ladder.
            newest = max(windows, key=lambda w: w.version)
            self._last_good = (
                newest.version,
                newest.newest_step,
                predictions[unique[newest.version]].copy(),
            )

            results = []
            for request in batch:
                full = predictions[unique[request.window.version]]
                forecast = Forecast(
                    prediction=full[: request.horizon].copy(),
                    horizon=request.horizon,
                    version=request.window.version,
                    newest_step=request.window.newest_step,
                    cached=False,
                )
                if self.cache is not None:
                    self.cache.put(
                        self._cache_key(request.window.version, request.horizon),
                        forecast,
                    )
                results.append(forecast)
        return results

    def _guarded_predict(
        self, windows: list[StateWindow], batch: list[_Request]
    ) -> np.ndarray:
        """The model forward behind the breaker and the retry policy.

        One breaker outcome per *batch* — the fused forward either
        serves everyone or no one, so batch members must not multiply
        into the failure window.
        """
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            raise CircuitOpen(
                f"model circuit is {breaker.state}; failing fast"
            )
        # Retries must not sleep past the tightest waiting deadline.
        deadlines = [r.deadline for r in batch if r.deadline is not None]
        tightest = (
            min(deadlines, key=lambda d: d.remaining()) if deadlines else None
        )
        try:
            if self.retry is not None:
                predictions = self.retry.call(
                    self._predict, windows, deadline=tightest
                )
            else:
                predictions = self._predict(windows)
            if not np.all(np.isfinite(predictions)):
                raise ServeError("model produced non-finite predictions")
        except BaseException:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return predictions

    def _predict(self, windows: list[StateWindow]) -> np.ndarray:
        """No-grad batched forward over window snapshots, original units."""
        x = np.stack([w.x for w in windows])  # (U, L, N, D) raw units
        m = np.stack([w.m for w in windows])
        steps = np.stack([w.steps_of_day for w in windows])
        x_scaled = self.scaler.transform(x, m)
        self.registry.counter(self._m("serve/forwards")).inc()
        with self.tracer.span(
            "model_forward",
            attributes={"rows": len(windows), "model": type(self.model).__name__},
        ) as span:
            with self._forward_lock:
                scaled = None
                if self.planner is not None:
                    # Plan replay hands back an arena alias (copy=False);
                    # inverse_transform consumes it into a fresh array
                    # before the lock — and thus the next replay — can
                    # clobber it.
                    scaled = self.planner.predict(x_scaled, m, steps)
                if scaled is None:
                    span.set_attribute("exec_mode", "eager")
                    with inference_mode():
                        scaled = self.model(x_scaled, m, steps).prediction.data
                else:
                    span.set_attribute("exec_mode", "planned")
                result = self.scaler.inverse_transform(scaled)
        return result
