"""Micro-batched online forecast engine.

The engine owns the full request path from a :class:`StateStore`
snapshot to a forecast in original units:

1. **cache** — forecasts are pure in ``(state version, horizon)``; an
   LRU in front of the model answers repeats between observations;
2. **micro-batching** — concurrent requests landing within
   ``max_wait_s`` of each other (up to ``max_batch_size``) are stacked
   into one ``(B, L, N, D)`` forward pass, amortising per-call dispatch
   over the vectorised numpy kernels; identical state versions inside a
   batch are deduplicated and share one forward row;
3. **no-grad inference** — every forward runs under
   :func:`repro.autodiff.inference_mode`, so no backward graph or
   closures are allocated on the hot path.

Telemetry lands in a :class:`repro.telemetry.MetricRegistry`
(``serve/requests``, ``serve/cache_hits``, ``serve/forwards``,
``serve/batch_size``, ``serve/latency_ms``), which the HTTP
``/metrics`` endpoint snapshots.

Tracing follows each request across the micro-batcher's thread
boundary: the request's span context is captured at enqueue time, a
``queue`` span measures the wait, and the dispatcher opens one
``batch_forward`` span *parented to the head request's trace* with
links to every request trace it serves — so a single trace tree shows
HTTP → engine → queue → batch_forward → model_forward, and the batch
span names its co-riders.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..autodiff import inference_mode
from ..datasets import ZScoreScaler
from ..models.base import NeuralForecaster
from ..telemetry import MetricRegistry, Tracer, get_registry, get_tracer
from .cache import LRUCache
from .state import StateStore, StateWindow

__all__ = ["Forecast", "ForecastEngine"]


@dataclass(frozen=True)
class Forecast:
    """One answered forecast request."""

    prediction: np.ndarray  # (horizon, N, D_out), original units
    horizon: int
    version: int  # state version the forecast was computed at
    newest_step: int  # absolute step of the last observed slot
    cached: bool  # answered from the LRU without a model forward

    def to_json_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "version": self.version,
            "newest_step": self.newest_step,
            "cached": self.cached,
            "prediction": self.prediction.tolist(),
        }


class _Request:
    __slots__ = ("window", "horizon", "future", "submitted", "ctx", "queue_span")

    def __init__(self, window: StateWindow, horizon: int, submitted: float,
                 ctx=None, queue_span=None):
        self.window = window
        self.horizon = horizon
        self.future: "Future[Forecast]" = Future()
        self.submitted = submitted
        self.ctx = ctx  # SpanContext of the requesting trace (or None)
        self.queue_span = queue_span  # open "queue" span, ended by the dispatcher


class ForecastEngine:
    """Serves forecasts for one sensor network from streaming state.

    Parameters
    ----------
    model:
        A trained :class:`NeuralForecaster` (switched to eval mode).
    scaler:
        The fitted :class:`ZScoreScaler` from training — raw store
        values are transformed on the way in, predictions inverse-
        transformed on the way out, reproducing the offline pipeline.
    store:
        The live :class:`StateStore` (shared with the observation feed).
    max_batch_size:
        Upper bound on requests fused into one forward pass; 1 disables
        micro-batching (the sequential dispatch baseline).
    max_wait_s:
        How long the dispatcher holds the first request of a batch open
        for followers (the classic size-or-deadline queue).
    cache_size:
        LRU capacity over ``(version, horizon)`` keys; 0 disables.
    """

    def __init__(
        self,
        model: NeuralForecaster,
        scaler: ZScoreScaler,
        store: StateStore,
        max_batch_size: int = 8,
        max_wait_s: float = 0.002,
        cache_size: int = 256,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if store.input_length != model.input_length:
            raise ValueError(
                f"store window length {store.input_length} != "
                f"model input length {model.input_length}"
            )
        self.model = model.eval()
        self.scaler = scaler
        self.store = store
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.cache = LRUCache(cache_size) if cache_size > 0 else None
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._queue: "queue.Queue[_Request | None]" = queue.Queue()
        self._worker: threading.Thread | None = None
        self._forward_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ForecastEngine":
        """Spawn the batching dispatcher; requests then queue for fusion."""
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._dispatch_loop, name="forecast-engine", daemon=True
            )
            self._worker.start()
        return self

    def stop(self) -> None:
        """Drain and join the dispatcher (idempotent)."""
        if self._worker is not None and self._worker.is_alive():
            self._queue.put(None)
            self._worker.join()
        self._worker = None

    def __enter__(self) -> "ForecastEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def forecast(self, horizon: int | None = None, timeout: float | None = 30.0) -> Forecast:
        """Answer one forecast request (thread-safe).

        With the dispatcher running the request is queued for micro-
        batching; otherwise it is computed inline. ``horizon`` defaults
        to the model's full output length.
        """
        horizon = self.model.output_length if horizon is None else int(horizon)
        if not 1 <= horizon <= self.model.output_length:
            raise ValueError(
                f"horizon {horizon} out of range 1..{self.model.output_length}"
            )
        start = time.perf_counter()
        self.registry.counter("serve/requests").inc()
        with self.tracer.span(
            "engine.forecast", attributes={"horizon": horizon}
        ) as span:
            window = self.store.window()
            span.set_attribute("version", window.version)
            cached = self._cache_lookup(window.version, horizon)
            if cached is not None:
                span.set_attribute("cache_hit", True)
                self.registry.counter("serve/cache_hits").inc()
                self._observe_latency(start)
                return cached
            span.set_attribute("cache_hit", False)
            if self.running:
                # The dispatcher thread closes the queue span when it
                # picks the request up, measuring time spent waiting for
                # batch formation.
                queue_span = self.tracer.start_span("queue", parent=span.context)
                request = _Request(window, horizon, start,
                                   ctx=span.context, queue_span=queue_span)
                self._queue.put(request)
                result = request.future.result(timeout=timeout)
            else:
                request = _Request(window, horizon, start, ctx=span.context)
                result = self._answer([request])[0]
        self._observe_latency(start)
        return result

    def _observe_latency(self, start: float) -> None:
        self.registry.histogram("serve/latency_ms").observe(
            (time.perf_counter() - start) * 1e3
        )

    def _cache_lookup(self, version: int, horizon: int) -> Forecast | None:
        if self.cache is None:
            return None
        hit = self.cache.get((version, horizon))
        if hit is None:
            return None
        return Forecast(
            prediction=hit.prediction,
            horizon=horizon,
            version=version,
            newest_step=hit.newest_step,
            cached=True,
        )

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            head = self._queue.get()
            if head is None:
                return
            batch = [head]
            deadline = time.perf_counter() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                try:
                    item = self._queue.get(
                        timeout=max(remaining, 0.0) if remaining > 0 else None,
                        block=remaining > 0,
                    )
                except queue.Empty:
                    break
                if item is None:
                    # Answer what we have, then shut down.
                    self._finish(batch)
                    return
                batch.append(item)
            self._finish(batch)

    def _finish(self, batch: list[_Request]) -> None:
        try:
            results = self._answer(batch)
        except Exception as error:  # propagate to every waiter
            for request in batch:
                request.future.set_exception(error)
            return
        for request, result in zip(batch, results):
            request.future.set_result(result)

    def _answer(self, batch: list[_Request]) -> list[Forecast]:
        """Run one fused forward for the batch and fan results out."""
        # Queue time ends the moment the batch starts processing.
        for request in batch:
            if request.queue_span is not None:
                self.tracer.end_span(request.queue_span)
        # The batch span adopts the head request's trace (so that trace
        # shows the full HTTP → queue → batch_forward → model path) and
        # links every request trace it serves, co-riders included.
        head_ctx = next((r.ctx for r in batch if r.ctx is not None), None)
        links = [r.ctx for r in batch if r.ctx is not None]
        with self.tracer.span(
            "batch_forward",
            parent=head_ctx,
            links=links,
            attributes={"batch_size": len(batch)},
        ) as bspan:
            # Deduplicate identical state versions: concurrent requests
            # between two observations share one forward row.
            unique: dict[int, int] = {}
            windows: list[StateWindow] = []
            for request in batch:
                if request.window.version not in unique:
                    unique[request.window.version] = len(windows)
                    windows.append(request.window)
            bspan.set_attribute("unique_versions", len(windows))
            predictions = self._predict(windows)  # (U, T_out, N, D_out)

            self.registry.counter("serve/batches").inc()
            self.registry.histogram("serve/batch_size").observe(len(batch))

            results = []
            for request in batch:
                full = predictions[unique[request.window.version]]
                forecast = Forecast(
                    prediction=full[: request.horizon].copy(),
                    horizon=request.horizon,
                    version=request.window.version,
                    newest_step=request.window.newest_step,
                    cached=False,
                )
                if self.cache is not None:
                    self.cache.put(
                        (request.window.version, request.horizon), forecast
                    )
                results.append(forecast)
        return results

    def _predict(self, windows: list[StateWindow]) -> np.ndarray:
        """No-grad batched forward over window snapshots, original units."""
        x = np.stack([w.x for w in windows])  # (U, L, N, D) raw units
        m = np.stack([w.m for w in windows])
        steps = np.stack([w.steps_of_day for w in windows])
        x_scaled = self.scaler.transform(x, m)
        self.registry.counter("serve/forwards").inc()
        with self.tracer.span(
            "model_forward",
            attributes={"rows": len(windows), "model": type(self.model).__name__},
        ):
            with self._forward_lock, inference_mode():
                out = self.model(x_scaled, m, steps)
        return self.scaler.inverse_transform(out.prediction.data)
