"""Online serving: model bundles, streaming state, micro-batched engine,
HTTP front-end and load benchmarking.

The offline story (train → evaluate on windowed arrays) gets a
deployment counterpart::

    from repro.serve import export_bundle, load_bundle, ServeApp, run_server

    export_bundle(model, "RIHGCN", ctx, "artifacts/rihgcn-demo")
    bundle = load_bundle("artifacts/rihgcn-demo")
    run_server(ServeApp(bundle), port=8787)

See ``docs/SERVING.md`` for the full walk-through and
``examples/serve_quickstart.py`` for a runnable end-to-end script.
"""

from .artifact import (
    FLEET_FORMAT_VERSION,
    FORMAT_VERSION,
    QUANT_MODES,
    ModelBundle,
    export_bundle,
    load_bundle,
    load_fleet_manifest,
    quantization_mae_drift,
    quantize_bundle,
    save_fleet_manifest,
)
from .cache import LRUCache
from .cluster import (
    ClusterConfig,
    ClusterRouter,
    ClusterSupervisor,
    LocalCluster,
    ShardApp,
    build_plan,
    corridor_adjacency,
    make_demo_bundle,
    make_shard_bundle,
    run_cluster_smoke,
    spatial_hops,
)
from .config import (
    DEFAULT_TENANT,
    CanaryConfig,
    FleetConfig,
    ServeConfig,
    ShadowConfig,
    TenantConfig,
)
from .engine import Forecast, ForecastEngine
from .fleet import EnginePool, TenantQuota, build_pool
from .http import PlainText, Response, ServeApp, bind_http, make_server, run_server
from .planner import PlanRuntime
from .loadgen import (
    ClusterLoadReport,
    LoadReport,
    SoakReport,
    compare_batched_sequential,
    make_chaos_app,
    open_loop_arrivals,
    run_chaos_soak,
    run_cluster_load,
    run_fleet_smoke,
    run_load,
    run_slo_smoke,
    zipf_node_sampler,
)
from .state import StateStore, StateWindow

__all__ = [
    "FLEET_FORMAT_VERSION",
    "FORMAT_VERSION",
    "ModelBundle",
    "export_bundle",
    "load_bundle",
    "load_fleet_manifest",
    "quantization_mae_drift",
    "quantize_bundle",
    "QUANT_MODES",
    "save_fleet_manifest",
    "LRUCache",
    "PlanRuntime",
    "DEFAULT_TENANT",
    "CanaryConfig",
    "FleetConfig",
    "ServeConfig",
    "ShadowConfig",
    "TenantConfig",
    "Forecast",
    "ForecastEngine",
    "EnginePool",
    "TenantQuota",
    "build_pool",
    "PlainText",
    "Response",
    "ServeApp",
    "bind_http",
    "make_server",
    "run_server",
    "LoadReport",
    "run_load",
    "compare_batched_sequential",
    "SoakReport",
    "make_chaos_app",
    "run_chaos_soak",
    "run_fleet_smoke",
    "run_slo_smoke",
    "ClusterLoadReport",
    "open_loop_arrivals",
    "run_cluster_load",
    "zipf_node_sampler",
    "ClusterConfig",
    "ClusterRouter",
    "ClusterSupervisor",
    "LocalCluster",
    "ShardApp",
    "build_plan",
    "corridor_adjacency",
    "make_demo_bundle",
    "make_shard_bundle",
    "run_cluster_smoke",
    "spatial_hops",
    "StateStore",
    "StateWindow",
]
