"""Versioned model bundles: everything a server needs in two files.

A bundle is a ``.npz`` archive (weights, fitted scaler statistics, graph
arrays) plus a human-readable ``.json`` header (format version, model
name, configs, shapes) sitting next to it. The split keeps the header
inspectable with any text editor while the arrays stay in numpy's own
dependency-free format.

Loading rebuilds the architecture through the same
:data:`repro.experiments.registry.NEURAL_MODELS` builders used for
training — the bundle carries a duck-typed stand-in for the experiment
context, so training data is *not* needed at serving time.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, fields

import numpy as np

from ..autodiff import default_dtype
from ..datasets import ZScoreScaler
from ..errors import (
    BundleFormatError,
    BundleModelError,
    MissingParameterError,
    QuantizationError,
    ShapeMismatchError,
)
from ..experiments.config import DataConfig, ModelConfig
from ..experiments.registry import NEURAL_MODELS
from ..graphs import HeterogeneousGraphSet, TimelinePartition
from ..models.base import NeuralForecaster
from .engine import ForecastEngine
from .state import StateStore

__all__ = [
    "FLEET_FORMAT_VERSION",
    "FORMAT_VERSION",
    "QUANT_MODES",
    "ModelBundle",
    "export_bundle",
    "load_bundle",
    "load_fleet_manifest",
    "quantization_mae_drift",
    "quantize_bundle",
    "save_fleet_manifest",
]

#: bumped on any incompatible change to the bundle layout
FORMAT_VERSION = 1

#: bumped on any incompatible change to the fleet manifest layout
FLEET_FORMAT_VERSION = 1

_PARAM_PREFIX = "param/"
# Per-channel quantization scales ride next to their parameter. The
# prefix shares no namespace with _PARAM_PREFIX ("param_" != "param/"),
# so un-quantized loaders would simply ignore the extra arrays.
_SCALE_PREFIX = "param_scale/"

#: supported weight quantization modes for :func:`quantize_bundle`
QUANT_MODES = ("int8", "float16")


def _bundle_paths(path: str | os.PathLike) -> tuple[str, str]:
    """(arrays, header) file names for a bundle base ``path``."""
    base = os.fspath(path)
    if base.endswith(".npz") or base.endswith(".json"):
        base = base[: base.rfind(".")]
    return base + ".npz", base + ".json"


@dataclass
class _RebuildContext:
    """Duck-typed :class:`ExperimentContext` stand-in for model builders.

    Registry builders only touch ``data_config``, ``model_config``,
    ``num_nodes``, ``num_features``, ``adjacency`` and ``graphs()`` —
    exactly what the bundle stores.
    """

    data_config: DataConfig
    model_config: ModelConfig
    num_nodes: int
    num_features: int
    adjacency: np.ndarray
    graph_set: HeterogeneousGraphSet | None

    def graphs(self, num_intervals: int | None = None) -> HeterogeneousGraphSet:
        if self.graph_set is None:
            raise ValueError(
                "bundle holds no heterogeneous graph set; it was exported "
                "from a model that does not use one"
            )
        return self.graph_set


@dataclass
class ModelBundle:
    """A loaded bundle, ready to serve."""

    model: NeuralForecaster
    scaler: ZScoreScaler
    model_name: str
    data_config: DataConfig
    model_config: ModelConfig
    adjacency: np.ndarray
    graph_set: HeterogeneousGraphSet | None
    header: dict

    @property
    def num_nodes(self) -> int:
        return self.model.num_nodes

    @property
    def num_features(self) -> int:
        return self.model.num_features

    @property
    def input_length(self) -> int:
        return self.model.input_length

    @property
    def output_length(self) -> int:
        return self.model.output_length

    @property
    def fingerprint(self) -> str:
        """Stable identity of this bundle's exported contents.

        The sha256 of the canonical header JSON — model name, configs,
        shapes, dtype, quantization — which changes whenever a re-export
        could change the numbers a server hands out. Engines mix it into
        their forecast cache keys so forecasts can never be served
        across bundle versions.
        """
        canonical = json.dumps(self.header, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def quantization(self) -> str | None:
        """Weight quantization mode this bundle was stored with, if any."""
        entry = self.header.get("quantization")
        return entry["mode"] if entry else None

    def make_store(self, start_step: int = 0, registry=None) -> StateStore:
        """A state store dimensioned for this bundle's model."""
        return StateStore(
            num_nodes=self.num_nodes,
            num_features=self.num_features,
            input_length=self.input_length,
            steps_per_day=self.data_config.steps_per_day,
            start_step=start_step,
            registry=registry,
        )

    def make_engine(self, store: StateStore | None = None, **engine_kwargs) -> ForecastEngine:
        """A forecast engine over ``store`` (a fresh one by default)."""
        engine_kwargs.setdefault("cache_token", self.fingerprint)
        return ForecastEngine(
            model=self.model,
            scaler=self.scaler,
            store=store if store is not None else self.make_store(),
            **engine_kwargs,
        )


def export_bundle(
    model: NeuralForecaster,
    model_name: str,
    ctx,
    path: str | os.PathLike,
) -> str:
    """Write ``model`` (trained in experiment context ``ctx``) as a bundle.

    ``ctx`` is an :class:`~repro.experiments.context.ExperimentContext`
    (or anything with the same ``data_config`` / ``model_config`` /
    ``scaler`` / ``adjacency`` surface). Returns the header path; the
    array archive lands next to it with a ``.npz`` suffix.
    """
    if model_name not in NEURAL_MODELS:
        raise BundleModelError(
            f"unknown model {model_name!r}; bundles cover the neural "
            f"registry: {sorted(NEURAL_MODELS)}"
        )
    state = model.state_dict()
    if not state:
        raise BundleFormatError("model has no parameters to export")
    scaler: ZScoreScaler = ctx.scaler
    if scaler.mean_ is None or scaler.std_ is None:
        raise BundleFormatError("context scaler is not fitted")

    arrays: dict[str, np.ndarray] = {
        _PARAM_PREFIX + name: value for name, value in state.items()
    }
    arrays["scaler/mean"] = np.asarray(scaler.mean_)
    arrays["scaler/std"] = np.asarray(scaler.std_)
    arrays["graph/adjacency"] = np.asarray(ctx.adjacency)

    graph_header = None
    # Only RIHGCN-family builders consume the heterogeneous graph set;
    # exporting it for other models would drag in training data for
    # nothing, so it rides along exactly when the builder needs it.
    if model_name == "RIHGCN":
        graph_set: HeterogeneousGraphSet = ctx.graphs()
        for idx, adj in enumerate(graph_set.temporal):
            arrays[f"graph/temporal/{idx}"] = np.asarray(adj)
        arrays["graph/geographic"] = np.asarray(graph_set.geographic)
        graph_header = {
            "num_temporal": graph_set.num_temporal,
            "membership_mode": graph_set.membership_mode,
            "membership_temperature": graph_set.membership_temperature,
            "partition": {
                "boundaries": [int(b) for b in graph_set.partition.boundaries],
                "steps_per_day": int(graph_set.partition.steps_per_day),
                "score": float(graph_set.partition.score),
            },
        }

    npz_path, json_path = _bundle_paths(path)
    parent = os.path.dirname(npz_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    header = {
        "format_version": FORMAT_VERSION,
        "model_name": model_name,
        "data_config": asdict(ctx.data_config),
        "model_config": asdict(ctx.model_config),
        "num_nodes": int(model.num_nodes),
        "num_features": int(model.num_features),
        "input_length": int(model.input_length),
        "output_length": int(model.output_length),
        "scaler": {"per_node": bool(scaler.per_node)},
        "dtype": str(np.dtype(default_dtype())),
        "graphs": graph_header,
        "num_parameters": len(state),
        "arrays_file": os.path.basename(npz_path),
    }
    np.savez(npz_path, **arrays)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(header, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return json_path


def _config_from_dict(cls, payload: dict):
    """Rebuild a config dataclass, ignoring unknown header keys."""
    known = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in payload.items() if k in known})


# ----------------------------------------------------------------------
# Weight quantization
# ----------------------------------------------------------------------

def _dequantize_arrays(
    arrays: dict[str, np.ndarray], quant: dict, npz_path: str
) -> dict[str, np.ndarray]:
    """Restore quantized parameters to the active policy dtype.

    int8 parameters multiply back through their per-channel scales
    (stored under ``param_scale/``); float16 parameters upcast. Scale
    arrays are consumed here and dropped from the result.
    """
    mode = quant.get("mode")
    if mode not in QUANT_MODES:
        raise BundleFormatError(
            f"bundle {npz_path!r} uses unknown quantization mode {mode!r}; "
            f"this build reads {QUANT_MODES}"
        )
    target = default_dtype()
    quantized = set(quant.get("params", ()))
    out: dict[str, np.ndarray] = {}
    for name, value in arrays.items():
        if name.startswith(_SCALE_PREFIX):
            continue
        if name.startswith(_PARAM_PREFIX):
            pname = name[len(_PARAM_PREFIX):]
            if pname in quantized:
                if mode == "int8":
                    scale = arrays.get(_SCALE_PREFIX + pname)
                    if scale is None:
                        raise BundleFormatError(
                            f"bundle {npz_path!r} is quantized but missing "
                            f"scales for parameter {pname!r}"
                        )
                    # Scales are per-channel along the last axis, so a
                    # plain broadcast multiply restores the weights.
                    value = value.astype(target) * scale.astype(target)
                else:  # float16
                    value = value.astype(target)
        out[name] = value
    return out


def quantize_bundle(
    path: str | os.PathLike,
    out_path: str | os.PathLike,
    mode: str = "int8",
    gate: float | None = None,
    gate_windows: int = 4,
    seed: int = 0,
) -> str:
    """Re-write a float bundle with quantized weights; returns the header path.

    ``int8`` stores every floating parameter of rank >= 2 as symmetric
    per-channel int8 along its last axis, with float32 scales riding
    next to it under ``param_scale/``; rank-1 parameters (biases, gains)
    are tiny and precision-critical, so they stay float. ``float16``
    simply halves every floating parameter. The header records the mode
    and the quantized parameter names — the format version does not
    change, and :func:`load_bundle` dequantizes transparently.

    ``gate`` (e.g. ``0.01``) enforces the accuracy contract: after
    writing, the quantized bundle's forecasts on ``gate_windows``
    synthetic windows must stay within that relative MAE drift of the
    source bundle's, or the output files are removed and
    :class:`~repro.errors.QuantizationError` raises.
    """
    if mode not in QUANT_MODES:
        raise QuantizationError(
            f"unknown quantization mode {mode!r}; choose from {QUANT_MODES}"
        )
    npz_path, json_path = _bundle_paths(path)
    with open(json_path, encoding="utf-8") as handle:
        header = json.load(handle)
    if header.get("format_version") != FORMAT_VERSION:
        raise BundleFormatError(
            f"bundle {json_path!r} has format version "
            f"{header.get('format_version')!r}, "
            f"this build reads version {FORMAT_VERSION}"
        )
    if header.get("quantization"):
        raise QuantizationError(
            f"bundle {json_path!r} is already quantized "
            f"({header['quantization']['mode']}); quantize the float original"
        )
    with np.load(npz_path) as archive:
        arrays = {name: archive[name] for name in archive.files}

    out_arrays: dict[str, np.ndarray] = {}
    quantized: list[str] = []
    for name, value in arrays.items():
        if not (
            name.startswith(_PARAM_PREFIX)
            and np.issubdtype(value.dtype, np.floating)
        ):
            out_arrays[name] = value
            continue
        pname = name[len(_PARAM_PREFIX):]
        if mode == "float16":
            out_arrays[name] = value.astype(np.float16)
            quantized.append(pname)
        elif value.ndim >= 2:
            # Symmetric per-channel int8: one scale per slice of the
            # last axis, sized so the channel's absmax maps to 127.
            absmax = np.max(np.abs(value), axis=tuple(range(value.ndim - 1)))
            scale = np.where(absmax > 0, absmax / 127.0, 1.0).astype(np.float32)
            out_arrays[name] = np.clip(
                np.rint(value / scale), -127, 127
            ).astype(np.int8)
            out_arrays[_SCALE_PREFIX + pname] = scale
            quantized.append(pname)
        else:
            out_arrays[name] = value

    out_npz, out_json = _bundle_paths(out_path)
    if os.path.abspath(out_npz) == os.path.abspath(npz_path):
        raise QuantizationError(
            "quantize_bundle must not overwrite its float source; "
            "pick a different output path"
        )
    parent = os.path.dirname(out_npz)
    if parent:
        os.makedirs(parent, exist_ok=True)
    header = dict(header)
    header["quantization"] = {"mode": mode, "params": sorted(quantized)}
    header["arrays_file"] = os.path.basename(out_npz)
    np.savez(out_npz, **out_arrays)
    with open(out_json, "w", encoding="utf-8") as handle:
        json.dump(header, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if gate is not None:
        drift = quantization_mae_drift(
            path, out_path, num_windows=gate_windows, seed=seed
        )
        if drift > gate:
            os.remove(out_npz)
            os.remove(out_json)
            raise QuantizationError(
                f"{mode} quantization drifts {drift:.3%} relative MAE from "
                f"the float32 bundle, above the {gate:.3%} gate"
            )
    return out_json


def quantization_mae_drift(
    reference: str | os.PathLike | ModelBundle,
    quantized: str | os.PathLike | ModelBundle,
    num_windows: int = 4,
    missing_rate: float = 0.2,
    seed: int = 0,
) -> float:
    """Relative MAE between two bundles' forecasts on synthetic windows.

    Draws ``num_windows`` windows in the training distribution (unit
    normals pushed through the reference scaler), knocks out a
    ``missing_rate`` share of observations, and returns
    ``mean|pred_q - pred_ref| / mean|pred_ref|`` in original units —
    the quantity the <=1% quantization accuracy gate is defined over.
    """
    ref = reference if isinstance(reference, ModelBundle) else load_bundle(reference)
    quant = quantized if isinstance(quantized, ModelBundle) else load_bundle(quantized)
    rng = np.random.default_rng(seed)
    dtype = default_dtype()
    shape = (num_windows, ref.input_length, ref.num_nodes, ref.num_features)
    raw = ref.scaler.inverse_transform(
        rng.standard_normal(shape).astype(dtype)
    )
    m = (rng.random(shape) >= missing_rate).astype(dtype)
    x = np.where(m > 0, raw, 0.0).astype(dtype)
    steps_per_day = ref.data_config.steps_per_day
    offsets = rng.integers(0, steps_per_day, size=num_windows)
    steps = (
        offsets[:, None] + np.arange(ref.input_length)[None, :]
    ) % steps_per_day

    from ..autodiff import inference_mode  # local: avoid import cycle noise

    def predict(bundle: ModelBundle) -> np.ndarray:
        x_scaled = bundle.scaler.transform(x, m)
        with inference_mode():
            out = bundle.model(x_scaled, m, steps)
        return bundle.scaler.inverse_transform(out.prediction.data)

    pred_ref = predict(ref)
    pred_quant = predict(quant)
    denom = float(np.mean(np.abs(pred_ref)))
    if denom == 0.0:
        return float(np.mean(np.abs(pred_quant - pred_ref)))
    return float(np.mean(np.abs(pred_quant - pred_ref)) / denom)


def load_bundle(path: str | os.PathLike) -> ModelBundle:
    """Load a bundle written by :func:`export_bundle`.

    Verifies the format version and parameter shapes; the rebuilt model
    carries exactly the exported weights.
    """
    npz_path, json_path = _bundle_paths(path)
    with open(json_path, encoding="utf-8") as handle:
        header = json.load(handle)

    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise BundleFormatError(
            f"bundle {json_path!r} has format version {version!r}, "
            f"this build reads version {FORMAT_VERSION}"
        )
    model_name = header["model_name"]
    if model_name not in NEURAL_MODELS:
        raise BundleModelError(
            f"bundle {json_path!r} names unknown model {model_name!r}"
        )

    with np.load(npz_path) as archive:
        arrays = {name: archive[name] for name in archive.files}

    quant = header.get("quantization")
    if quant is not None:
        arrays = _dequantize_arrays(arrays, quant, npz_path)

    data_config = _config_from_dict(DataConfig, header["data_config"])
    model_config = _config_from_dict(ModelConfig, header["model_config"])
    adjacency = arrays["graph/adjacency"]

    graph_set = None
    graph_header = header.get("graphs")
    if graph_header is not None:
        partition = TimelinePartition(
            boundaries=tuple(graph_header["partition"]["boundaries"]),
            steps_per_day=graph_header["partition"]["steps_per_day"],
            score=graph_header["partition"]["score"],
        )
        temporal = [
            arrays[f"graph/temporal/{idx}"]
            for idx in range(graph_header["num_temporal"])
        ]
        graph_set = HeterogeneousGraphSet(
            geographic=arrays["graph/geographic"],
            temporal=temporal,
            partition=partition,
            membership_mode=graph_header["membership_mode"],
            membership_temperature=graph_header["membership_temperature"],
        )

    rebuild = _RebuildContext(
        data_config=data_config,
        model_config=model_config,
        num_nodes=header["num_nodes"],
        num_features=header["num_features"],
        adjacency=adjacency,
        graph_set=graph_set,
    )
    model = NEURAL_MODELS[model_name](rebuild)

    state = {
        name[len(_PARAM_PREFIX):]: value
        for name, value in arrays.items()
        if name.startswith(_PARAM_PREFIX)
    }
    expected = list(model.named_parameters())
    missing = [name for name, _param in expected if name not in state]
    if missing:
        raise MissingParameterError(
            f"bundle {npz_path!r} is missing parameter {missing[0]!r}"
            + (f" (and {len(missing) - 1} more)" if len(missing) > 1 else "")
        )
    mismatched = [
        (name, param.shape, state[name].shape)
        for name, param in expected
        if state[name].shape != param.shape
    ]
    if mismatched:
        name, want, got = mismatched[0]
        raise ShapeMismatchError(
            f"bundle {npz_path!r} has shape {got} for parameter {name!r}, "
            f"rebuilt model expects {want}"
            + (f" (and {len(mismatched) - 1} more mismatches)" if len(mismatched) > 1 else "")
        )
    model.load_state_dict(state)
    model.eval()

    scaler = ZScoreScaler(per_node=header["scaler"]["per_node"])
    # A bundle exported under another dtype policy serves under this one:
    # load_state_dict already cast (and warned about) the weights, so the
    # scaler statistics follow the same policy to keep inference uniform.
    scaler.mean_ = arrays["scaler/mean"].astype(default_dtype(), copy=False)
    scaler.std_ = arrays["scaler/std"].astype(default_dtype(), copy=False)

    return ModelBundle(
        model=model,
        scaler=scaler,
        model_name=model_name,
        data_config=data_config,
        model_config=model_config,
        adjacency=adjacency,
        graph_set=graph_set,
        header=header,
    )


# ----------------------------------------------------------------------
# Fleet manifests: one JSON file describing a whole multi-tenant pool.
# ----------------------------------------------------------------------

def save_fleet_manifest(fleet, path: str | os.PathLike) -> str:
    """Write a :class:`~repro.serve.config.FleetConfig` as a JSON manifest.

    Bundle references inside the fleet are stored verbatim; relative
    paths are resolved against the manifest's directory at load time, so
    a manifest can travel with its bundles as one directory.
    """
    from .config import FleetConfig

    if not isinstance(fleet, FleetConfig):
        raise BundleFormatError(
            f"save_fleet_manifest needs a FleetConfig, got {type(fleet).__name__}"
        )
    out = os.fspath(path)
    if not out.endswith(".json"):
        out += ".json"
    payload = {"format_version": FLEET_FORMAT_VERSION, **fleet.to_json_dict()}
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return out


def load_fleet_manifest(path: str | os.PathLike):
    """Read a fleet manifest; returns ``(FleetConfig, base_dir)``.

    ``base_dir`` is the manifest's directory — pass it to
    :func:`~repro.serve.fleet.build_pool` so relative bundle references
    resolve next to the manifest.
    """
    from .config import FleetConfig

    manifest = os.fspath(path)
    try:
        with open(manifest, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        raise BundleFormatError(f"fleet manifest {manifest!r} not found") from None
    except json.JSONDecodeError as error:
        raise BundleFormatError(
            f"fleet manifest {manifest!r} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise BundleFormatError(
            f"fleet manifest {manifest!r} must be a JSON object"
        )
    version = payload.get("format_version")
    if version != FLEET_FORMAT_VERSION:
        raise BundleFormatError(
            f"fleet manifest {manifest!r} has format version {version!r}; "
            f"this build reads version {FLEET_FORMAT_VERSION}"
        )
    fleet = FleetConfig.from_dict(payload)
    return fleet, os.path.dirname(os.path.abspath(manifest))
