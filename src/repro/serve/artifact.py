"""Versioned model bundles: everything a server needs in two files.

A bundle is a ``.npz`` archive (weights, fitted scaler statistics, graph
arrays) plus a human-readable ``.json`` header (format version, model
name, configs, shapes) sitting next to it. The split keeps the header
inspectable with any text editor while the arrays stay in numpy's own
dependency-free format.

Loading rebuilds the architecture through the same
:data:`repro.experiments.registry.NEURAL_MODELS` builders used for
training — the bundle carries a duck-typed stand-in for the experiment
context, so training data is *not* needed at serving time.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, fields

import numpy as np

from ..autodiff import default_dtype
from ..datasets import ZScoreScaler
from ..errors import (
    BundleFormatError,
    BundleModelError,
    MissingParameterError,
    ShapeMismatchError,
)
from ..experiments.config import DataConfig, ModelConfig
from ..experiments.registry import NEURAL_MODELS
from ..graphs import HeterogeneousGraphSet, TimelinePartition
from ..models.base import NeuralForecaster
from .engine import ForecastEngine
from .state import StateStore

__all__ = [
    "FLEET_FORMAT_VERSION",
    "FORMAT_VERSION",
    "ModelBundle",
    "export_bundle",
    "load_bundle",
    "load_fleet_manifest",
    "save_fleet_manifest",
]

#: bumped on any incompatible change to the bundle layout
FORMAT_VERSION = 1

#: bumped on any incompatible change to the fleet manifest layout
FLEET_FORMAT_VERSION = 1

_PARAM_PREFIX = "param/"


def _bundle_paths(path: str | os.PathLike) -> tuple[str, str]:
    """(arrays, header) file names for a bundle base ``path``."""
    base = os.fspath(path)
    if base.endswith(".npz") or base.endswith(".json"):
        base = base[: base.rfind(".")]
    return base + ".npz", base + ".json"


@dataclass
class _RebuildContext:
    """Duck-typed :class:`ExperimentContext` stand-in for model builders.

    Registry builders only touch ``data_config``, ``model_config``,
    ``num_nodes``, ``num_features``, ``adjacency`` and ``graphs()`` —
    exactly what the bundle stores.
    """

    data_config: DataConfig
    model_config: ModelConfig
    num_nodes: int
    num_features: int
    adjacency: np.ndarray
    graph_set: HeterogeneousGraphSet | None

    def graphs(self, num_intervals: int | None = None) -> HeterogeneousGraphSet:
        if self.graph_set is None:
            raise ValueError(
                "bundle holds no heterogeneous graph set; it was exported "
                "from a model that does not use one"
            )
        return self.graph_set


@dataclass
class ModelBundle:
    """A loaded bundle, ready to serve."""

    model: NeuralForecaster
    scaler: ZScoreScaler
    model_name: str
    data_config: DataConfig
    model_config: ModelConfig
    adjacency: np.ndarray
    graph_set: HeterogeneousGraphSet | None
    header: dict

    @property
    def num_nodes(self) -> int:
        return self.model.num_nodes

    @property
    def num_features(self) -> int:
        return self.model.num_features

    @property
    def input_length(self) -> int:
        return self.model.input_length

    @property
    def output_length(self) -> int:
        return self.model.output_length

    def make_store(self, start_step: int = 0, registry=None) -> StateStore:
        """A state store dimensioned for this bundle's model."""
        return StateStore(
            num_nodes=self.num_nodes,
            num_features=self.num_features,
            input_length=self.input_length,
            steps_per_day=self.data_config.steps_per_day,
            start_step=start_step,
            registry=registry,
        )

    def make_engine(self, store: StateStore | None = None, **engine_kwargs) -> ForecastEngine:
        """A forecast engine over ``store`` (a fresh one by default)."""
        return ForecastEngine(
            model=self.model,
            scaler=self.scaler,
            store=store if store is not None else self.make_store(),
            **engine_kwargs,
        )


def export_bundle(
    model: NeuralForecaster,
    model_name: str,
    ctx,
    path: str | os.PathLike,
) -> str:
    """Write ``model`` (trained in experiment context ``ctx``) as a bundle.

    ``ctx`` is an :class:`~repro.experiments.context.ExperimentContext`
    (or anything with the same ``data_config`` / ``model_config`` /
    ``scaler`` / ``adjacency`` surface). Returns the header path; the
    array archive lands next to it with a ``.npz`` suffix.
    """
    if model_name not in NEURAL_MODELS:
        raise BundleModelError(
            f"unknown model {model_name!r}; bundles cover the neural "
            f"registry: {sorted(NEURAL_MODELS)}"
        )
    state = model.state_dict()
    if not state:
        raise BundleFormatError("model has no parameters to export")
    scaler: ZScoreScaler = ctx.scaler
    if scaler.mean_ is None or scaler.std_ is None:
        raise BundleFormatError("context scaler is not fitted")

    arrays: dict[str, np.ndarray] = {
        _PARAM_PREFIX + name: value for name, value in state.items()
    }
    arrays["scaler/mean"] = np.asarray(scaler.mean_)
    arrays["scaler/std"] = np.asarray(scaler.std_)
    arrays["graph/adjacency"] = np.asarray(ctx.adjacency)

    graph_header = None
    # Only RIHGCN-family builders consume the heterogeneous graph set;
    # exporting it for other models would drag in training data for
    # nothing, so it rides along exactly when the builder needs it.
    if model_name == "RIHGCN":
        graph_set: HeterogeneousGraphSet = ctx.graphs()
        for idx, adj in enumerate(graph_set.temporal):
            arrays[f"graph/temporal/{idx}"] = np.asarray(adj)
        arrays["graph/geographic"] = np.asarray(graph_set.geographic)
        graph_header = {
            "num_temporal": graph_set.num_temporal,
            "membership_mode": graph_set.membership_mode,
            "membership_temperature": graph_set.membership_temperature,
            "partition": {
                "boundaries": [int(b) for b in graph_set.partition.boundaries],
                "steps_per_day": int(graph_set.partition.steps_per_day),
                "score": float(graph_set.partition.score),
            },
        }

    npz_path, json_path = _bundle_paths(path)
    parent = os.path.dirname(npz_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    header = {
        "format_version": FORMAT_VERSION,
        "model_name": model_name,
        "data_config": asdict(ctx.data_config),
        "model_config": asdict(ctx.model_config),
        "num_nodes": int(model.num_nodes),
        "num_features": int(model.num_features),
        "input_length": int(model.input_length),
        "output_length": int(model.output_length),
        "scaler": {"per_node": bool(scaler.per_node)},
        "dtype": str(np.dtype(default_dtype())),
        "graphs": graph_header,
        "num_parameters": len(state),
        "arrays_file": os.path.basename(npz_path),
    }
    np.savez(npz_path, **arrays)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(header, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return json_path


def _config_from_dict(cls, payload: dict):
    """Rebuild a config dataclass, ignoring unknown header keys."""
    known = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in payload.items() if k in known})


def load_bundle(path: str | os.PathLike) -> ModelBundle:
    """Load a bundle written by :func:`export_bundle`.

    Verifies the format version and parameter shapes; the rebuilt model
    carries exactly the exported weights.
    """
    npz_path, json_path = _bundle_paths(path)
    with open(json_path, encoding="utf-8") as handle:
        header = json.load(handle)

    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise BundleFormatError(
            f"bundle {json_path!r} has format version {version!r}, "
            f"this build reads version {FORMAT_VERSION}"
        )
    model_name = header["model_name"]
    if model_name not in NEURAL_MODELS:
        raise BundleModelError(
            f"bundle {json_path!r} names unknown model {model_name!r}"
        )

    with np.load(npz_path) as archive:
        arrays = {name: archive[name] for name in archive.files}

    data_config = _config_from_dict(DataConfig, header["data_config"])
    model_config = _config_from_dict(ModelConfig, header["model_config"])
    adjacency = arrays["graph/adjacency"]

    graph_set = None
    graph_header = header.get("graphs")
    if graph_header is not None:
        partition = TimelinePartition(
            boundaries=tuple(graph_header["partition"]["boundaries"]),
            steps_per_day=graph_header["partition"]["steps_per_day"],
            score=graph_header["partition"]["score"],
        )
        temporal = [
            arrays[f"graph/temporal/{idx}"]
            for idx in range(graph_header["num_temporal"])
        ]
        graph_set = HeterogeneousGraphSet(
            geographic=arrays["graph/geographic"],
            temporal=temporal,
            partition=partition,
            membership_mode=graph_header["membership_mode"],
            membership_temperature=graph_header["membership_temperature"],
        )

    rebuild = _RebuildContext(
        data_config=data_config,
        model_config=model_config,
        num_nodes=header["num_nodes"],
        num_features=header["num_features"],
        adjacency=adjacency,
        graph_set=graph_set,
    )
    model = NEURAL_MODELS[model_name](rebuild)

    state = {
        name[len(_PARAM_PREFIX):]: value
        for name, value in arrays.items()
        if name.startswith(_PARAM_PREFIX)
    }
    expected = list(model.named_parameters())
    missing = [name for name, _param in expected if name not in state]
    if missing:
        raise MissingParameterError(
            f"bundle {npz_path!r} is missing parameter {missing[0]!r}"
            + (f" (and {len(missing) - 1} more)" if len(missing) > 1 else "")
        )
    mismatched = [
        (name, param.shape, state[name].shape)
        for name, param in expected
        if state[name].shape != param.shape
    ]
    if mismatched:
        name, want, got = mismatched[0]
        raise ShapeMismatchError(
            f"bundle {npz_path!r} has shape {got} for parameter {name!r}, "
            f"rebuilt model expects {want}"
            + (f" (and {len(mismatched) - 1} more mismatches)" if len(mismatched) > 1 else "")
        )
    model.load_state_dict(state)
    model.eval()

    scaler = ZScoreScaler(per_node=header["scaler"]["per_node"])
    # A bundle exported under another dtype policy serves under this one:
    # load_state_dict already cast (and warned about) the weights, so the
    # scaler statistics follow the same policy to keep inference uniform.
    scaler.mean_ = arrays["scaler/mean"].astype(default_dtype(), copy=False)
    scaler.std_ = arrays["scaler/std"].astype(default_dtype(), copy=False)

    return ModelBundle(
        model=model,
        scaler=scaler,
        model_name=model_name,
        data_config=data_config,
        model_config=model_config,
        adjacency=adjacency,
        graph_set=graph_set,
        header=header,
    )


# ----------------------------------------------------------------------
# Fleet manifests: one JSON file describing a whole multi-tenant pool.
# ----------------------------------------------------------------------

def save_fleet_manifest(fleet, path: str | os.PathLike) -> str:
    """Write a :class:`~repro.serve.config.FleetConfig` as a JSON manifest.

    Bundle references inside the fleet are stored verbatim; relative
    paths are resolved against the manifest's directory at load time, so
    a manifest can travel with its bundles as one directory.
    """
    from .config import FleetConfig

    if not isinstance(fleet, FleetConfig):
        raise BundleFormatError(
            f"save_fleet_manifest needs a FleetConfig, got {type(fleet).__name__}"
        )
    out = os.fspath(path)
    if not out.endswith(".json"):
        out += ".json"
    payload = {"format_version": FLEET_FORMAT_VERSION, **fleet.to_json_dict()}
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return out


def load_fleet_manifest(path: str | os.PathLike):
    """Read a fleet manifest; returns ``(FleetConfig, base_dir)``.

    ``base_dir`` is the manifest's directory — pass it to
    :func:`~repro.serve.fleet.build_pool` so relative bundle references
    resolve next to the manifest.
    """
    from .config import FleetConfig

    manifest = os.fspath(path)
    try:
        with open(manifest, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        raise BundleFormatError(f"fleet manifest {manifest!r} not found") from None
    except json.JSONDecodeError as error:
        raise BundleFormatError(
            f"fleet manifest {manifest!r} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise BundleFormatError(
            f"fleet manifest {manifest!r} must be a JSON object"
        )
    version = payload.get("format_version")
    if version != FLEET_FORMAT_VERSION:
        raise BundleFormatError(
            f"fleet manifest {manifest!r} has format version {version!r}; "
            f"this build reads version {FLEET_FORMAT_VERSION}"
        )
    fleet = FleetConfig.from_dict(payload)
    return fleet, os.path.dirname(os.path.abspath(manifest))
