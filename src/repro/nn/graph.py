"""Graph convolution layers.

:class:`ChebConv` implements the spectral graph convolution of Eq. (1) in
the paper (Chebyshev polynomial expansion of the scaled Laplacian), in the
"generalized" form that operates on multi-dimensional node features.

:class:`AdaptiveGraphConv` implements the learned-adjacency diffusion
convolution used by the Graph WaveNet baseline: the adjacency itself is a
differentiable function of trainable node embeddings.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import ChebBasis, Tensor, cheb_propagate, concat, default_dtype, softmax
from . import init
from .module import Module, Parameter

__all__ = ["ChebConv", "GraphConv", "AdaptiveGraphConv"]


class ChebConv(Module):
    """Spectral graph convolution via a fixed Chebyshev polynomial stack.

    Parameters
    ----------
    in_channels, out_channels:
        Node feature dimensions.
    cheb_stack:
        Array of shape ``(K, N, N)`` holding ``T_k(L̃)`` for
        ``k = 0 .. K-1`` where ``L̃`` is the scaled Laplacian. Computed once
        by :func:`repro.graphs.laplacian.chebyshev_polynomials` since the
        graph is fixed during training.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        cheb_stack,
        bias: bool = True,
        sparse: bool = False,
        sparsity_eps: float = 1e-12,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        # The K polynomial hops are fused into one stacked-basis matmul
        # (see repro.autodiff.fused); the basis is stored in the policy
        # dtype so propagation never upcasts float32 activations.
        self._basis = ChebBasis(cheb_stack, sparse=sparse, sparsity_eps=sparsity_eps)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.order = self._basis.order
        self.num_nodes = self._basis.num_nodes
        self.sparse = sparse
        self.weight = Parameter(
            init.xavier_uniform((self.order * in_channels, out_channels), rng)
        )
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Apply the convolution.

        ``x`` has shape ``(..., N, in_channels)`` with optional leading batch
        axes; output preserves leading axes with ``out_channels`` features.
        """
        if x.shape[-2] != self.num_nodes:
            raise ValueError(
                f"expected {self.num_nodes} nodes on axis -2, got shape {x.shape}"
            )
        # All K hops in one op — the (..., N, K*C) result matches the
        # concat-of-matmuls layout, so the (K*C, out) weight is unchanged.
        propagated = cheb_propagate(x, self._basis)
        out = propagated.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"ChebConv(in={self.in_channels}, out={self.out_channels}, "
            f"K={self.order}, nodes={self.num_nodes})"
        )


class GraphConv(Module):
    """First-order graph convolution ``Â X W`` with a fixed propagation matrix.

    ``Â`` is typically the symmetrically normalized adjacency with self
    loops. Provided as a cheaper alternative to :class:`ChebConv` and used
    in ablations.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        propagation: np.ndarray,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        propagation = np.asarray(propagation, dtype=default_dtype())
        if propagation.ndim != 2 or propagation.shape[0] != propagation.shape[1]:
            raise ValueError(f"propagation must be square, got {propagation.shape}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.num_nodes = propagation.shape[0]
        self._propagation = Tensor(propagation)
        self.weight = Parameter(init.xavier_uniform((in_channels, out_channels), rng))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = self._propagation.matmul(x).matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"GraphConv(in={self.in_channels}, out={self.out_channels})"


class AdaptiveGraphConv(Module):
    """Diffusion convolution over a *learned* adjacency (Graph WaveNet).

    The adjacency is ``softmax(relu(E1 E2ᵀ))`` with trainable node
    embeddings ``E1, E2``; diffusion steps are powers of that matrix. An
    optional fixed support (e.g. the geographic adjacency) is diffused with
    its own weights and added.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        num_nodes: int,
        embed_dim: int = 10,
        diffusion_steps: int = 2,
        fixed_support: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.num_nodes = num_nodes
        self.diffusion_steps = diffusion_steps
        self.source_embed = Parameter(init.normal((num_nodes, embed_dim), rng, std=0.1))
        self.target_embed = Parameter(init.normal((num_nodes, embed_dim), rng, std=0.1))
        n_supports = diffusion_steps + (diffusion_steps if fixed_support is not None else 0)
        self.weight = Parameter(
            init.xavier_uniform(((n_supports + 1) * in_channels, out_channels), rng)
        )
        self.bias = Parameter(init.zeros(out_channels))
        self._fixed = None
        if fixed_support is not None:
            support = np.asarray(fixed_support, dtype=default_dtype())
            row_sum = support.sum(axis=1, keepdims=True)
            row_sum[row_sum == 0] = 1.0
            self._fixed = Tensor(support / row_sum)

    def adaptive_adjacency(self) -> Tensor:
        """The current learned adjacency (rows sum to 1)."""
        scores = self.source_embed.matmul(self.target_embed.transpose()).relu()
        return softmax(scores, axis=-1)

    def forward(self, x: Tensor) -> Tensor:
        """``x``: ``(..., N, in_channels)`` → ``(..., N, out_channels)``."""
        supports: list[Tensor] = [x]
        adj = self.adaptive_adjacency()
        hop = x
        for _step in range(self.diffusion_steps):
            hop = adj.matmul(hop)
            supports.append(hop)
        if self._fixed is not None:
            hop = x
            for _step in range(self.diffusion_steps):
                hop = self._fixed.matmul(hop)
                supports.append(hop)
        stacked = concat(supports, axis=-1)
        return stacked.matmul(self.weight) + self.bias

    def __repr__(self) -> str:
        return (
            f"AdaptiveGraphConv(in={self.in_channels}, out={self.out_channels}, "
            f"nodes={self.num_nodes}, steps={self.diffusion_steps})"
        )
