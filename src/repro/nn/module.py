"""Module/Parameter abstractions mirroring the familiar torch.nn API surface.

The paper's models (RIHGCN and all learned baselines) are expressed as
compositions of Modules so that parameter collection, train/eval switching
and state (de)serialization work uniformly across the whole model zoo.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator
import warnings

import numpy as np

from ..autodiff import Tensor, default_dtype
from ..errors import MissingParameterError, ShapeMismatchError

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A Tensor registered as a trainable parameter of a Module.

    Parameters are always stored in the policy dtype
    (:func:`repro.autodiff.default_dtype`) — the guarantee that makes
    "no silent float64 upcasts in the training loop" auditable at one
    place instead of every initializer call site.
    """

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        want = default_dtype()
        if self.data.dtype.kind == "f" and self.data.dtype != want:
            self.data = self.data.astype(want)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for all neural network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for
    :meth:`parameters`, :meth:`state_dict` and train/eval propagation.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter exactly once (depth-first)."""
        seen: set[int] = set()
        for _name, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. Dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # State (de)serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copy of every parameter's data, keyed by dotted name."""
        return OrderedDict(
            (name, param.data.copy()) for name, param in self.named_parameters()
        )

    def load_state_dict(self, state: dict) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        Raises :class:`~repro.errors.MissingParameterError` on missing
        entries and :class:`~repro.errors.ShapeMismatchError` on shape
        mismatch (``KeyError``/``ValueError`` compatible for one
        release) so silent weight corruption cannot happen. Values whose
        float dtype differs from the parameter's (e.g. a float64
        checkpoint loaded under the float32 policy) are cast, with a
        single warning naming the conversion.
        """
        cast_from: set[str] = set()
        for name, param in self.named_parameters():
            if name not in state:
                raise MissingParameterError(
                    f"state_dict is missing parameter {name!r}"
                )
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ShapeMismatchError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.shape}, got {value.shape}"
                )
            if value.dtype.kind == "f" and value.dtype != param.data.dtype:
                cast_from.add(f"{value.dtype}->{param.data.dtype}")
            param.data = value.astype(param.data.dtype).copy()
        if cast_from:
            warnings.warn(
                "load_state_dict cast parameter dtypes "
                f"({', '.join(sorted(cast_from))}); the checkpoint was "
                "saved under a different dtype policy — re-save it to "
                "silence this",
                UserWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {repr(module).replace(chr(10), chr(10) + '  ')}"
            for name, module in self._modules.items()
        ]
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"
