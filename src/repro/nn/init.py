"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that every
model in the reproduction is seedable end-to-end (the experiment harness
fixes seeds per run).
"""

from __future__ import annotations

import math

import numpy as np

from ..autodiff import default_dtype

__all__ = [
    "uniform",
    "normal",
    "zeros",
    "ones",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "kaiming_normal",
    "orthogonal",
]


def uniform(shape, rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Uniform initialization in ``[low, high)``."""
    return rng.uniform(low, high, size=shape).astype(default_dtype(), copy=False)


def normal(shape, rng: np.random.Generator, mean: float = 0.0, std: float = 0.01) -> np.ndarray:
    """Gaussian initialization."""
    return rng.normal(mean, std, size=shape).astype(default_dtype(), copy=False)


def zeros(shape) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape, dtype=default_dtype())


def ones(shape) -> np.ndarray:
    """All-ones initialization (gates that should start open)."""
    return np.ones(shape, dtype=default_dtype())


def _fans(shape) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight tensor.

    For 2-D weights this is ``(rows, cols)``; for conv-style kernels the
    receptive-field size multiplies both fans.
    """
    if len(shape) < 2:
        raise ValueError(f"fan computation requires >=2 dims, got shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: keeps forward/backward variance balanced."""
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(default_dtype(), copy=False)


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal variant."""
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(default_dtype(), copy=False)


def kaiming_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He uniform, suited to relu activations."""
    fan_in, _fan_out = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(default_dtype(), copy=False)


def kaiming_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """He normal, suited to relu activations."""
    fan_in, _fan_out = _fans(shape)
    return rng.normal(0.0, math.sqrt(2.0 / fan_in), size=shape).astype(default_dtype(), copy=False)


def orthogonal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization (recurrent weight matrices).

    Keeps the spectrum of the recurrent map near 1, which stabilizes the
    long imputation recurrences in RIHGCN.
    """
    if len(shape) != 2:
        raise ValueError("orthogonal init only supports 2-D shapes")
    rows, cols = shape
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))  # make the decomposition unique
    q = q[:rows, :cols] if rows >= cols else q.T[:rows, :cols]
    return (gain * q).astype(default_dtype(), copy=False)
