"""Loss modules used by the training pipeline.

The paper's total objective (Section III-F) is::

    L = L_c + lambda * L_m

where ``L_c`` is the forecast MAE (Eq. 7) and ``L_m`` the imputation loss
(Eq. 6): MAE of step-ahead estimates on *observed* entries plus a
forward/backward consistency penalty on *missing* entries.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, as_tensor, masked_mae, masked_mse
from .module import Module

__all__ = [
    "MAELoss",
    "MSELoss",
    "MaskedMAELoss",
    "MaskedMSELoss",
    "ImputationConsistencyLoss",
    "JointLoss",
]


class MAELoss(Module):
    """Plain mean absolute error."""

    def forward(self, pred: Tensor, target) -> Tensor:
        return (pred - as_tensor(target)).abs().mean()


class MSELoss(Module):
    """Plain mean squared error."""

    def forward(self, pred: Tensor, target) -> Tensor:
        diff = pred - as_tensor(target)
        return (diff * diff).mean()


class MaskedMAELoss(Module):
    """MAE restricted to entries where ``mask == 1``."""

    def forward(self, pred: Tensor, target, mask) -> Tensor:
        return masked_mae(pred, target, mask)


class MaskedMSELoss(Module):
    """MSE restricted to entries where ``mask == 1``."""

    def forward(self, pred: Tensor, target, mask) -> Tensor:
        return masked_mse(pred, target, mask)


class ImputationConsistencyLoss(Module):
    """The paper's Eq. (6).

    ``estimates_fwd`` / ``estimates_bwd`` are the step-ahead estimates
    X̂ from the forward and backward recurrent passes; ``target`` is the raw
    (incomplete) data; ``mask`` is 1 where observed.

    * On observed entries: MAE between the bidirectional mean estimate and
      the observation.
    * On missing entries: MAE between the two directions (consistency).
    """

    def forward(
        self,
        estimates_fwd: Tensor,
        estimates_bwd: Tensor,
        target,
        mask,
    ) -> Tensor:
        target_t = as_tensor(target)
        mask_t = as_tensor(mask)
        mean_estimate = (estimates_fwd + estimates_bwd) * 0.5
        observed_err = masked_mae(mean_estimate, target_t, mask_t)
        inverse = Tensor(1.0 - mask_t.data)
        consistency = masked_mae(estimates_fwd, estimates_bwd, inverse)
        return observed_err + consistency


class JointLoss(Module):
    """Total objective ``L = L_c + lambda * L_m``.

    Parameters
    ----------
    imputation_weight:
        The paper's λ hyper-parameter (Fig. 5 sweeps it; good basin
        (0.001, 5), default 1.0).
    """

    def __init__(self, imputation_weight: float = 1.0):
        super().__init__()
        if imputation_weight < 0:
            raise ValueError(f"imputation weight must be >= 0, got {imputation_weight}")
        self.imputation_weight = imputation_weight
        self.prediction_loss = MaskedMAELoss()
        self.imputation_loss = ImputationConsistencyLoss()

    def forward(
        self,
        prediction: Tensor,
        target,
        target_mask,
        estimates_fwd: Tensor | None = None,
        estimates_bwd: Tensor | None = None,
        history: np.ndarray | None = None,
        history_mask: np.ndarray | None = None,
    ) -> Tensor:
        loss = self.prediction_loss(prediction, target, target_mask)
        if (
            self.imputation_weight > 0
            and estimates_fwd is not None
            and estimates_bwd is not None
            and history is not None
            and history_mask is not None
        ):
            loss = loss + self.imputation_loss(
                estimates_fwd, estimates_bwd, history, history_mask
            ) * self.imputation_weight
        return loss
