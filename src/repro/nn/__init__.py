"""Neural network layers built on the autodiff substrate."""

from . import init
from .activation import LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from .attention import SpatialAttention, TemporalAttention
from .container import ModuleList, Sequential
from .dropout import Dropout
from .graph import AdaptiveGraphConv, ChebConv, GraphConv
from .linear import MLP, Linear
from .loss import (
    ImputationConsistencyLoss,
    JointLoss,
    MAELoss,
    MaskedMAELoss,
    MaskedMSELoss,
    MSELoss,
)
from .module import Module, Parameter
from .norm import LayerNorm
from .rnn import GRUCell, LSTM, LSTMCell
from .serialization import checkpoint_path, load_checkpoint, save_checkpoint
from .temporal import CausalConv1d, GatedTCNBlock

__all__ = [
    "init",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "Softmax",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "ModuleList",
    "LSTMCell",
    "GRUCell",
    "LSTM",
    "ChebConv",
    "GraphConv",
    "AdaptiveGraphConv",
    "CausalConv1d",
    "GatedTCNBlock",
    "SpatialAttention",
    "TemporalAttention",
    "MAELoss",
    "MSELoss",
    "MaskedMAELoss",
    "MaskedMSELoss",
    "ImputationConsistencyLoss",
    "JointLoss",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_path",
]
