"""Temporal convolution layers (substrate for the Graph WaveNet baseline).

Implements causal dilated 1-D convolution over the time axis and the gated
TCN block (``tanh ⊙ sigmoid``) that Graph WaveNet stacks with exponentially
growing dilations.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["CausalConv1d", "GatedTCNBlock"]


class CausalConv1d(Module):
    """Causal dilated convolution along the time axis.

    Input shape ``(batch, time, channels)`` (extra leading axes allowed,
    e.g. ``(batch, nodes, time, channels)``); output keeps the same time
    length by left zero-padding, so position ``t`` only sees ``t' <= t``.

    Implemented as ``kernel_size`` shifted affine maps summed together —
    each tap is one matmul, which is efficient for the small kernels
    (2–3) used by the baselines.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if kernel_size < 1:
            raise ValueError(f"kernel_size must be >= 1, got {kernel_size}")
        if dilation < 1:
            raise ValueError(f"dilation must be >= 1, got {dilation}")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.taps = [
            Parameter(init.xavier_uniform((in_channels, out_channels), rng))
            for _ in range(kernel_size)
        ]
        for j, tap in enumerate(self.taps):
            self._parameters[f"tap{j}"] = tap
        self.bias = Parameter(init.zeros(out_channels))

    @property
    def receptive_field(self) -> int:
        """Number of past steps (inclusive) this layer can see."""
        return (self.kernel_size - 1) * self.dilation + 1

    def forward(self, x: Tensor) -> Tensor:
        time_axis = x.ndim - 2
        steps = x.shape[time_axis]
        pad_amount = (self.kernel_size - 1) * self.dilation
        pad_width = [(0, 0)] * x.ndim
        pad_width[time_axis] = (pad_amount, 0)
        padded = x.pad(pad_width)

        out = None
        for j, tap in enumerate(self.taps):
            # Tap j looks back j * dilation steps.
            start = pad_amount - j * self.dilation
            sl = [slice(None)] * x.ndim
            sl[time_axis] = slice(start, start + steps)
            term = padded[tuple(sl)].matmul(tap)
            out = term if out is None else out + term
        return out + self.bias

    def __repr__(self) -> str:
        return (
            f"CausalConv1d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, dilation={self.dilation})"
        )


class GatedTCNBlock(Module):
    """Gated temporal convolution: ``tanh(conv_f(x)) ⊙ sigmoid(conv_g(x))``.

    Includes a residual projection when channel counts differ so blocks can
    be stacked deeply.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.filter_conv = CausalConv1d(in_channels, out_channels, kernel_size, dilation, rng)
        self.gate_conv = CausalConv1d(in_channels, out_channels, kernel_size, dilation, rng)
        self.residual = None
        if in_channels != out_channels:
            self.residual = Parameter(init.xavier_uniform((in_channels, out_channels), rng))

    def forward(self, x: Tensor) -> Tensor:
        gated = self.filter_conv(x).tanh() * self.gate_conv(x).sigmoid()
        skip = x.matmul(self.residual) if self.residual is not None else x
        return gated + skip
