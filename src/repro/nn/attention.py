"""Spatial and temporal attention blocks (substrate for the ASTGCN baseline).

Follows Guo et al., "Attention Based Spatial-Temporal Graph Convolutional
Networks for Traffic Flow Forecasting" (AAAI 2019): attention scores are
bilinear forms over the spatial or temporal slices of the input block,
normalized with softmax, and used to modulate graph/temporal convolution.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, softmax
from . import init
from .module import Module, Parameter

__all__ = ["SpatialAttention", "TemporalAttention"]


class SpatialAttention(Module):
    """Produces an ``(batch, N, N)`` attention map over nodes.

    Input shape ``(batch, N, T, C)``: features of every node over a window.
    """

    def __init__(
        self,
        num_nodes: int,
        in_channels: int,
        num_steps: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.w1 = Parameter(init.xavier_uniform((num_steps, 1), rng))
        self.w2 = Parameter(init.xavier_uniform((in_channels, 1), rng))
        self.w3 = Parameter(init.xavier_uniform((in_channels, 1), rng))
        self.vs = Parameter(init.xavier_uniform((num_nodes, num_nodes), rng))
        self.bias = Parameter(init.zeros((num_nodes, num_nodes)))

    def forward(self, x: Tensor) -> Tensor:
        # Query side: collapse channels with w3, then time with w1 -> (B, N).
        lhs = x.matmul(self.w3).squeeze(-1)  # (B, N, T)
        lhs = lhs.matmul(self.w1).squeeze(-1)  # (B, N)
        # Key side: collapse time by averaging, channels with w2 -> (B, N).
        rhs = x.mean(axis=2).matmul(self.w2).squeeze(-1)  # (B, N)
        # Bilinear score: score_ij = vs_ij * sigmoid(lhs_i + rhs_j + b_ij).
        scores = lhs.unsqueeze(2) + rhs.unsqueeze(1)  # (B, N, N)
        scores = (scores + self.bias).sigmoid() * self.vs
        return softmax(scores, axis=-1)


class TemporalAttention(Module):
    """Produces an ``(batch, T, T)`` attention map over time steps.

    Input shape ``(batch, N, T, C)``.
    """

    def __init__(
        self,
        num_nodes: int,
        in_channels: int,
        num_steps: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.u1 = Parameter(init.xavier_uniform((num_nodes, 1), rng))
        self.u2 = Parameter(init.xavier_uniform((in_channels, 1), rng))
        self.ve = Parameter(init.xavier_uniform((num_steps, num_steps), rng))
        self.bias = Parameter(init.zeros((num_steps, num_steps)))

    def forward(self, x: Tensor) -> Tensor:
        # Collapse channels: (B, N, T, C) @ u2 -> (B, N, T); then nodes.
        collapsed = x.matmul(self.u2).squeeze(-1)  # (B, N, T)
        time_vec = collapsed.swapaxes(1, 2).matmul(self.u1).squeeze(-1)  # (B, T)
        scores = time_vec.unsqueeze(2) + time_vec.unsqueeze(1)  # (B, T, T)
        scores = (scores + self.bias).sigmoid() * self.ve
        return softmax(scores, axis=-1)
