"""Dropout regularization."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, dropout_mask
from .module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    Parameters
    ----------
    p:
        Probability of zeroing each activation.
    rng:
        Generator used to draw masks; pass a seeded generator for
        reproducible training runs.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = dropout_mask(x.shape, self.p, self.rng)
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
