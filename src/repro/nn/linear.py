"""Affine layers."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "MLP"]


class Linear(Module):
    """Affine map ``y = x W + b`` applied to the last axis.

    Accepts inputs of any rank >= 1; leading axes are treated as batch.
    This is the FC layer the paper uses both for the per-step estimation
    head (Eq. 5) and for aggregating hidden states into the forecast
    (Eq. 7).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class MLP(Module):
    """Multi-layer perceptron with relu activations between Linear layers."""

    def __init__(
        self,
        sizes: list[int],
        rng: np.random.Generator | None = None,
        bias: bool = True,
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        rng = rng if rng is not None else np.random.default_rng()
        self.layers = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layer = Linear(fan_in, fan_out, bias=bias, rng=rng)
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = x.relu()
        return x
