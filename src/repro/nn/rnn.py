"""Recurrent layers: LSTM and GRU cells and sequence wrappers.

RIHGCN shares one LSTM across all road-segment nodes (Section III-E of the
paper), implemented here by folding the node dimension into the batch
dimension: a step input of shape ``(batch * nodes, features)`` flows through
a single parameter set.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, default_dtype, split, stack
from . import init
from .module import Module, Parameter

__all__ = ["LSTMCell", "GRUCell", "LSTM"]


class LSTMCell(Module):
    """Single-step LSTM following the gate equations in the paper (Eq. 4).

    The four gates are computed with one fused matmul for speed:
    ``z = x W + h U + b`` then split into input/forget/cell/output blocks.
    The forget-gate bias is initialized to 1 so early training does not
    erase the recurrent state (important for the long imputation chains).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.weight_hh = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(4)],
                axis=1,
            )
        )
        bias = init.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate block
        self.bias = Parameter(bias)

    def init_state(self, batch: int) -> tuple[Tensor, Tensor]:
        """Zero (h, c) state for a batch, in the policy dtype."""
        zeros = np.zeros((batch, self.hidden_size), dtype=default_dtype())
        return Tensor(zeros), Tensor(zeros.copy())

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, Tensor]:
        if x.ndim != 2:
            raise ValueError(f"LSTMCell expects (batch, features), got shape {x.shape}")
        if state is None:
            state = self.init_state(x.shape[0])
        h_prev, c_prev = state
        z = x.matmul(self.weight_ih) + h_prev.matmul(self.weight_hh) + self.bias
        # One fused split: the four gate reads share a single gradient
        # buffer on the way back instead of four dense scatters.
        z_i, z_f, z_g, z_o = split(z, 4, axis=-1)
        i_gate = z_i.sigmoid()
        f_gate = z_f.sigmoid()
        g_cell = z_g.tanh()
        o_gate = z_o.sigmoid()
        c_new = f_gate * c_prev + i_gate * g_cell
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def __repr__(self) -> str:
        return f"LSTMCell(in={self.input_size}, hidden={self.hidden_size})"


class GRUCell(Module):
    """Single-step gated recurrent unit (provided for ablations)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 3 * hidden_size), rng))
        self.weight_hh = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(3)],
                axis=1,
            )
        )
        self.bias = Parameter(init.zeros(3 * hidden_size))

    def init_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size), dtype=default_dtype()))

    def forward(self, x: Tensor, h_prev: Tensor | None = None) -> Tensor:
        if h_prev is None:
            h_prev = self.init_state(x.shape[0])
        zi = x.matmul(self.weight_ih) + self.bias
        zh = h_prev.matmul(self.weight_hh)
        zi_r, zi_u, zi_n = split(zi, 3, axis=-1)
        zh_r, zh_u, zh_n = split(zh, 3, axis=-1)
        r_gate = (zi_r + zh_r).sigmoid()
        u_gate = (zi_u + zh_u).sigmoid()
        n_state = (zi_n + r_gate * zh_n).tanh()
        return u_gate * h_prev + (1.0 - u_gate) * n_state

    def __repr__(self) -> str:
        return f"GRUCell(in={self.input_size}, hidden={self.hidden_size})"


class LSTM(Module):
    """Runs an :class:`LSTMCell` over a time-major-agnostic sequence.

    Input shape ``(batch, time, features)``; returns the stacked hidden
    states ``(batch, time, hidden)`` plus the final ``(h, c)`` state.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        if x.ndim != 3:
            raise ValueError(f"LSTM expects (batch, time, features), got {x.shape}")
        steps = x.shape[1]
        outputs: list[Tensor] = []
        h_c = state
        for t in range(steps):
            h, c = self.cell(x[:, t, :], h_c)
            h_c = (h, c)
            outputs.append(h)
        return stack(outputs, axis=1), h_c


def concat_features(*tensors: Tensor) -> Tensor:
    """Concatenate along the last axis (the ``[s; m]`` op of Eq. 4)."""
    return concat(list(tensors), axis=-1)
