"""Normalization layers."""

from __future__ import annotations

from ..autodiff import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Layer normalization over the last axis.

    Stabilizes deep stacks (e.g. many ST-Conv blocks); not used by the
    paper's models by default but available for extensions and ablations.
    """

    def __init__(self, normalized_size: int, eps: float = 1e-5):
        super().__init__()
        if normalized_size < 1:
            raise ValueError(f"normalized_size must be >= 1, got {normalized_size}")
        self.normalized_size = normalized_size
        self.eps = eps
        self.gain = Parameter(init.ones(normalized_size))
        self.bias = Parameter(init.zeros(normalized_size))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.normalized_size:
            raise ValueError(
                f"expected last axis {self.normalized_size}, got shape {x.shape}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gain + self.bias

    def __repr__(self) -> str:
        return f"LayerNorm(size={self.normalized_size})"
