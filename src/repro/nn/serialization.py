"""Model checkpointing: save/load state dicts as ``.npz`` archives.

Keeps the library dependency-free (numpy's own format) while supporting
the deployment story the paper mentions (the model "will be built into a
transportation application system").

Paths are normalised to a ``.npz`` suffix on both the save and load
side: ``numpy.savez`` silently appends ``.npz`` when the suffix is
missing, so without normalisation ``save_checkpoint(model, "ckpt")``
followed by ``load_checkpoint(model, "ckpt")`` would raise
``FileNotFoundError`` even though the archive exists on disk.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import CheckpointError, MissingParameterError, ShapeMismatchError
from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_path"]


def checkpoint_path(path: str | os.PathLike) -> str:
    """Canonical on-disk location for a checkpoint ``path``.

    Mirrors ``numpy.savez``'s suffix behaviour explicitly so save and
    load always agree on the file name.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    return path


def save_checkpoint(model: Module, path: str | os.PathLike) -> str:
    """Write every parameter of ``model`` to ``path`` (``.npz``).

    Dotted parameter names are preserved as archive keys, so any model
    with the same architecture can load the file back. Returns the
    normalised path actually written.
    """
    state = model.state_dict()
    if not state:
        raise CheckpointError("model has no parameters to save")
    path = checkpoint_path(path)
    np.savez(path, **state)
    return path


def load_checkpoint(model: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Raises :class:`~repro.errors.MissingParameterError` /
    :class:`~repro.errors.ShapeMismatchError` on architecture mismatch,
    naming the checkpoint file and the first offending parameter (plus
    how many more are affected) — a silent partial load is never
    performed.
    """
    path = checkpoint_path(path)
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}

    expected = list(model.named_parameters())
    missing = [name for name, _param in expected if name not in state]
    if missing:
        raise MissingParameterError(
            f"checkpoint {path!r} is missing parameter {missing[0]!r}"
            + (f" (and {len(missing) - 1} more)" if len(missing) > 1 else "")
            + f"; archive holds {len(state)} arrays, model expects {len(expected)}"
        )
    mismatched = [
        (name, param.shape, np.asarray(state[name]).shape)
        for name, param in expected
        if np.asarray(state[name]).shape != param.shape
    ]
    if mismatched:
        name, want, got = mismatched[0]
        raise ShapeMismatchError(
            f"checkpoint {path!r} has shape {got} for parameter {name!r}, "
            f"model expects {want}"
            + (f" (and {len(mismatched) - 1} more mismatches)" if len(mismatched) > 1 else "")
        )
    model.load_state_dict(state)
    return model
