"""Model checkpointing: save/load state dicts as ``.npz`` archives.

Keeps the library dependency-free (numpy's own format) while supporting
the deployment story the paper mentions (the model "will be built into a
transportation application system").
"""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(model: Module, path: str | os.PathLike) -> None:
    """Write every parameter of ``model`` to ``path`` (``.npz``).

    Dotted parameter names are preserved as archive keys, so any model
    with the same architecture can load the file back.
    """
    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")
    np.savez(path, **state)


def load_checkpoint(model: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Raises ``KeyError``/``ValueError`` on architecture mismatch (missing
    parameter or wrong shape) — a silent partial load is never performed.
    """
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
