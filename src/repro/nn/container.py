"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator

from .module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chains modules, feeding each output into the next input."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "Sequential":
        self.register_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)


class ModuleList(Module):
    """A list of modules whose parameters are registered for training.

    Unlike :class:`Sequential` it defines no forward; callers index or
    iterate it explicitly (used for the per-interval GCN cells of HGCN).
    """

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.register_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList has no forward; index its members instead")

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)
