"""Activation modules (stateless wrappers over autodiff ops)."""

from __future__ import annotations

from ..autodiff import Tensor, leaky_relu, softmax
from .module import Module

__all__ = ["ReLU", "Tanh", "Sigmoid", "LeakyReLU", "Softmax"]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class LeakyReLU(Module):
    """Leaky rectifier with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return leaky_relu(x, self.negative_slope)


class Softmax(Module):
    """Softmax over a fixed axis."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return softmax(x, axis=self.axis)
