"""Installation self-check: ``python -m repro.selfcheck``.

Runs a miniature end-to-end pipeline (simulate -> corrupt -> graphs ->
train RIHGCN 2 epochs -> forecast + impute) and verifies gradients against
finite differences. Finishes in well under a minute; prints OK or raises.
"""

from __future__ import annotations

import sys
import time

import numpy as np


def run_selfcheck(verbose: bool = True) -> dict:
    """Execute the check; returns a dict of measured sanity values."""
    from .autodiff import Tensor, gradcheck
    from .experiments import (
        DataConfig,
        ModelConfig,
        build_model,
        default_trainer_config,
        prepare_context,
    )
    from .training import Trainer

    started = time.perf_counter()
    report: dict = {}

    # 1. Autodiff gradients. Inputs are built as float64 on purpose:
    # gradcheck refuses float32 inputs (finite differences need the
    # precision) and forces the float64 dtype policy internally, so this
    # stays exact even though training below runs under float32.
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
    gradcheck(lambda a, b: (a @ b).tanh(), [a, b])
    report["gradcheck"] = "ok"
    if verbose:
        print("autodiff gradients ........ ok")

    # 2. Data + graphs + model.
    ctx = prepare_context(
        DataConfig(num_nodes=5, num_days=3, steps_per_day=96,
                   input_length=6, output_length=4, stride=8,
                   missing_rate=0.4, seed=0),
        ModelConfig(embed_dim=6, hidden_dim=8, num_graphs=2,
                    partition_downsample=6),
    )
    report["missing_rate"] = round(ctx.corrupted.missing_rate, 3)
    report["num_temporal_graphs"] = ctx.graphs().num_temporal
    if verbose:
        print(f"data + heterogeneous graphs  ok "
              f"(missing={report['missing_rate']:.0%}, "
              f"M={report['num_temporal_graphs']})")

    # 3. Train the headline model briefly; the loss must drop.
    model = build_model("RIHGCN", ctx)
    trainer = Trainer(model, default_trainer_config(max_epochs=2, batch_size=32))
    history = trainer.fit(ctx.train_windows, ctx.val_windows)
    if not history.train_loss[-1] < history.train_loss[0]:
        raise RuntimeError(
            f"training loss did not decrease: {history.train_loss}"
        )
    report["loss_first"] = round(history.train_loss[0], 4)
    report["loss_last"] = round(history.train_loss[-1], 4)
    if verbose:
        print(f"RIHGCN training ........... ok "
              f"(loss {report['loss_first']} -> {report['loss_last']})")

    # 4. Forecast + imputation outputs are finite and correctly shaped.
    pred = trainer.predict(ctx.test_windows)
    if not np.isfinite(pred).all():
        raise RuntimeError("non-finite forecast values")
    filled = model.impute(
        ctx.test_windows.x[:4], ctx.test_windows.m[:4],
        ctx.test_windows.steps_of_day[:4],
    )
    if not np.isfinite(filled).all():
        raise RuntimeError("non-finite imputed values")
    report["forecast_shape"] = pred.shape
    if verbose:
        print(f"forecast + imputation ..... ok {pred.shape}")

    report["seconds"] = round(time.perf_counter() - started, 1)
    if verbose:
        print(f"\nself-check passed in {report['seconds']}s")
    return report


if __name__ == "__main__":
    run_selfcheck()
    sys.exit(0)
