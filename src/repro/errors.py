"""Unified exception hierarchy for the whole reproduction.

One root — :class:`ReproError` — so operational code (the serving
stack, the CLI, user scripts) can catch "anything this library raises"
without enumerating modules, and so resilience policies can classify
failures by type instead of by message.

Migration contract: every concrete subclass also inherits the stdlib
base it historically raised as (``ValueError``, ``KeyError``,
``RuntimeError``, ``TimeoutError``), so existing ``except ValueError``
callers keep working for one release. New code should catch the typed
classes; the stdlib bases will be dropped from the hierarchy in a
future release.

Layers:

* :class:`DataError` — malformed input data (CSV loaders, arrays);
* :class:`CheckpointError` — ``load_state_dict`` problems, with
  :class:`MissingParameterError` / :class:`ShapeMismatchError`;
* :class:`BundleError` — serving-bundle format/registry problems;
* :class:`ConfigError` — invalid configuration values;
* :class:`ServeError` — anything that fails a serving request, with
  the resilience-policy signals :class:`DeadlineExceeded`,
  :class:`CircuitOpen` and :class:`Overloaded`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataError",
    "CheckpointError",
    "MissingParameterError",
    "ShapeMismatchError",
    "BundleError",
    "BundleFormatError",
    "BundleModelError",
    "ConfigError",
    "ServeError",
    "StateError",
    "DeadlineExceeded",
    "CircuitOpen",
    "Overloaded",
    "InjectedFault",
]


class ReproError(Exception):
    """Root of every exception this library raises on purpose."""


class DataError(ReproError, ValueError):
    """Input data is malformed (bad CSV rows, shape/field mismatches)."""


class CheckpointError(ReproError):
    """A saved parameter state cannot be loaded into a model."""


class MissingParameterError(CheckpointError, KeyError):
    """The state dict lacks a parameter the model expects."""

    def __str__(self) -> str:  # KeyError.__str__ would repr-quote the message
        return Exception.__str__(self)


class ShapeMismatchError(CheckpointError, ValueError):
    """A stored parameter's shape differs from the model's."""


class BundleError(ReproError):
    """A serving bundle (.npz + .json header) is unusable."""


class BundleFormatError(BundleError, ValueError):
    """The bundle header/archive violates the format contract."""


class BundleModelError(BundleError, KeyError):
    """The bundle names a model outside the neural registry."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class ConfigError(ReproError, ValueError):
    """A configuration value fails validation."""


class ServeError(ReproError):
    """A serving request could not be answered normally.

    The HTTP layer maps uncaught ``ServeError`` (that is not also a
    ``ValueError``-family input error) to ``503`` with a ``Retry-After``
    hint.
    """


class StateError(ServeError, ValueError):
    """A streaming-state operation received invalid input."""


class DeadlineExceeded(ServeError, TimeoutError):
    """The request's time budget ran out before an answer was ready."""


class CircuitOpen(ServeError, RuntimeError):
    """A circuit breaker is rejecting calls to a failing dependency."""


class Overloaded(ServeError, RuntimeError):
    """Load was shed: a bounded queue is full; retry with backoff."""


class InjectedFault(ServeError, RuntimeError):
    """A fault deliberately raised by :mod:`repro.reliability.chaos`."""
