"""Unified exception hierarchy for the whole reproduction.

One root — :class:`ReproError` — so operational code (the serving
stack, the CLI, user scripts) can catch "anything this library raises"
without enumerating modules, and so resilience policies can classify
failures by type instead of by message.

The transitional stdlib multiple inheritance (``ValueError``,
``KeyError``, ``RuntimeError``, ``TimeoutError`` bases) announced in
the previous release has been removed: every class below now inherits
only from the typed hierarchy. Catch the typed classes — e.g.
``except StateError`` instead of ``except ValueError`` — or
``ReproError`` for everything the library raises on purpose.

Layers:

* :class:`DataError` — malformed input data (CSV loaders, arrays);
* :class:`CheckpointError` — ``load_state_dict`` problems, with
  :class:`MissingParameterError` / :class:`ShapeMismatchError`;
* :class:`BundleError` — serving-bundle format/registry problems;
* :class:`ConfigError` — invalid configuration values;
* :class:`ServeError` — anything that fails a serving request, with
  the resilience-policy signals :class:`DeadlineExceeded`,
  :class:`CircuitOpen`, :class:`Overloaded` and
  :class:`QuotaExceeded`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataError",
    "CheckpointError",
    "MissingParameterError",
    "ShapeMismatchError",
    "BundleError",
    "BundleFormatError",
    "BundleModelError",
    "QuantizationError",
    "ConfigError",
    "ServeError",
    "StateError",
    "DeadlineExceeded",
    "CircuitOpen",
    "Overloaded",
    "QuotaExceeded",
    "InjectedFault",
]


class ReproError(Exception):
    """Root of every exception this library raises on purpose."""


class DataError(ReproError):
    """Input data is malformed (bad CSV rows, shape/field mismatches)."""


class CheckpointError(ReproError):
    """A saved parameter state cannot be loaded into a model."""


class MissingParameterError(CheckpointError):
    """The state dict lacks a parameter the model expects."""


class ShapeMismatchError(CheckpointError):
    """A stored parameter's shape differs from the model's."""


class BundleError(ReproError):
    """A serving bundle (.npz + .json header) is unusable."""


class BundleFormatError(BundleError):
    """The bundle header/archive violates the format contract."""


class BundleModelError(BundleError):
    """The bundle names a model outside the neural registry."""


class QuantizationError(BundleError):
    """Weight quantization failed or broke the accuracy gate."""


class ConfigError(ReproError):
    """A configuration value fails validation."""


class ServeError(ReproError):
    """A serving request could not be answered normally.

    The HTTP layer maps input-validation failures (``StateError``,
    ``DataError`` and stdlib ``ValueError``/``KeyError``/``TypeError``
    from request parsing) to ``400`` and every other uncaught
    ``ServeError`` to ``503`` with a ``Retry-After`` hint.
    """


class StateError(ServeError):
    """A streaming-state operation received invalid input."""


class DeadlineExceeded(ServeError):
    """The request's time budget ran out before an answer was ready."""


class CircuitOpen(ServeError):
    """A circuit breaker is rejecting calls to a failing dependency."""


class Overloaded(ServeError):
    """Load was shed: a bounded queue is full; retry with backoff."""


class QuotaExceeded(Overloaded):
    """A tenant exhausted its token-bucket quota; retry with backoff."""


class InjectedFault(ServeError):
    """A fault deliberately raised by :mod:`repro.reliability.chaos`."""
