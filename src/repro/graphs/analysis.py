"""Graph-structure analysis.

Programmatic versions of the paper's Fig. 3 argument: measure how much
the temporal graphs disagree with the geographic graph and with each
other. Used by examples and by dataset-validation tests (the simulator
must actually produce the heterogeneity RIHGCN exploits).
"""

from __future__ import annotations

import numpy as np

from .heterograph import HeterogeneousGraphSet

__all__ = [
    "edge_density",
    "edge_jaccard",
    "weighted_similarity",
    "graph_disagreement_matrix",
    "heterogeneity_score",
]


def edge_density(adjacency: np.ndarray) -> float:
    """Fraction of possible (off-diagonal) edges with nonzero weight."""
    adj = np.asarray(adjacency)
    n = adj.shape[0]
    if n < 2:
        return 0.0
    off = ~np.eye(n, dtype=bool)
    return float((adj[off] > 0).mean())


def edge_jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of the two graphs' (off-diagonal) edge sets."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    off = ~np.eye(a.shape[0], dtype=bool)
    ea = a[off] > 0
    eb = b[off] > 0
    union = (ea | eb).sum()
    if union == 0:
        return 1.0  # both edgeless: identical
    return float((ea & eb).sum() / union)


def weighted_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of edge-weight vectors (1 = same structure)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    off = ~np.eye(a.shape[0], dtype=bool)
    va, vb = a[off], b[off]
    na, nb = np.linalg.norm(va), np.linalg.norm(vb)
    if na == 0 or nb == 0:
        return 1.0 if na == nb else 0.0
    return float(va @ vb / (na * nb))


def graph_disagreement_matrix(graphs: HeterogeneousGraphSet) -> np.ndarray:
    """Pairwise ``1 - cosine`` disagreement between all graphs.

    Index 0 is the geographic graph, then the temporal graphs in interval
    order. Large geographic-vs-temporal entries are the Fig. 3 phenomenon;
    large temporal-vs-temporal entries show the day's regimes differ.
    """
    adjacencies = graphs.all_adjacencies()
    k = len(adjacencies)
    out = np.zeros((k, k))
    for i in range(k):
        for j in range(i + 1, k):
            d = 1.0 - weighted_similarity(adjacencies[i], adjacencies[j])
            out[i, j] = out[j, i] = d
    return out


def heterogeneity_score(graphs: HeterogeneousGraphSet) -> float:
    """Mean disagreement between the geographic and each temporal graph.

    0 means the temporal graphs add nothing beyond geography (HGCN would
    reduce to a plain GCN); larger values mean more exploitable
    heterogeneous structure.
    """
    disagreement = graph_disagreement_matrix(graphs)
    if graphs.num_temporal == 0:
        return 0.0
    return float(disagreement[0, 1:].mean())
