"""Heterogeneous graph set (Section III-D).

One *geographic* graph (from road-network distances, Eq. 8) plus ``M``
*temporal* graphs — one per timeline interval — built from pairwise series
distances between the nodes' historical-average profiles within that
interval. The HGCN block runs one GCN per graph and aggregates node
embeddings with per-timestamp interval weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distances import series_distance_matrix
from .adjacency import gaussian_kernel_adjacency
from .laplacian import chebyshev_polynomials
from .partition import (
    PartitionConfig,
    TimelinePartition,
    TimelinePartitioner,
    daily_profile,
    wrap_slice,
)

__all__ = [
    "HeterogeneousGraphSet",
    "build_temporal_graphs",
    "build_heterogeneous_graphs",
    "build_weekly_temporal_graphs",
]


def build_temporal_graphs(
    data: np.ndarray,
    mask: np.ndarray | None,
    partition: TimelinePartition,
    metric: str = "dtw",
    epsilon: float = 0.1,
    downsample_to: int = 24,
    metric_kwargs: dict | None = None,
) -> list[np.ndarray]:
    """One adjacency matrix per partition interval.

    For each interval, per-node historical-average series are extracted
    from the (missing-aware) daily profile, pairwise series distances are
    computed with ``metric``, and Eq. (8) converts them to edge weights.
    """
    profile = daily_profile(data, mask, partition.steps_per_day)  # (S, N, D)
    graphs: list[np.ndarray] = []
    for start, end in partition.intervals:
        segment = wrap_slice(profile, start, end)  # (L, N, D)
        length = segment.shape[0]
        target = min(downsample_to, length)
        if length > target:
            edges = np.linspace(0, length, target + 1).astype(int)
            segment = np.stack(
                [segment[a:b].mean(axis=0) for a, b in zip(edges[:-1], edges[1:])]
            )
        series = np.transpose(segment, (1, 0, 2))  # (N, L, D)
        distances = series_distance_matrix(series, metric=metric, **(metric_kwargs or {}))
        graphs.append(gaussian_kernel_adjacency(distances, epsilon=epsilon))
    return graphs


@dataclass
class HeterogeneousGraphSet:
    """The full graph collection consumed by the HGCN block.

    Attributes
    ----------
    geographic:
        Adjacency from road-network distances, ``(N, N)``.
    temporal:
        One adjacency per timeline interval.
    partition:
        The interval structure (provides per-timestamp weights).
    membership_mode:
        ``"hard"`` or ``"soft"`` interval weighting (see
        :meth:`TimelinePartition.membership_weights`).
    """

    geographic: np.ndarray
    temporal: list[np.ndarray]
    partition: TimelinePartition
    membership_mode: str = "hard"
    membership_temperature: float | None = None
    _weight_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        n = self.geographic.shape[0]
        for idx, adj in enumerate(self.temporal):
            if adj.shape != (n, n):
                raise ValueError(
                    f"temporal graph {idx} has shape {adj.shape}, expected {(n, n)}"
                )
        if len(self.temporal) != self.partition.num_intervals:
            raise ValueError(
                f"{len(self.temporal)} temporal graphs for "
                f"{self.partition.num_intervals} intervals"
            )

    @property
    def num_nodes(self) -> int:
        return self.geographic.shape[0]

    @property
    def num_temporal(self) -> int:
        return len(self.temporal)

    def all_adjacencies(self) -> list[np.ndarray]:
        """Geographic graph first, then the temporal graphs."""
        return [self.geographic, *self.temporal]

    def cheb_stacks(self, order: int) -> list[np.ndarray]:
        """Chebyshev polynomial stacks ``(K, N, N)`` for every graph."""
        return [chebyshev_polynomials(adj, order) for adj in self.all_adjacencies()]

    def merged_adjacency(self, weights: np.ndarray | None = None) -> np.ndarray:
        """Merge all graphs into one (Section III-D's "typical heterogeneous
        graph with different edge types" view).

        ``weights`` assigns one coefficient per graph (geographic first);
        defaults to the uniform average. Useful for analysis and for models
        that cannot consume multiple graphs.
        """
        adjacencies = self.all_adjacencies()
        if weights is None:
            weights = np.full(len(adjacencies), 1.0 / len(adjacencies))
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(adjacencies),):
            raise ValueError(
                f"need {len(adjacencies)} weights, got shape {weights.shape}"
            )
        return sum(w * adj for w, adj in zip(weights, adjacencies))

    def interval_weights(self, steps_of_day: np.ndarray) -> np.ndarray:
        """Per-timestamp temporal-graph weights ``(len(steps), M)``.

        Memoized per unique step since windows revisit the same
        time-of-day slots constantly during training.
        """
        steps = np.asarray(steps_of_day, dtype=np.int64) % self.partition.steps_per_day
        missing = [s for s in np.unique(steps) if int(s) not in self._weight_cache]
        if missing:
            fresh = self.partition.membership_weights(
                np.array(missing),
                mode=self.membership_mode,
                temperature=self.membership_temperature,
            )
            for step, row in zip(missing, fresh):
                self._weight_cache[int(step)] = row
        return np.stack([self._weight_cache[int(s)] for s in steps])


def build_heterogeneous_graphs(
    data: np.ndarray,
    mask: np.ndarray | None,
    geographic_distances: np.ndarray,
    steps_per_day: int,
    num_intervals: int = 4,
    metric: str = "dtw",
    epsilon: float = 0.1,
    partition_config: PartitionConfig | None = None,
    membership_mode: str = "hard",
) -> HeterogeneousGraphSet:
    """End-to-end construction: partition the timeline, build all graphs.

    This is the one-call entry point used by the experiment harness; the
    pieces are individually exposed for finer control and tests.
    """
    config = partition_config or PartitionConfig(num_intervals=num_intervals, metric=metric)
    if config.num_intervals != num_intervals:
        raise ValueError(
            "partition_config.num_intervals disagrees with num_intervals "
            f"({config.num_intervals} vs {num_intervals})"
        )
    partition = TimelinePartitioner(config).fit(data, mask, steps_per_day=steps_per_day)
    temporal = build_temporal_graphs(
        data, mask, partition, metric=metric, epsilon=epsilon,
        downsample_to=config.downsample_to,
    )
    geographic = gaussian_kernel_adjacency(geographic_distances, epsilon=epsilon)
    return HeterogeneousGraphSet(
        geographic=geographic,
        temporal=temporal,
        partition=partition,
        membership_mode=membership_mode,
    )


def build_weekly_temporal_graphs(
    data: np.ndarray,
    mask: np.ndarray | None,
    partition: TimelinePartition,
    days_of_week: np.ndarray,
    weekend_days: tuple[int, ...] = (5, 6),
    metric: str = "dtw",
    epsilon: float = 0.1,
    downsample_to: int = 24,
) -> dict[str, list[np.ndarray]]:
    """Weekday/weekend-split temporal graphs (the paper's suggested
    extension: "incorporate more graph structures, e.g., certain time
    intervals across weeks").

    Builds the per-interval temporal graphs twice — once from weekday
    history, once from weekend history — so a model can switch graph sets
    by day type. Returns ``{"weekday": [...], "weekend": [...]}``.
    """
    data = np.asarray(data, dtype=np.float64)
    days_of_week = np.asarray(days_of_week)
    if len(days_of_week) != len(data):
        raise ValueError(
            f"days_of_week length {len(days_of_week)} != T {len(data)}"
        )
    weekend_sel = np.isin(days_of_week, weekend_days)
    out: dict[str, list[np.ndarray]] = {}
    for label, selector in (("weekday", ~weekend_sel), ("weekend", weekend_sel)):
        if not selector.any():
            raise ValueError(f"no {label} timestamps in the provided history")
        sub_data = data[selector]
        sub_mask = mask[selector] if mask is not None else None
        out[label] = build_temporal_graphs(
            sub_data, sub_mask, partition, metric=metric, epsilon=epsilon,
            downsample_to=downsample_to,
        )
    return out
