"""Timeline partitioning — Eq. (2) of the paper and its four constraints.

To build ``M`` temporal graphs, the daily timeline is split into ``M``
non-overlapping intervals such that the total pairwise distance between the
historical traffic profiles of the intervals is maximized:

    max_{t_1..t_{M-1}}  sum_{i,j} D(H_{t_i}, H_{t_j})

subject to (Section III-D2):

1. every interval is at least ``min_hours`` long (paper: 1 hour, derived
   from ``T/(P·M)``);
2. every interval is at most ``Q·T/M`` long (paper: Q=2, i.e. 12 h for M=4);
3. the ratio between the minimum pairwise interval distance and the sum of
   all pairwise distances is at most ``eta`` (paper: 10 %);
4. the longest interval covers at most ``gamma`` of the timeline
   (paper: 50 %).

Candidate split points live on hour boundaries. The search is exhaustive
when the combination count is tractable and falls back to a stochastic
beam search for large ``M``.
"""

from __future__ import annotations

import hashlib
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..distances import get_series_metric

__all__ = [
    "TimelinePartition",
    "PartitionConfig",
    "TimelinePartitioner",
    "daily_profile",
    "wrap_slice",
    "ShardPlan",
    "plan_shards",
    "shard_quality",
    "k_hop_reach",
]


def daily_profile(
    data: np.ndarray,
    mask: np.ndarray | None,
    steps_per_day: int,
) -> np.ndarray:
    """Missing-aware historical average per time-of-day slot.

    Parameters
    ----------
    data:
        Array ``(T, N, D)`` of traffic measurements over multiple days.
    mask:
        Same shape; 1 where observed. ``None`` means fully observed.
    steps_per_day:
        Number of timestamps per day (e.g. 288 for 5-minute data).

    Returns
    -------
    Array ``(steps_per_day, N, D)``; slots never observed fall back to the
    global per-node mean.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 3:
        raise ValueError(f"data must be (T, N, D), got shape {data.shape}")
    total, n, d = data.shape
    if mask is None:
        mask = np.ones_like(data)
    mask = np.asarray(mask, dtype=np.float64)
    profile_sum = np.zeros((steps_per_day, n, d))
    profile_count = np.zeros((steps_per_day, n, d))
    slots = np.arange(total) % steps_per_day
    np.add.at(profile_sum, slots, data * mask)
    np.add.at(profile_count, slots, mask)
    with np.errstate(invalid="ignore"):
        profile = profile_sum / profile_count
    # Fallback for never-observed slots: per-node/feature global mean.
    observed_total = mask.sum(axis=0)
    observed_total[observed_total == 0] = 1.0
    global_mean = (data * mask).sum(axis=0) / observed_total
    missing_slots = profile_count == 0
    profile[missing_slots] = np.broadcast_to(global_mean, profile.shape)[missing_slots]
    return profile


@dataclass
class PartitionConfig:
    """Constraint and search configuration for Eq. (2)."""

    num_intervals: int = 4
    min_hours: float = 1.0  # constraint 1 (paper: 1 hour)
    q_factor: float = 2.0  # constraint 2: max length Q*T/M
    eta: float = 0.10  # constraint 3
    gamma: float = 0.50  # constraint 4
    metric: str = "dtw"
    metric_kwargs: dict = field(default_factory=dict)
    #: let the first interval start anywhere in the day (the paper keeps the
    #: timeline linear from 00:00 and flags the circular variant as future
    #: work; we implement both).
    circular: bool = False
    candidate_resolution_hours: float = 1.0
    downsample_to: int = 24  # per-interval series length cap for speed
    exhaustive_limit: int = 20000  # combinations; beyond this use beam search
    beam_width: int = 32
    beam_iterations: int = 200
    seed: int = 0

    def __post_init__(self):
        if self.num_intervals < 2:
            raise ValueError(f"need at least 2 intervals, got {self.num_intervals}")
        if not 0 < self.gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {self.gamma}")
        if self.eta <= 0:
            raise ValueError(f"eta must be positive, got {self.eta}")


@dataclass
class TimelinePartition:
    """Result of the optimization: interval boundaries over one day.

    ``boundaries`` holds the ``M`` split points in *steps*, sorted
    ascending. Interval ``m`` covers ``[boundaries[m], boundaries[m+1])``;
    the last interval wraps around midnight to ``boundaries[0]`` (for the
    paper's linear timeline, ``boundaries[0] == 0`` and the last interval
    simply ends at ``steps_per_day``). Interval ends may therefore exceed
    ``steps_per_day``; use :func:`wrap_slice` to extract profile segments.
    """

    boundaries: tuple[int, ...]
    steps_per_day: int
    score: float = 0.0

    def __post_init__(self):
        bounds = tuple(self.boundaries)
        if any(b >= self.steps_per_day or b < 0 for b in bounds):
            raise ValueError(
                f"boundaries must lie in [0, {self.steps_per_day}), got {bounds}"
            )
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"boundaries must be strictly increasing, got {bounds}")

    @property
    def num_intervals(self) -> int:
        return len(self.boundaries)

    @property
    def circular(self) -> bool:
        """True when the first interval does not start at midnight."""
        return self.boundaries[0] != 0

    @property
    def intervals(self) -> list[tuple[int, int]]:
        """List of ``(start_step, end_step)`` pairs; the last wraps."""
        ends = list(self.boundaries[1:]) + [self.boundaries[0] + self.steps_per_day]
        return list(zip(self.boundaries, ends))

    def interval_of(self, step_of_day: int) -> int:
        """Index of the interval containing a time-of-day step."""
        step = int(step_of_day) % self.steps_per_day
        if step < self.boundaries[0]:
            step += self.steps_per_day  # falls in the wrapped last interval
        for idx, (start, end) in enumerate(self.intervals):
            if start <= step < end:
                return idx
        raise RuntimeError(f"step {step} not covered by any interval")  # pragma: no cover

    def membership_weights(
        self,
        steps_of_day: np.ndarray,
        mode: str = "hard",
        temperature: float | None = None,
    ) -> np.ndarray:
        """Per-interval weights for each timestamp, shape ``(len(steps), M)``.

        ``hard``: indicator of the containing interval (the weighted sum in
        HGCN then selects one temporal GCN per step). ``soft``: weights decay
        with the circular distance between the step and each interval
        center, so steps near a boundary blend adjacent interval graphs.
        """
        steps = np.asarray(steps_of_day) % self.steps_per_day
        m = self.num_intervals
        weights = np.zeros((len(steps), m))
        if mode == "hard":
            for i, step in enumerate(steps):
                weights[i, self.interval_of(int(step))] = 1.0
            return weights
        if mode == "soft":
            if temperature is None:
                temperature = self.steps_per_day / (4.0 * m)
            centers = np.array(
                [((s + e) / 2.0) % self.steps_per_day for s, e in self.intervals]
            )
            delta = np.abs(steps[:, None] - centers[None, :])
            circular = np.minimum(delta, self.steps_per_day - delta)
            weights = np.exp(-circular / temperature)
            return weights / weights.sum(axis=1, keepdims=True)
        raise ValueError(f"unknown membership mode {mode!r}")


class TimelinePartitioner:
    """Solves Eq. (2) over hour-boundary candidates.

    Usage::

        partitioner = TimelinePartitioner(config)
        partition = partitioner.fit(data, mask, steps_per_day=288)
    """

    def __init__(self, config: PartitionConfig | None = None):
        self.config = config or PartitionConfig()
        self._pair_cache: dict[tuple[tuple[int, int], tuple[int, int]], float] = {}
        self._profile: np.ndarray | None = None
        self._metric: Callable[[np.ndarray, np.ndarray], float] | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        data: np.ndarray,
        mask: np.ndarray | None = None,
        steps_per_day: int = 288,
    ) -> TimelinePartition:
        """Compute the optimal partition for the given history."""
        cfg = self.config
        self._profile = daily_profile(data, mask, steps_per_day)
        self._metric = get_series_metric(cfg.metric, **cfg.metric_kwargs)
        self._pair_cache.clear()

        steps_per_candidate = max(1, round(steps_per_day * cfg.candidate_resolution_hours / 24.0))
        num_candidates = steps_per_day // steps_per_candidate
        min_len = max(1, math.ceil(num_candidates * cfg.min_hours / 24.0))
        max_len_q = cfg.q_factor * num_candidates / cfg.num_intervals
        max_len_gamma = cfg.gamma * num_candidates
        max_len = int(min(max_len_q, max_len_gamma))
        if max_len * cfg.num_intervals < num_candidates:
            raise ValueError(
                "constraints are infeasible: maximum interval length "
                f"{max_len} x {cfg.num_intervals} intervals cannot cover "
                f"{num_candidates} candidate slots"
            )

        candidates = self._search(num_candidates, min_len, max_len)
        best_splits, best_score = self._select_best(candidates, num_candidates)
        boundaries = tuple(int(s * steps_per_candidate) for s in best_splits)
        return TimelinePartition(
            boundaries=boundaries, steps_per_day=steps_per_day, score=best_score
        )

    # ------------------------------------------------------------------
    def _search(
        self, num_candidates: int, min_len: int, max_len: int
    ) -> list[tuple[int, ...]]:
        """Enumerate (or sample) feasible boundary tuples.

        Linear mode pins the first boundary at 0 (the paper's setting);
        circular mode lets all ``M`` boundaries float, so the first interval
        can straddle midnight.
        """
        cfg = self.config
        free = cfg.num_intervals - (0 if cfg.circular else 1)
        first_position = 0 if cfg.circular else 1
        positions = range(first_position, num_candidates)
        total_combos = math.comb(len(positions), free)
        feasible: list[tuple[int, ...]] = []

        def to_boundaries(combo: Sequence[int]) -> tuple[int, ...]:
            return tuple(combo) if cfg.circular else (0, *combo)

        def lengths_ok(combo: Sequence[int]) -> bool:
            bounds = to_boundaries(combo)
            edges = [*bounds, bounds[0] + num_candidates]
            lengths = [b - a for a, b in zip(edges[:-1], edges[1:])]
            return all(min_len <= length <= max_len for length in lengths)

        if total_combos <= cfg.exhaustive_limit:
            for combo in itertools.combinations(positions, free):
                if lengths_ok(combo):
                    feasible.append(to_boundaries(combo))
        else:
            rng = np.random.default_rng(cfg.seed)
            # Seed the beam with uniform splits, then mutate.
            uniform = tuple(
                round(first_position + i * (num_candidates - first_position) / free)
                for i in range(free)
            )
            beam = {uniform} if lengths_ok(uniform) else set()
            attempts = 0
            while len(beam) < cfg.beam_width and attempts < 100 * cfg.beam_width:
                attempts += 1
                combo = tuple(
                    sorted(rng.choice(np.asarray(positions), free, replace=False))
                )
                if lengths_ok(combo):
                    beam.add(combo)
            beam_list = list(beam)
            for _ in range(cfg.beam_iterations):
                parent = beam_list[rng.integers(len(beam_list))]
                idx = rng.integers(free)
                shift = int(rng.choice([-2, -1, 1, 2]))
                child = list(parent)
                child[idx] = int(
                    np.clip(child[idx] + shift, first_position, num_candidates - 1)
                )
                child_t = tuple(sorted(set(child)))
                if len(child_t) == free and lengths_ok(child_t):
                    beam_list.append(child_t)
            feasible = [to_boundaries(c) for c in dict.fromkeys(beam_list)]
        if not feasible:
            raise RuntimeError("no feasible partition under the configured constraints")
        return feasible

    def _select_best(
        self, candidates: list[tuple[int, ...]], num_candidates: int
    ) -> tuple[tuple[int, ...], float]:
        cfg = self.config
        best_splits: tuple[int, ...] | None = None
        best_score = -math.inf
        fallback_splits: tuple[int, ...] | None = None
        fallback_score = -math.inf
        for bounds in candidates:
            edges = [*bounds, bounds[0] + num_candidates]
            intervals = list(zip(edges[:-1], edges[1:]))
            distances = [
                self._interval_distance(intervals[i], intervals[j], num_candidates)
                for i in range(len(intervals))
                for j in range(i + 1, len(intervals))
            ]
            score = float(sum(distances))
            total = score if score > 0 else 1.0
            eta_ok = min(distances) / total <= cfg.eta
            if eta_ok and score > best_score:
                best_score = score
                best_splits = bounds
            if score > fallback_score:
                fallback_score = score
                fallback_splits = bounds
        if best_splits is None:
            # Every candidate violates the eta constraint; use the best
            # unconstrained candidate rather than failing (the constraint is
            # a tie-breaker in the paper, not a hard feasibility condition).
            best_splits = fallback_splits
            best_score = fallback_score
        assert best_splits is not None
        return best_splits, best_score

    # ------------------------------------------------------------------
    def _interval_distance(
        self,
        interval_a: tuple[int, int],
        interval_b: tuple[int, int],
        num_candidates: int,
    ) -> float:
        """Memoized D(H_a, H_b): mean per-node series distance."""
        key = (interval_a, interval_b) if interval_a <= interval_b else (interval_b, interval_a)
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        assert self._profile is not None and self._metric is not None
        steps_per_day = self._profile.shape[0]
        series_a = self._interval_series(interval_a, num_candidates, steps_per_day)
        series_b = self._interval_series(interval_b, num_candidates, steps_per_day)
        n = series_a.shape[0]
        value = float(
            np.mean([self._metric(series_a[i], series_b[i]) for i in range(n)])
        )
        self._pair_cache[key] = value
        return value

    def _interval_series(
        self, interval: tuple[int, int], num_candidates: int, steps_per_day: int
    ) -> np.ndarray:
        """Per-node profile slice for an interval, downsampled, ``(N, L, D)``."""
        assert self._profile is not None
        start = interval[0] * steps_per_day // num_candidates
        end = interval[1] * steps_per_day // num_candidates
        segment = wrap_slice(self._profile, start, end)  # (L, N, D)
        length = segment.shape[0]
        target = min(self.config.downsample_to, length)
        if length > target:
            # Average-pool to `target` points.
            edges = np.linspace(0, length, target + 1).astype(int)
            segment = np.stack(
                [segment[a:b].mean(axis=0) for a, b in zip(edges[:-1], edges[1:])]
            )
        return np.transpose(segment, (1, 0, 2))  # (N, L, D)


def wrap_slice(profile: np.ndarray, start: int, end: int) -> np.ndarray:
    """Slice ``profile`` along axis 0 over ``[start, end)``, wrapping.

    ``profile`` covers one day; ``end`` may exceed its length for intervals
    that straddle midnight (circular partitions), in which case the slice
    concatenates the tail of the day with its head.
    """
    period = profile.shape[0]
    if not 0 <= start < period:
        raise ValueError(f"start {start} outside [0, {period})")
    if end <= start or end > start + period:
        raise ValueError(f"end {end} must satisfy start < end <= start + period")
    if end <= period:
        return profile[start:end]
    return np.concatenate([profile[start:], profile[: end - period]], axis=0)


# ----------------------------------------------------------------------
# Node sharding (spatial partitioning for the sharded serving cluster)
# ----------------------------------------------------------------------


def _support(adjacency: np.ndarray) -> np.ndarray:
    """Boolean symmetric edge support of a (possibly directed) adjacency."""
    a = np.asarray(adjacency)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {a.shape}")
    support = np.abs(a) > 0
    support |= support.T
    np.fill_diagonal(support, False)
    return support


def k_hop_reach(adjacency: np.ndarray, seeds: Sequence[int], hops: int) -> np.ndarray:
    """Sorted node ids within ``hops`` edges of ``seeds`` (seeds included)."""
    support = _support(adjacency)
    reached = np.zeros(support.shape[0], dtype=bool)
    reached[np.asarray(list(seeds), dtype=int)] = True
    frontier = reached.copy()
    for _ in range(int(hops)):
        if not frontier.any():
            break
        nxt = support[frontier].any(axis=0) & ~reached
        reached |= nxt
        frontier = nxt
    return np.flatnonzero(reached)


def _grow_regions(support: np.ndarray, num_regions: int) -> list[list[int]]:
    """Split nodes into ``num_regions`` contiguous, balanced regions.

    Greedy BFS growth: seed each region at the lowest-index unassigned
    node, absorb neighbours in index order up to a balanced capacity,
    jump to a fresh seed when the frontier dries up (disconnected
    graphs). Deterministic in the adjacency alone.
    """
    n = support.shape[0]
    capacity = math.ceil(n / num_regions)
    assigned = np.full(n, -1, dtype=int)
    regions: list[list[int]] = []
    for region in range(num_regions):
        members: list[int] = []
        remaining = np.flatnonzero(assigned < 0)
        if remaining.size == 0:
            regions.append(members)
            continue
        queue = [int(remaining[0])]
        while len(members) < capacity:
            if not queue:
                remaining = np.flatnonzero(assigned < 0)
                if remaining.size == 0:
                    break
                queue = [int(remaining[0])]
            node = queue.pop(0)
            if assigned[node] >= 0:
                continue
            assigned[node] = region
            members.append(node)
            neighbours = np.flatnonzero(support[node] & (assigned < 0))
            queue.extend(int(v) for v in neighbours if v not in queue)
        regions.append(sorted(members))
    leftovers = np.flatnonzero(assigned < 0)
    if leftovers.size:  # pragma: no cover - capacity*num_regions >= n
        regions[-1].extend(int(v) for v in leftovers)
        regions[-1].sort()
    return regions


def _hash_position(token: str) -> int:
    return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8], "big")


def _ring_assign(
    num_regions: int, num_shards: int, salt: str, vnodes: int, load_factor: float
) -> list[int]:
    """Consistent-hash regions onto shards with bounded per-shard load.

    Each shard owns ``vnodes`` positions on a sha256 ring; a region maps
    to the first clockwise position whose shard is below the load bound
    ``ceil(num_regions / num_shards * load_factor)``. Adding a shard
    therefore only moves regions onto the new shard, and no shard can
    grab more than the bound even for adversarial hashes.
    """
    ring = sorted(
        (_hash_position(f"{salt}|shard:{shard}|vnode:{v}"), shard)
        for shard in range(num_shards)
        for v in range(vnodes)
    )
    bound = math.ceil(num_regions / num_shards * load_factor)
    loads = [0] * num_shards
    assignment = [0] * num_regions
    positions = [pos for pos, _ in ring]
    for region in range(num_regions):
        key = _hash_position(f"{salt}|region:{region}")
        start = np.searchsorted(positions, key) % len(ring)
        for offset in range(len(ring)):
            shard = ring[(start + offset) % len(ring)][1]
            if loads[shard] < bound:
                assignment[region] = shard
                loads[shard] += 1
                break
    return assignment


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of sensor nodes to serving shards, with halos.

    ``assignment[node]`` is the owning (primary) shard. ``halos[s]``
    holds the extra nodes shard ``s`` replicates read-only so that a
    ``halo_hops``-hop graph convolution over its owned nodes sees the
    same neighbourhood it would on the full graph. Regions record the
    contiguous groups that consistent hashing placed (provenance for
    rebalancing).
    """

    num_nodes: int
    num_shards: int
    halo_hops: int
    assignment: tuple[int, ...]
    halos: tuple[tuple[int, ...], ...]
    regions: tuple[tuple[int, ...], ...]
    region_shard: tuple[int, ...]
    salt: str = ""

    def __post_init__(self):
        if len(self.assignment) != self.num_nodes:
            raise ValueError(
                f"assignment covers {len(self.assignment)} nodes, expected {self.num_nodes}"
            )
        if len(self.halos) != self.num_shards:
            raise ValueError(f"need one halo per shard, got {len(self.halos)}")
        for node, shard in enumerate(self.assignment):
            if not 0 <= shard < self.num_shards:
                raise ValueError(f"node {node} assigned to invalid shard {shard}")

    # -- lookups -------------------------------------------------------
    def owner(self, node: int) -> int:
        """Primary shard of a global node id."""
        if not 0 <= node < self.num_nodes:
            raise KeyError(f"node {node} outside [0, {self.num_nodes})")
        return self.assignment[node]

    def nodes_of(self, shard: int) -> tuple[int, ...]:
        """Sorted global ids owned by ``shard``."""
        return tuple(n for n, s in enumerate(self.assignment) if s == shard)

    def halo_of(self, shard: int) -> tuple[int, ...]:
        """Sorted global ids replicated (not owned) on ``shard``."""
        return self.halos[shard]

    def retained_of(self, shard: int) -> tuple[int, ...]:
        """Sorted global ids materialized on ``shard`` (owned + halo)."""
        return tuple(sorted({*self.nodes_of(shard), *self.halos[shard]}))

    def holders_of(self, node: int) -> tuple[int, ...]:
        """Owner first, then every shard retaining ``node`` in its halo."""
        owner = self.owner(node)
        replicas = [s for s in range(self.num_shards) if s != owner and node in self.halos[s]]
        return (owner, *replicas)

    def replicas_of(self, shard: int) -> tuple[int, ...]:
        """Failover order: the other shards, nearest ring successor first."""
        return tuple((shard + off) % self.num_shards for off in range(1, self.num_shards))

    # -- serialization -------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "num_shards": self.num_shards,
            "halo_hops": self.halo_hops,
            "assignment": list(self.assignment),
            "halos": [list(h) for h in self.halos],
            "regions": [list(r) for r in self.regions],
            "region_shard": list(self.region_shard),
            "salt": self.salt,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ShardPlan":
        return cls(
            num_nodes=int(payload["num_nodes"]),
            num_shards=int(payload["num_shards"]),
            halo_hops=int(payload["halo_hops"]),
            assignment=tuple(int(s) for s in payload["assignment"]),
            halos=tuple(tuple(int(n) for n in h) for h in payload["halos"]),
            regions=tuple(tuple(int(n) for n in r) for r in payload["regions"]),
            region_shard=tuple(int(s) for s in payload["region_shard"]),
            salt=str(payload.get("salt", "")),
        )


def plan_shards(
    adjacency: np.ndarray,
    num_shards: int,
    halo_hops: int = 1,
    num_regions: int | None = None,
    vnodes: int = 64,
    load_factor: float = 1.25,
    salt: str = "",
) -> ShardPlan:
    """Build a :class:`ShardPlan` for a sensor graph.

    Two-level placement: the graph is first split into contiguous
    balanced regions (BFS growth, so spatial locality survives), then
    region ids are consistent-hashed onto shards via a bounded-load
    sha256 ring — the halo ring of each shard is the ``halo_hops``-hop
    BFS fringe of its owned set. ``halo_hops`` at least ``K - 1`` (the
    Chebyshev order minus one) makes a one-conv-per-step model's owned
    rows exact; larger models need larger halos.
    """
    support = _support(adjacency)
    n = support.shape[0]
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > n:
        raise ValueError(f"cannot split {n} nodes into {num_shards} shards")
    if halo_hops < 0:
        raise ValueError(f"halo_hops must be >= 0, got {halo_hops}")
    if num_regions is None:
        num_regions = min(n, max(num_shards, 4 * num_shards))
    if num_regions < num_shards or num_regions > n:
        raise ValueError(
            f"num_regions must lie in [{num_shards}, {n}], got {num_regions}"
        )
    regions = _grow_regions(support, num_regions)
    region_shard = _ring_assign(num_regions, num_shards, salt, vnodes, load_factor)
    # Guarantee no shard is empty: hand the largest region of the most
    # loaded shard to each empty one (rare; bounded loads make it rarer).
    owned_regions: dict[int, list[int]] = {s: [] for s in range(num_shards)}
    for region, shard in enumerate(region_shard):
        owned_regions[shard].append(region)
    for shard in range(num_shards):
        if owned_regions[shard]:
            continue
        donor = max(
            (s for s in range(num_shards) if len(owned_regions[s]) > 1),
            key=lambda s: len(owned_regions[s]),
            default=None,
        )
        if donor is None:
            raise ValueError(
                f"cannot place {num_shards} shards over {num_regions} regions"
            )
        moved = owned_regions[donor].pop()
        owned_regions[shard].append(moved)
        region_shard[moved] = shard
    assignment = np.zeros(n, dtype=int)
    for region, shard in enumerate(region_shard):
        assignment[list(regions[region])] = shard
    halos = []
    for shard in range(num_shards):
        owned = np.flatnonzero(assignment == shard)
        reach = k_hop_reach(support, owned, halo_hops) if owned.size else np.array([], dtype=int)
        halos.append(tuple(int(v) for v in reach if assignment[v] != shard))
    return ShardPlan(
        num_nodes=n,
        num_shards=num_shards,
        halo_hops=int(halo_hops),
        assignment=tuple(int(s) for s in assignment),
        halos=tuple(halos),
        regions=tuple(tuple(r) for r in regions),
        region_shard=tuple(int(s) for s in region_shard),
        salt=salt,
    )


def shard_quality(plan: ShardPlan, adjacency: np.ndarray) -> dict:
    """Partition quality metrics: edge cut, balance, replication.

    ``edge_cut`` is the fraction of (undirected) edges whose endpoints
    live on different primary shards; ``balance`` is the largest owned
    share relative to a perfectly even split (1.0 = perfect);
    ``replication_factor`` is materialized rows over graph rows (1.0 =
    no halo overhead).
    """
    support = _support(adjacency)
    iu = np.triu_indices_from(support, k=1)
    edges = np.flatnonzero(support[iu])
    src, dst = iu[0][edges], iu[1][edges]
    assignment = np.asarray(plan.assignment)
    cut = int((assignment[src] != assignment[dst]).sum()) if edges.size else 0
    owned_sizes = [len(plan.nodes_of(s)) for s in range(plan.num_shards)]
    retained_sizes = [len(plan.retained_of(s)) for s in range(plan.num_shards)]
    even = plan.num_nodes / plan.num_shards
    return {
        "edge_cut": cut / max(1, edges.size),
        "cut_edges": cut,
        "total_edges": int(edges.size),
        "balance": max(owned_sizes) / even if even else 1.0,
        "owned_sizes": owned_sizes,
        "retained_sizes": retained_sizes,
        "replication_factor": sum(retained_sizes) / max(1, plan.num_nodes),
        "max_halo_fraction": max(
            (len(plan.halo_of(s)) / max(1, len(plan.nodes_of(s))))
            for s in range(plan.num_shards)
        ),
    }
