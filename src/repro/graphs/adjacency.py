"""Adjacency matrix construction — Eq. (8) of the paper.

Distances (geographic or series-based) are turned into edge weights with a
thresholded Gaussian kernel::

    A_ij = exp(-d_ij^2 / sigma^2)   if >= epsilon, else 0

``sigma`` is the standard deviation of the distances and ``epsilon``
(default 0.1, per Section IV-A3) controls sparsity.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_kernel_adjacency", "normalize_adjacency", "add_self_loops"]


def gaussian_kernel_adjacency(
    distances: np.ndarray,
    epsilon: float = 0.1,
    sigma: float | None = None,
    zero_diagonal: bool = True,
) -> np.ndarray:
    """Thresholded Gaussian kernel adjacency from a distance matrix.

    Parameters
    ----------
    distances:
        Symmetric non-negative matrix ``(N, N)``.
    epsilon:
        Sparsity threshold; kernel values below it are zeroed.
    sigma:
        Kernel bandwidth. Defaults to the standard deviation of the
        off-diagonal distances (the paper's choice).
    zero_diagonal:
        Remove self-edges (self information is re-added by the GCN via the
        ``k=0`` Chebyshev term / self loops).
    """
    distances = np.asarray(distances, dtype=np.float64)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError(f"distances must be square, got shape {distances.shape}")
    if (distances < 0).any():
        raise ValueError("distances must be non-negative")
    n = distances.shape[0]
    if sigma is None:
        off_diag = distances[~np.eye(n, dtype=bool)]
        sigma = float(off_diag.std())
        if sigma == 0.0:
            sigma = 1.0  # degenerate all-equal distances: fully connected
    adjacency = np.exp(-(distances ** 2) / (sigma ** 2))
    adjacency[adjacency < epsilon] = 0.0
    if zero_diagonal:
        np.fill_diagonal(adjacency, 0.0)
    # Symmetrize against numerical asymmetry in the input.
    return (adjacency + adjacency.T) / 2.0


def add_self_loops(adjacency: np.ndarray, weight: float = 1.0) -> np.ndarray:
    """Return a copy of ``adjacency`` with ``weight`` on the diagonal."""
    out = np.asarray(adjacency, dtype=np.float64).copy()
    np.fill_diagonal(out, weight)
    return out


def normalize_adjacency(adjacency: np.ndarray, self_loops: bool = True) -> np.ndarray:
    """Symmetric normalization ``D^{-1/2} (A [+ I]) D^{-1/2}``.

    Used for first-order :class:`~repro.nn.graph.GraphConv` propagation.
    Isolated nodes get zero rows (their degree inverse is defined as 0).
    """
    a = np.asarray(adjacency, dtype=np.float64)
    if self_loops:
        a = add_self_loops(a)
    degree = a.sum(axis=1)
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = degree[nonzero] ** -0.5
    return (a * inv_sqrt[:, None]) * inv_sqrt[None, :]
