"""Graph construction: adjacency kernels, Laplacians, timeline partitioning
and the heterogeneous graph set of Section III-D."""

from .analysis import (
    edge_density,
    edge_jaccard,
    graph_disagreement_matrix,
    heterogeneity_score,
    weighted_similarity,
)
from .adjacency import add_self_loops, gaussian_kernel_adjacency, normalize_adjacency
from .heterograph import (
    HeterogeneousGraphSet,
    build_heterogeneous_graphs,
    build_temporal_graphs,
    build_weekly_temporal_graphs,
)
from .laplacian import (
    chebyshev_polynomials,
    max_eigenvalue,
    normalized_laplacian,
    scaled_laplacian,
)
from .partition import (
    PartitionConfig,
    ShardPlan,
    TimelinePartition,
    TimelinePartitioner,
    daily_profile,
    k_hop_reach,
    plan_shards,
    shard_quality,
    wrap_slice,
)

__all__ = [
    "gaussian_kernel_adjacency",
    "normalize_adjacency",
    "add_self_loops",
    "normalized_laplacian",
    "scaled_laplacian",
    "chebyshev_polynomials",
    "max_eigenvalue",
    "PartitionConfig",
    "TimelinePartition",
    "TimelinePartitioner",
    "daily_profile",
    "HeterogeneousGraphSet",
    "build_temporal_graphs",
    "build_heterogeneous_graphs",
    "build_weekly_temporal_graphs",
    "wrap_slice",
    "ShardPlan",
    "plan_shards",
    "shard_quality",
    "k_hop_reach",
    "edge_density",
    "edge_jaccard",
    "weighted_similarity",
    "graph_disagreement_matrix",
    "heterogeneity_score",
]
