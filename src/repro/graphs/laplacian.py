"""Graph Laplacians and Chebyshev polynomial stacks (Section III-C).

The spectral GCN of Eq. (1) needs ``T_k(L̃)`` where
``L̃ = 2 L / lambda_max - I`` is the scaled normalized Laplacian. The graph
is fixed during training, so these matrices are computed once and cached in
each :class:`~repro.nn.graph.ChebConv`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalized_laplacian",
    "scaled_laplacian",
    "chebyshev_polynomials",
    "max_eigenvalue",
]


def normalized_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric normalized Laplacian ``I - D^{-1/2} A D^{-1/2}``.

    Isolated nodes contribute identity rows (their normalized adjacency row
    is zero).
    """
    a = np.asarray(adjacency, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {a.shape}")
    degree = a.sum(axis=1)
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = degree[nonzero] ** -0.5
    normalized = (a * inv_sqrt[:, None]) * inv_sqrt[None, :]
    return np.eye(a.shape[0]) - normalized


def max_eigenvalue(matrix: np.ndarray) -> float:
    """Largest eigenvalue of a symmetric matrix (for Laplacian scaling)."""
    sym = (matrix + matrix.T) / 2.0
    eigenvalues = np.linalg.eigvalsh(sym)
    return float(eigenvalues[-1])


def scaled_laplacian(adjacency: np.ndarray, lambda_max: float | None = None) -> np.ndarray:
    """``L̃ = 2 L / lambda_max - I`` with eigenvalues in ``[-1, 1]``.

    ``lambda_max`` defaults to the exact largest eigenvalue; pass ``2.0``
    for the common cheap approximation.
    """
    lap = normalized_laplacian(adjacency)
    if lambda_max is None:
        lambda_max = max_eigenvalue(lap)
    if lambda_max <= 0:
        # Edgeless graph: L == 0, scaling is irrelevant.
        lambda_max = 2.0
    return (2.0 / lambda_max) * lap - np.eye(lap.shape[0])


def chebyshev_polynomials(
    adjacency: np.ndarray,
    order: int,
    lambda_max: float | None = None,
) -> np.ndarray:
    """Stack ``T_0 .. T_{K-1}`` of the scaled Laplacian, shape ``(K, N, N)``.

    Uses the recurrence ``T_k = 2 L̃ T_{k-1} - T_{k-2}``. ``order`` is the
    paper's ``K`` (3 in all experiments).
    """
    if order < 1:
        raise ValueError(f"Chebyshev order must be >= 1, got {order}")
    lap = scaled_laplacian(adjacency, lambda_max=lambda_max)
    n = lap.shape[0]
    stack = np.empty((order, n, n))
    stack[0] = np.eye(n)
    if order > 1:
        stack[1] = lap
    for k in range(2, order):
        stack[k] = 2.0 * lap @ stack[k - 1] - stack[k - 2]
    return stack
