"""Evaluation metrics (numpy, outside the autodiff graph).

The paper reports MAE and RMSE for both prediction and imputation. All
metrics here are mask-aware: entries with mask 0 are excluded from the
average (for prediction on real data only observed targets count; for
imputation only the held-out entries count).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "mae",
    "rmse",
    "mape",
    "masked_mae",
    "masked_rmse",
    "masked_mape",
    "MetricPair",
    "evaluate_horizons",
]


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.abs(np.asarray(pred) - np.asarray(target)).mean())


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error."""
    diff = np.asarray(pred) - np.asarray(target)
    return float(np.sqrt((diff * diff).mean()))


def mape(pred: np.ndarray, target: np.ndarray, epsilon: float = 1e-3) -> float:
    """Mean absolute percentage error (%).

    Entries with ``|target| <= epsilon`` are excluded — percentage error is
    undefined at (near-)zero ground truth. Not used in the paper's tables
    (which report MAE/RMSE) but standard in the traffic literature.
    """
    pred = np.asarray(pred)
    target = np.asarray(target)
    valid = np.abs(target) > epsilon
    if not valid.any():
        return 0.0
    return float(
        100.0 * (np.abs(pred - target)[valid] / np.abs(target)[valid]).mean()
    )


def masked_mape(
    pred: np.ndarray, target: np.ndarray, mask: np.ndarray, epsilon: float = 1e-3
) -> float:
    """MAPE over entries where ``mask`` is nonzero and target is non-tiny."""
    pred = np.asarray(pred)
    target = np.asarray(target)
    valid = (np.asarray(mask, dtype=np.float64) > 0) & (np.abs(target) > epsilon)
    if not valid.any():
        return 0.0
    return float(
        100.0 * (np.abs(pred - target)[valid] / np.abs(target)[valid]).mean()
    )


def masked_mae(pred: np.ndarray, target: np.ndarray, mask: np.ndarray) -> float:
    """MAE over entries where ``mask`` is nonzero (NaN-safe denominator)."""
    mask = np.asarray(mask, dtype=np.float64)
    denom = max(mask.sum(), 1.0)
    return float((np.abs(np.asarray(pred) - np.asarray(target)) * mask).sum() / denom)


def masked_rmse(pred: np.ndarray, target: np.ndarray, mask: np.ndarray) -> float:
    """RMSE over entries where ``mask`` is nonzero."""
    mask = np.asarray(mask, dtype=np.float64)
    denom = max(mask.sum(), 1.0)
    diff = np.asarray(pred) - np.asarray(target)
    return float(np.sqrt((diff * diff * mask).sum() / denom))


@dataclass
class MetricPair:
    """An (MAE, RMSE) pair — one cell group of the paper's tables."""

    mae: float
    rmse: float

    def __iter__(self):
        yield self.mae
        yield self.rmse

    def __str__(self) -> str:
        return f"MAE={self.mae:.4f} RMSE={self.rmse:.4f}"


def evaluate_horizons(
    pred: np.ndarray,
    target: np.ndarray,
    mask: np.ndarray,
    horizons: list[int],
) -> dict[int, MetricPair]:
    """Cumulative metrics at several horizons.

    ``pred``/``target``/``mask`` are ``(B, T_out, N, D)``; for each
    ``h`` in ``horizons`` the metrics cover steps ``1..h`` (the paper's
    "15 min / 30 min / 45 min / 60 min" columns are cumulative windows of
    3, 6, 9, 12 five-minute steps).
    """
    out: dict[int, MetricPair] = {}
    for h in horizons:
        if not 1 <= h <= pred.shape[1]:
            raise ValueError(f"horizon {h} out of range 1..{pred.shape[1]}")
        out[h] = MetricPair(
            mae=masked_mae(pred[:, :h], target[:, :h], mask[:, :h]),
            rmse=masked_rmse(pred[:, :h], target[:, :h], mask[:, :h]),
        )
    return out
