"""Post-hoc evaluation analysis: per-step and per-node error breakdowns.

The paper's tables aggregate over nodes and (cumulatively) over horizon
steps; these helpers expose the finer structure for analysis — which road
segments are hard, how error compounds step by step.
"""

from __future__ import annotations

import numpy as np

from .metrics import MetricPair

__all__ = ["per_step_metrics", "per_node_metrics", "error_by_missingness"]


def _validate(pred: np.ndarray, target: np.ndarray, mask: np.ndarray) -> None:
    if pred.shape != target.shape or pred.shape != mask.shape:
        raise ValueError(
            f"shape mismatch: pred {pred.shape}, target {target.shape}, "
            f"mask {mask.shape}"
        )
    if pred.ndim != 4:
        raise ValueError(f"expected (B, T, N, D) arrays, got {pred.shape}")


def per_step_metrics(
    pred: np.ndarray, target: np.ndarray, mask: np.ndarray
) -> list[MetricPair]:
    """Non-cumulative (MAE, RMSE) per forecast step.

    Unlike :func:`~repro.training.evaluate_horizons` (cumulative windows,
    as the paper's tables report), each returned entry covers exactly one
    step ahead — the curve a deployment dashboard would plot.
    """
    pred = np.asarray(pred)
    target = np.asarray(target)
    mask = np.asarray(mask, dtype=np.float64)
    _validate(pred, target, mask)
    out: list[MetricPair] = []
    for t in range(pred.shape[1]):
        m = mask[:, t]
        denom = max(m.sum(), 1.0)
        diff = pred[:, t] - target[:, t]
        out.append(
            MetricPair(
                mae=float((np.abs(diff) * m).sum() / denom),
                rmse=float(np.sqrt((diff * diff * m).sum() / denom)),
            )
        )
    return out


def per_node_metrics(
    pred: np.ndarray, target: np.ndarray, mask: np.ndarray
) -> list[MetricPair]:
    """(MAE, RMSE) per road segment, pooled over windows/steps/features."""
    pred = np.asarray(pred)
    target = np.asarray(target)
    mask = np.asarray(mask, dtype=np.float64)
    _validate(pred, target, mask)
    out: list[MetricPair] = []
    for n in range(pred.shape[2]):
        m = mask[:, :, n]
        denom = max(m.sum(), 1.0)
        diff = pred[:, :, n] - target[:, :, n]
        out.append(
            MetricPair(
                mae=float((np.abs(diff) * m).sum() / denom),
                rmse=float(np.sqrt((diff * diff * m).sum() / denom)),
            )
        )
    return out


def error_by_missingness(
    pred: np.ndarray,
    target: np.ndarray,
    target_mask: np.ndarray,
    history_mask: np.ndarray,
    bins: int = 4,
) -> list[tuple[float, MetricPair]]:
    """Forecast error stratified by how incomplete each window's input was.

    Groups windows into ``bins`` quantile buckets of history missing rate
    and reports (bucket mean missing rate, MetricPair). Quantifies the
    paper's core claim at the *window* level: error should degrade
    gracefully as the input gets sparser.
    """
    pred = np.asarray(pred)
    target = np.asarray(target)
    target_mask = np.asarray(target_mask, dtype=np.float64)
    history_mask = np.asarray(history_mask, dtype=np.float64)
    _validate(pred, target, target_mask)
    if len(history_mask) != len(pred):
        raise ValueError("history_mask must have one entry per window")

    window_missing = 1.0 - history_mask.reshape(len(history_mask), -1).mean(axis=1)
    edges = np.quantile(window_missing, np.linspace(0, 1, bins + 1))
    out: list[tuple[float, MetricPair]] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        sel = (window_missing >= lo) & (window_missing <= hi)
        if not sel.any():
            continue
        m = target_mask[sel]
        denom = max(m.sum(), 1.0)
        diff = pred[sel] - target[sel]
        out.append(
            (
                float(window_missing[sel].mean()),
                MetricPair(
                    mae=float((np.abs(diff) * m).sum() / denom),
                    rmse=float(np.sqrt((diff * diff * m).sum() / denom)),
                ),
            )
        )
    return out
