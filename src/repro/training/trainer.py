"""Training loop for neural forecasters.

Implements the paper's protocol: Adam (lr 1e-3), gradient clipping,
batch size 64, early stopping with patience 6 on validation loss, joint
objective ``L = L_c + lambda * L_m`` for imputation-based models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..autodiff import no_grad
from ..datasets import BatchLoader, WindowSet
from ..nn import JointLoss
from ..optim import Adam, EarlyStopping, clip_grad_norm
from ..models.base import ForecastOutput, NeuralForecaster
from .metrics import masked_mae, masked_rmse

__all__ = ["TrainerConfig", "TrainingHistory", "Trainer"]


@dataclass
class TrainerConfig:
    """Hyper-parameters for a training run (defaults per the paper)."""

    learning_rate: float = 1e-3
    batch_size: int = 64
    max_epochs: int = 50
    patience: int = 6
    grad_clip: float = 5.0
    imputation_weight: float = 1.0  # the paper's lambda
    weight_decay: float = 0.0
    shuffle: bool = True
    seed: int = 0
    verbose: bool = False

    def __post_init__(self):
        if self.max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {self.max_epochs}")


@dataclass
class TrainingHistory:
    """Per-epoch records of one run."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def num_epochs(self) -> int:
        return len(self.train_loss)


class Trainer:
    """Fits a :class:`NeuralForecaster` on window sets.

    The trainer owns loss construction (prediction loss for all models,
    plus the Eq. 6 imputation loss when the model produces estimates),
    validation-based early stopping, and best-weight restoration.
    """

    def __init__(self, model: NeuralForecaster, config: TrainerConfig | None = None):
        self.model = model
        self.config = config or TrainerConfig()
        self.loss_fn = JointLoss(imputation_weight=self.config.imputation_weight)
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def _forward(self, batch: WindowSet) -> ForecastOutput:
        """Model forward with the batch fields the model declares it uses."""
        kwargs = {}
        if getattr(self.model, "uses_periodic", False):
            kwargs = dict(x_daily=batch.x_daily, m_daily=batch.m_daily)
        return self.model(batch.x, batch.m, batch.steps_of_day, **kwargs)

    def _batch_loss(self, batch: WindowSet):
        out: ForecastOutput = self._forward(batch)
        kwargs = {}
        if self.model.produces_estimates and out.estimates_fwd is not None:
            validity = out.estimate_validity
            history_mask = batch.m
            if validity is not None:
                history_mask = history_mask * validity[None, :, None, None]
            kwargs = dict(
                estimates_fwd=out.estimates_fwd,
                estimates_bwd=out.estimates_bwd,
                history=batch.x,
                history_mask=history_mask,
            )
        return self.loss_fn(out.prediction, batch.y, batch.y_mask, **kwargs)

    def fit(self, train: WindowSet, val: WindowSet | None = None) -> TrainingHistory:
        """Train with early stopping; restores the best validation weights."""
        cfg = self.config
        loader = BatchLoader(
            train, batch_size=cfg.batch_size, shuffle=cfg.shuffle, seed=cfg.seed
        )
        stopper = EarlyStopping(patience=cfg.patience)
        best_state = None
        params = list(self.model.parameters())

        for epoch in range(cfg.max_epochs):
            start = time.perf_counter()
            self.model.train()
            epoch_losses = []
            epoch_norms = []
            for batch in loader:
                self.optimizer.zero_grad()
                loss = self._batch_loss(batch)
                loss.backward()
                epoch_norms.append(clip_grad_norm(params, cfg.grad_clip))
                self.optimizer.step()
                epoch_losses.append(loss.item())
            train_loss = float(np.mean(epoch_losses))
            self.history.train_loss.append(train_loss)
            self.history.grad_norms.append(float(np.mean(epoch_norms)))
            self.history.epoch_seconds.append(time.perf_counter() - start)

            if val is not None and val.num_windows > 0:
                val_loss = self.evaluate_loss(val)
                self.history.val_loss.append(val_loss)
                monitored = val_loss
            else:
                monitored = train_loss
            if stopper.step(monitored, epoch):
                best_state = self.model.state_dict()
                self.history.best_epoch = epoch
            if cfg.verbose:
                print(
                    f"epoch {epoch:3d} train={train_loss:.4f} "
                    f"val={monitored:.4f} best={stopper.best:.4f}"
                )
            if stopper.should_stop:
                self.history.stopped_early = True
                break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self.history

    # ------------------------------------------------------------------
    def evaluate_loss(self, windows: WindowSet) -> float:
        """Mean loss over a window set without building the graph."""
        self.model.eval()
        loader = BatchLoader(
            windows, batch_size=self.config.batch_size, shuffle=False
        )
        losses = []
        with no_grad():
            for batch in loader:
                losses.append(self._batch_loss(batch).item())
        return float(np.mean(losses))

    def predict(self, windows: WindowSet) -> np.ndarray:
        """Batched inference: stacked predictions ``(B, T_out, N, D_out)``."""
        self.model.eval()
        loader = BatchLoader(
            windows, batch_size=self.config.batch_size, shuffle=False
        )
        chunks = []
        with no_grad():
            for batch in loader:
                out: ForecastOutput = self._forward(batch)
                chunks.append(out.prediction.data)
        return np.concatenate(chunks, axis=0)

    def evaluate(
        self, windows: WindowSet, scaler=None, target_feature: int | None = None
    ) -> tuple[float, float]:
        """(MAE, RMSE) on a window set, optionally in original units.

        ``scaler`` is a fitted :class:`~repro.datasets.ZScoreScaler`; when
        given, predictions and targets are inverse-transformed first.
        ``target_feature`` restricts metrics to one channel (e.g. average
        speed) — ``None`` scores all channels.
        """
        pred = self.predict(windows)
        target = windows.y
        mask = windows.y_mask
        if scaler is not None:
            pred = scaler.inverse_transform(pred)
            target = scaler.inverse_transform(target)
        if target_feature is not None:
            pred = pred[..., target_feature : target_feature + 1]
            target = target[..., target_feature : target_feature + 1]
            mask = mask[..., target_feature : target_feature + 1]
        return (
            masked_mae(pred, target, mask),
            masked_rmse(pred, target, mask),
        )
