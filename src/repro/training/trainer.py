"""Training loop for neural forecasters.

Implements the paper's protocol: Adam (lr 1e-3), gradient clipping,
batch size 64, early stopping with patience 6 on validation loss, joint
objective ``L = L_c + lambda * L_m`` for imputation-based models.

Run-time observability is callback-based: ``fit`` accepts a list of
:class:`repro.telemetry.Callback` objects and dispatches
``on_fit_start`` / ``on_epoch_start`` / ``on_batch_end`` /
``on_epoch_end`` / ``on_fit_end`` events. With no callbacks the loop
does no extra work beyond what the history records always cost.
"""

from __future__ import annotations

import time
from dataclasses import InitVar, dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..autodiff import no_grad
from ..errors import ConfigError
from ..datasets import BatchLoader, WindowSet
from ..nn import JointLoss
from ..optim import Adam, EarlyStopping, clip_grad_norm
from ..models.base import ForecastOutput, NeuralForecaster
from ..telemetry.callbacks import Callback, CallbackList
from .metrics import masked_mae, masked_mape, masked_rmse

__all__ = ["TrainerConfig", "TrainingHistory", "EvalReport", "Trainer"]


#: sentinel distinguishing "not passed" from any user value of ``verbose``
_VERBOSE_REMOVED = object()


@dataclass
class TrainerConfig:
    """Hyper-parameters for a training run (defaults per the paper).

    ``verbose`` was removed in this release: pass
    ``callbacks=[EpochLogger()]`` to :meth:`Trainer.fit` instead.
    Setting it raises :class:`~repro.errors.ConfigError`.
    """

    learning_rate: float = 1e-3
    batch_size: int = 64
    max_epochs: int = 50
    patience: int = 6
    grad_clip: float = 5.0
    imputation_weight: float = 1.0  # the paper's lambda
    weight_decay: float = 0.0
    shuffle: bool = True
    seed: int = 0
    verbose: InitVar[object] = _VERBOSE_REMOVED

    def __post_init__(self, verbose):
        if verbose is not _VERBOSE_REMOVED:
            raise ConfigError(
                "TrainerConfig.verbose was removed; pass "
                "Trainer.fit(..., callbacks=[EpochLogger()]) to log epochs"
            )
        if self.max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {self.max_epochs}")


@dataclass
class TrainingHistory:
    """Per-epoch records of one run."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def num_epochs(self) -> int:
        return len(self.train_loss)


@dataclass(frozen=True)
class EvalReport:
    """Structured result of :meth:`Trainer.evaluate`.

    Iterates (and indexes) as the legacy ``(mae, rmse)`` 2-tuple, so
    ``mae, rmse = trainer.evaluate(...)`` keeps working; the extra
    fields are attribute-only.
    """

    mae: float
    rmse: float
    mape: float
    num_observed: int
    horizon: int

    def __iter__(self) -> Iterator[float]:
        return iter((self.mae, self.rmse))

    def __getitem__(self, index):
        return (self.mae, self.rmse)[index]

    def __len__(self) -> int:
        return 2

    def as_dict(self) -> dict:
        return {
            "mae": self.mae,
            "rmse": self.rmse,
            "mape": self.mape,
            "num_observed": self.num_observed,
            "horizon": self.horizon,
        }


class Trainer:
    """Fits a :class:`NeuralForecaster` on window sets.

    The trainer owns loss construction (prediction loss for all models,
    plus the Eq. 6 imputation loss when the model produces estimates),
    validation-based early stopping, and best-weight restoration.
    Model-specific batch-field consumption lives in
    :meth:`NeuralForecaster.forward_batch`, not here.
    """

    def __init__(self, model: NeuralForecaster, config: TrainerConfig | None = None):
        self.model = model
        self.config = config or TrainerConfig()
        self.loss_fn = JointLoss(imputation_weight=self.config.imputation_weight)
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def _forward(self, batch: WindowSet) -> ForecastOutput:
        """Model forward via the model's own batch-field contract."""
        return self.model.forward_batch(batch)

    def _batch_loss(self, batch: WindowSet):
        out: ForecastOutput = self._forward(batch)
        kwargs = {}
        if self.model.produces_estimates and out.estimates_fwd is not None:
            validity = out.estimate_validity
            history_mask = batch.m
            if validity is not None:
                history_mask = history_mask * validity[None, :, None, None]
            kwargs = dict(
                estimates_fwd=out.estimates_fwd,
                estimates_bwd=out.estimates_bwd,
                history=batch.x,
                history_mask=history_mask,
            )
        return self.loss_fn(out.prediction, batch.y, batch.y_mask, **kwargs)

    def _resolve_callbacks(
        self, callbacks: Sequence[Callback] | None
    ) -> CallbackList:
        return CallbackList(list(callbacks or []))

    def fit(
        self,
        train: WindowSet,
        val: WindowSet | None = None,
        callbacks: Sequence[Callback] | None = None,
    ) -> TrainingHistory:
        """Train with early stopping; restores the best validation weights.

        ``callbacks`` observe the run (see :mod:`repro.telemetry`); they
        are dispatched in list order at every lifecycle event.
        """
        cfg = self.config
        if train.num_windows == 0:
            raise ValueError(
                "Trainer.fit received an empty training WindowSet (0 windows); "
                "check the split sizes / stride (a loader over it would yield "
                "zero batches and an undefined mean loss)"
            )
        cbs = self._resolve_callbacks(callbacks)
        loader = BatchLoader(
            train, batch_size=cfg.batch_size, shuffle=cfg.shuffle, seed=cfg.seed
        )
        stopper = EarlyStopping(patience=cfg.patience)
        best_state = None
        params = list(self.model.parameters())

        cbs.fit_start(self)
        for epoch in range(cfg.max_epochs):
            start = time.perf_counter()
            cbs.epoch_start(self, epoch)
            self.model.train()
            epoch_losses = []
            epoch_norms = []
            for batch_index, batch in enumerate(loader):
                self.optimizer.zero_grad()
                loss = self._batch_loss(batch)
                loss.backward()
                norm = clip_grad_norm(params, cfg.grad_clip)
                epoch_norms.append(norm)
                self.optimizer.step()
                loss_value = loss.item()
                epoch_losses.append(loss_value)
                if cbs.callbacks:
                    cbs.batch_end(self, epoch, batch_index, loss_value, norm)
            train_loss = float(np.mean(epoch_losses))
            grad_norm = float(np.mean(epoch_norms))
            self.history.train_loss.append(train_loss)
            self.history.grad_norms.append(grad_norm)

            if val is not None and val.num_windows > 0:
                val_loss = self.evaluate_loss(val)
                self.history.val_loss.append(val_loss)
                monitored = val_loss
            else:
                val_loss = None
                monitored = train_loss
            improved = stopper.step(monitored, epoch)
            if improved:
                best_state = self.model.state_dict()
                self.history.best_epoch = epoch
            seconds = time.perf_counter() - start
            self.history.epoch_seconds.append(seconds)
            if cbs.callbacks:
                cbs.epoch_end(self, epoch, {
                    "train_loss": train_loss,
                    "val_loss": val_loss,
                    "grad_norm": grad_norm,
                    "seconds": seconds,
                    "monitored": monitored,
                    "best": stopper.best,
                    "improved": improved,
                })
            if stopper.should_stop:
                self.history.stopped_early = True
                break

        cbs.fit_end(self, self.history)
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self.history

    # ------------------------------------------------------------------
    def evaluate_loss(self, windows: WindowSet) -> float:
        """Mean loss over a window set without building the graph."""
        if windows.num_windows == 0:
            raise ValueError(
                "Trainer.evaluate_loss received an empty WindowSet (0 windows); "
                "the mean loss over zero batches is undefined"
            )
        self.model.eval()
        loader = BatchLoader(
            windows, batch_size=self.config.batch_size, shuffle=False
        )
        losses = []
        with no_grad():
            for batch in loader:
                losses.append(self._batch_loss(batch).item())
        return float(np.mean(losses))

    def predict(self, windows: WindowSet) -> np.ndarray:
        """Batched inference: stacked predictions ``(B, T_out, N, D_out)``."""
        self.model.eval()
        loader = BatchLoader(
            windows, batch_size=self.config.batch_size, shuffle=False
        )
        chunks = []
        with no_grad():
            for batch in loader:
                out: ForecastOutput = self._forward(batch)
                chunks.append(out.prediction.data)
        return np.concatenate(chunks, axis=0)

    def evaluate(
        self, windows: WindowSet, scaler=None, target_feature: int | None = None
    ) -> EvalReport:
        """Score a window set; returns an :class:`EvalReport`.

        The report unpacks as the legacy ``(mae, rmse)`` tuple and adds
        ``mape`` (percent, observed near-zero targets excluded),
        ``num_observed`` (scored entries) and ``horizon`` (output steps).
        ``scaler`` is a fitted :class:`~repro.datasets.ZScoreScaler`; when
        given, predictions and targets are inverse-transformed first.
        ``target_feature`` restricts metrics to one channel (e.g. average
        speed) — ``None`` scores all channels.
        """
        pred = self.predict(windows)
        target = windows.y
        mask = windows.y_mask
        if scaler is not None:
            pred = scaler.inverse_transform(pred)
            target = scaler.inverse_transform(target)
        if target_feature is not None:
            pred = pred[..., target_feature : target_feature + 1]
            target = target[..., target_feature : target_feature + 1]
            mask = mask[..., target_feature : target_feature + 1]
        return EvalReport(
            mae=masked_mae(pred, target, mask),
            rmse=masked_rmse(pred, target, mask),
            mape=masked_mape(pred, target, mask),
            num_observed=int(np.asarray(mask, dtype=bool).sum()),
            horizon=windows.output_length,
        )
