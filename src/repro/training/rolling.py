"""Walk-forward (rolling) forecast evaluation.

The paper's tables score overlapping windows independently; a deployed
system instead produces one continuous forecast trace: every ``horizon``
steps it reads the last hour and forecasts the next. This module runs
that protocol over a dataset split and assembles per-timestamp
predictions, which is also the right input for operational metrics
(continuous MAE over a day, worst-hour analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import no_grad
from ..datasets import TrafficDataset
from ..models.base import NeuralForecaster
from .metrics import MetricPair, masked_mae, masked_rmse

__all__ = ["ForecastTrace", "rolling_forecast"]


@dataclass
class ForecastTrace:
    """A continuous forecast over a series.

    Attributes
    ----------
    prediction:
        ``(T, N, D)`` forecasts in original units; positions never covered
        by any forecast window hold 0 and are excluded via ``covered``.
    covered:
        ``(T,)`` booleans marking timestamps with a forecast.
    target:
        ``(T, N, D)`` evaluation target (simulator truth when available,
        observations otherwise).
    target_mask:
        ``(T, N, D)`` validity of the target entries.
    """

    prediction: np.ndarray
    covered: np.ndarray
    target: np.ndarray
    target_mask: np.ndarray

    def metrics(self, feature: int | None = None) -> MetricPair:
        """(MAE, RMSE) over covered timestamps (optionally one channel)."""
        mask = self.target_mask * self.covered[:, None, None]
        pred, target = self.prediction, self.target
        if feature is not None:
            sl = slice(feature, feature + 1)
            pred, target, mask = pred[..., sl], target[..., sl], mask[..., sl]
        return MetricPair(
            mae=masked_mae(pred, target, mask),
            rmse=masked_rmse(pred, target, mask),
        )

    def metrics_by_step_of_day(
        self, steps_of_day: np.ndarray, steps_per_day: int, buckets: int = 24
    ) -> list[MetricPair]:
        """MAE/RMSE per time-of-day bucket (e.g. hourly for 288-step days)."""
        if len(steps_of_day) != len(self.prediction):
            raise ValueError("steps_of_day must cover the whole trace")
        per_bucket = steps_per_day // buckets
        out = []
        bucket_of = np.asarray(steps_of_day) // per_bucket
        for b in range(buckets):
            sel = (bucket_of == b) & self.covered
            mask = self.target_mask * sel[:, None, None]
            out.append(
                MetricPair(
                    mae=masked_mae(self.prediction, self.target, mask),
                    rmse=masked_rmse(self.prediction, self.target, mask),
                )
            )
        return out


def rolling_forecast(
    model: NeuralForecaster,
    dataset: TrafficDataset,
    scaler=None,
    refresh_every: int | None = None,
) -> ForecastTrace:
    """Run the walk-forward protocol over ``dataset`` (already scaled).

    Every ``refresh_every`` steps (default: the model's output length, so
    forecasts tile the series without overlap) the model reads the
    preceding ``input_length`` steps and emits the next ``output_length``.

    ``scaler`` (the fitted training scaler) converts predictions and
    targets back to original units.
    """
    input_length = model.input_length
    horizon = model.output_length
    if refresh_every is not None and refresh_every < 1:
        raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
    refresh = refresh_every if refresh_every is not None else horizon
    total = dataset.num_steps
    if total < input_length + horizon:
        raise ValueError("dataset shorter than one forecast cycle")

    nodes, features = dataset.num_nodes, dataset.num_features
    pred_sum = np.zeros((total, nodes, model.output_features))
    pred_count = np.zeros(total)

    starts = range(input_length, total - horizon + 1, refresh)
    batch_x, batch_m, batch_steps, batch_pos = [], [], [], []

    def flush():
        if not batch_x:
            return
        with no_grad():
            out = model(
                np.stack(batch_x), np.stack(batch_m), np.stack(batch_steps)
            )
        for pred, pos in zip(out.prediction.data, batch_pos):
            # pred: (horizon, N, D_out)
            pred_sum[pos : pos + horizon] += pred
            pred_count[pos : pos + horizon] += 1.0
        batch_x.clear()
        batch_m.clear()
        batch_steps.clear()
        batch_pos.clear()

    for t0 in starts:
        batch_x.append(dataset.data[t0 - input_length : t0])
        batch_m.append(dataset.mask[t0 - input_length : t0])
        batch_steps.append(dataset.steps_of_day[t0 - input_length : t0])
        batch_pos.append(t0)
        if len(batch_x) == 64:
            flush()
    flush()

    covered = pred_count > 0
    prediction = np.where(
        covered[:, None, None], pred_sum / np.maximum(pred_count, 1.0)[:, None, None], 0.0
    )
    target = dataset.truth if dataset.truth is not None else dataset.data
    target_mask = (
        np.ones_like(dataset.data) if dataset.truth is not None else dataset.mask
    )
    if scaler is not None:
        prediction = scaler.inverse_transform(prediction) * covered[:, None, None]
        target = scaler.inverse_transform(target)
    return ForecastTrace(
        prediction=prediction,
        covered=covered,
        target=target,
        target_mask=target_mask,
    )
