"""Rolling-origin cross-validation for time-series forecasters.

A single chronological split (the paper's 7:2:1) yields one test period;
rolling-origin evaluation re-trains on expanding history and tests on
successive forward blocks, giving variance estimates that respect time
ordering (no shuffled k-fold leakage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..datasets import TrafficDataset, WindowSet, make_windows
from ..models.base import NeuralForecaster
from .metrics import MetricPair, masked_mae, masked_rmse
from .trainer import Trainer, TrainerConfig

__all__ = ["FoldResult", "RollingOriginCV", "rolling_origin_folds"]


def rolling_origin_folds(
    total_steps: int,
    num_folds: int,
    test_fraction: float = 0.15,
    min_train_fraction: float = 0.3,
) -> list[tuple[int, int, int]]:
    """Compute ``(train_end, test_start, test_end)`` index triples.

    The test blocks are consecutive, equally-sized spans at the end of the
    series; each fold trains on everything before its test block
    (expanding window). ``test_start == train_end`` (no gap).
    """
    if num_folds < 1:
        raise ValueError(f"num_folds must be >= 1, got {num_folds}")
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    test_len = int(total_steps * test_fraction)
    if test_len < 1:
        raise ValueError("test block would be empty; increase test_fraction")
    first_test_start = total_steps - num_folds * test_len
    if first_test_start < int(total_steps * min_train_fraction):
        raise ValueError(
            f"{num_folds} folds x {test_len} steps leave less than "
            f"{min_train_fraction:.0%} of the series for the first train split"
        )
    folds = []
    for k in range(num_folds):
        test_start = first_test_start + k * test_len
        folds.append((test_start, test_start, test_start + test_len))
    return folds


@dataclass
class FoldResult:
    """Outcome of one fold."""

    fold: int
    train_steps: int
    test_steps: int
    metrics: MetricPair
    epochs: int


@dataclass
class RollingOriginCV:
    """Runs rolling-origin evaluation of a model builder.

    Parameters
    ----------
    model_builder:
        Zero-argument callable returning a fresh (untrained) forecaster;
        called once per fold so no state leaks across folds.
    trainer_config:
        Training budget per fold.
    input_length / output_length / stride:
        Window parameters (paper defaults: 12 / 12 / 1).
    """

    model_builder: Callable[[], NeuralForecaster]
    trainer_config: TrainerConfig = field(default_factory=TrainerConfig)
    input_length: int = 12
    output_length: int = 12
    stride: int = 1
    target_feature: int = 0

    def run(
        self,
        dataset: TrafficDataset,
        num_folds: int = 3,
        test_fraction: float = 0.15,
        scaler=None,
        verbose: bool = False,
    ) -> list[FoldResult]:
        """Evaluate over ``num_folds`` expanding-window folds.

        ``dataset`` should already be scaled (pass the fitted ``scaler``
        to report metrics in original units).
        """
        folds = rolling_origin_folds(dataset.num_steps, num_folds, test_fraction)
        results: list[FoldResult] = []
        for k, (train_end, test_start, test_end) in enumerate(folds):
            train_ds = dataset.slice_steps(0, train_end, suffix=f"cv{k}-train")
            test_ds = dataset.slice_steps(test_start, test_end, suffix=f"cv{k}-test")
            train_w = make_windows(train_ds, self.input_length,
                                   self.output_length, stride=self.stride)
            test_w = make_windows(test_ds, self.input_length,
                                  self.output_length, stride=self.stride)
            model = self.model_builder()
            trainer = Trainer(model, self.trainer_config)
            history = trainer.fit(train_w, None)
            metrics = self._score(trainer, test_w, scaler)
            results.append(FoldResult(
                fold=k,
                train_steps=train_end,
                test_steps=test_end - test_start,
                metrics=metrics,
                epochs=history.num_epochs,
            ))
            if verbose:
                print(f"  fold {k}: train={train_end} steps -> {metrics}")
        return results

    def _score(self, trainer: Trainer, windows: WindowSet, scaler) -> MetricPair:
        pred = trainer.predict(windows)
        target = windows.y
        mask = windows.y_mask
        if scaler is not None:
            pred = scaler.inverse_transform(pred)
            target = scaler.inverse_transform(target)
        sl = slice(self.target_feature, self.target_feature + 1)
        return MetricPair(
            mae=masked_mae(pred[..., sl], target[..., sl], mask[..., sl]),
            rmse=masked_rmse(pred[..., sl], target[..., sl], mask[..., sl]),
        )

    @staticmethod
    def summarize(results: list[FoldResult]) -> tuple[float, float]:
        """(mean MAE, std MAE) across folds."""
        maes = np.array([r.metrics.mae for r in results])
        return float(maes.mean()), float(maes.std())
