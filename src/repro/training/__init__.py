"""Training loop and evaluation metrics."""

from ..telemetry.callbacks import Callback, EpochLogger, JSONLRunRecorder, Profiler
from .cross_validation import FoldResult, RollingOriginCV, rolling_origin_folds
from .evaluation import error_by_missingness, per_node_metrics, per_step_metrics
from .metrics import (
    MetricPair,
    evaluate_horizons,
    mae,
    masked_mae,
    masked_rmse,
    rmse,
)
from .rolling import ForecastTrace, rolling_forecast
from .trainer import EvalReport, Trainer, TrainerConfig, TrainingHistory

__all__ = [
    "mae",
    "rmse",
    "masked_mae",
    "masked_rmse",
    "MetricPair",
    "evaluate_horizons",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "EvalReport",
    "Callback",
    "EpochLogger",
    "JSONLRunRecorder",
    "Profiler",
    "per_step_metrics",
    "per_node_metrics",
    "error_by_missingness",
    "ForecastTrace",
    "rolling_forecast",
    "FoldResult",
    "RollingOriginCV",
    "rolling_origin_folds",
]
